"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` keeps working on environments whose packaging
toolchain lacks the ``wheel`` package (legacy editable installs run
``setup.py develop`` and need this shim).
"""

from setuptools import setup

setup()
