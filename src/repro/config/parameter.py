"""Typed configuration parameters.

A parameter describes a single tunable knob of the operating system under
test: its name, where it lives (compile time, boot time or runtime), its
default value, and the domain of values it may take.  Parameters know how to
sample random values, validate values, and encode values into a fixed-width
numeric vector consumed by the machine-learning optimizers.

The parameter taxonomy mirrors Table 1 of the paper: Linux exposes boolean,
tristate, string, hex and integer compile-time options, plus boot-time command
line options and runtime sysctls.
"""

from __future__ import annotations

import enum
import math
from typing import Any, List, Optional, Sequence


class ParameterKind(enum.Enum):
    """Where a configuration parameter takes effect.

    The kind matters operationally: changing a runtime parameter does not
    require rebuilding or rebooting the kernel, while changing a compile-time
    parameter requires a full rebuild (see the skip-build optimization in
    :mod:`repro.platform.pipeline`).
    """

    COMPILE_TIME = "compile-time"
    BOOT_TIME = "boot-time"
    RUNTIME = "runtime"

    @property
    def requires_rebuild(self) -> bool:
        """Whether changing a parameter of this kind forces a kernel rebuild."""
        return self is ParameterKind.COMPILE_TIME

    @property
    def requires_reboot(self) -> bool:
        """Whether changing a parameter of this kind forces a reboot."""
        return self in (ParameterKind.COMPILE_TIME, ParameterKind.BOOT_TIME)


class Parameter:
    """Base class for a single configuration parameter.

    Subclasses define the value domain.  A parameter is hashable by name so it
    can be used in sets and as dictionary keys.
    """

    #: short machine-readable type tag used in job files.
    type_name = "abstract"

    def __init__(
        self,
        name: str,
        kind: ParameterKind,
        default: Any,
        description: str = "",
    ) -> None:
        if not name:
            raise ValueError("parameter name must be non-empty")
        self.name = name
        self.kind = kind
        self.default = default
        self.description = description

    # -- domain ------------------------------------------------------------
    def validate(self, value: Any) -> bool:
        """Return True if *value* is inside this parameter's domain."""
        raise NotImplementedError

    def sample(self, rng) -> Any:
        """Draw a uniformly random value from the domain using *rng*.

        *rng* is a :class:`random.Random` instance (never the module-level
        ``random`` functions, so experiments stay reproducible).
        """
        raise NotImplementedError

    def clip(self, value: Any) -> Any:
        """Coerce *value* to the nearest valid value in the domain."""
        raise NotImplementedError

    def domain_values(self) -> Optional[Sequence[Any]]:
        """Enumerate the domain when it is finite, else return ``None``."""
        return None

    def cardinality(self) -> float:
        """Number of distinct values, ``math.inf`` for unbounded domains."""
        values = self.domain_values()
        if values is None:
            return math.inf
        return float(len(values))

    # -- encoding ----------------------------------------------------------
    @property
    def encoding_width(self) -> int:
        """Number of floats this parameter occupies in the encoded vector."""
        raise NotImplementedError

    def encode(self, value: Any) -> List[float]:
        """Encode *value* into ``encoding_width`` floats in roughly [0, 1]."""
        raise NotImplementedError

    def decode(self, floats: Sequence[float]) -> Any:
        """Invert :meth:`encode` (best effort for lossy encodings)."""
        raise NotImplementedError

    @property
    def is_categorical(self) -> bool:
        """True for parameters with a finite, unordered domain."""
        return self.domain_values() is not None

    # -- persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize the parameter definition for a job file."""
        return {
            "name": self.name,
            "type": self.type_name,
            "kind": self.kind.value,
            "default": self.default,
            "description": self.description,
        }

    # -- dunder ------------------------------------------------------------
    def __repr__(self) -> str:
        return "{}(name={!r}, kind={}, default={!r})".format(
            type(self).__name__, self.name, self.kind.value, self.default
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Parameter):
            return NotImplemented
        return (
            type(self) is type(other)
            and self.name == other.name
            and self.kind == other.kind
            and self.default == other.default
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))


class BoolParameter(Parameter):
    """A parameter that is either enabled (True) or disabled (False)."""

    type_name = "bool"

    def __init__(self, name, kind, default=False, description=""):
        super().__init__(name, kind, bool(default), description)

    def validate(self, value):
        return isinstance(value, bool) or value in (0, 1)

    def sample(self, rng):
        return bool(rng.getrandbits(1))

    def clip(self, value):
        return bool(value)

    def domain_values(self):
        return (False, True)

    @property
    def encoding_width(self):
        return 1

    def encode(self, value):
        return [1.0 if value else 0.0]

    def decode(self, floats):
        return floats[0] >= 0.5


class TristateParameter(Parameter):
    """A Kconfig tristate: disabled ('n'), built-in ('y') or module ('m')."""

    type_name = "tristate"
    STATES = ("n", "y", "m")

    def __init__(self, name, kind, default="n", description=""):
        if default not in self.STATES:
            raise ValueError("tristate default must be one of {}".format(self.STATES))
        super().__init__(name, kind, default, description)

    def validate(self, value):
        return value in self.STATES

    def sample(self, rng):
        return rng.choice(self.STATES)

    def clip(self, value):
        if value in self.STATES:
            return value
        if value in (True, 1):
            return "y"
        if value in (False, 0, None):
            return "n"
        return self.default

    def domain_values(self):
        return self.STATES

    @property
    def encoding_width(self):
        return 3

    def encode(self, value):
        return [1.0 if value == state else 0.0 for state in self.STATES]

    def decode(self, floats):
        index = max(range(3), key=lambda i: floats[i])
        return self.STATES[index]


class IntParameter(Parameter):
    """An integer parameter with an inclusive range.

    ``log_scale`` marks parameters whose effect is multiplicative (buffer
    sizes, backlog lengths, timeouts): they are sampled and encoded on a
    logarithmic axis so that the optimizer sees 1 KiB → 2 KiB as the same step
    as 1 MiB → 2 MiB.
    """

    type_name = "int"

    def __init__(
        self,
        name,
        kind,
        default,
        minimum,
        maximum,
        log_scale=False,
        description="",
    ):
        if minimum > maximum:
            raise ValueError(
                "minimum {} greater than maximum {} for {}".format(minimum, maximum, name)
            )
        default = int(default)
        if not minimum <= default <= maximum:
            raise ValueError(
                "default {} outside [{}, {}] for {}".format(default, minimum, maximum, name)
            )
        if log_scale and minimum < 0:
            raise ValueError("log-scale parameters must have a non-negative range")
        super().__init__(name, kind, default, description)
        self.minimum = int(minimum)
        self.maximum = int(maximum)
        self.log_scale = bool(log_scale)

    # The +1 shift keeps log encoding defined when the range starts at zero.
    def _to_unit(self, value: int) -> float:
        if self.maximum == self.minimum:
            return 0.0
        if self.log_scale:
            lo = math.log1p(self.minimum)
            hi = math.log1p(self.maximum)
            return (math.log1p(value) - lo) / (hi - lo)
        return (value - self.minimum) / float(self.maximum - self.minimum)

    def _from_unit(self, unit: float) -> int:
        unit = min(1.0, max(0.0, unit))
        if self.maximum == self.minimum:
            return self.minimum
        if self.log_scale:
            lo = math.log1p(self.minimum)
            hi = math.log1p(self.maximum)
            return int(round(math.expm1(lo + unit * (hi - lo))))
        return int(round(self.minimum + unit * (self.maximum - self.minimum)))

    def validate(self, value):
        return isinstance(value, int) and not isinstance(value, bool) and (
            self.minimum <= value <= self.maximum
        )

    def sample(self, rng):
        if self.log_scale:
            return self.clip(self._from_unit(rng.random()))
        return rng.randint(self.minimum, self.maximum)

    def clip(self, value):
        try:
            value = int(value)
        except (TypeError, ValueError):
            return self.default
        return min(self.maximum, max(self.minimum, value))

    def domain_values(self):
        if self.maximum - self.minimum <= 16:
            return tuple(range(self.minimum, self.maximum + 1))
        return None

    def cardinality(self):
        return float(self.maximum - self.minimum + 1)

    @property
    def encoding_width(self):
        return 1

    def encode(self, value):
        return [self._to_unit(self.clip(value))]

    def decode(self, floats):
        return self.clip(self._from_unit(floats[0]))

    @property
    def is_categorical(self):
        return False

    def to_dict(self):
        data = super().to_dict()
        data.update(
            {"minimum": self.minimum, "maximum": self.maximum, "log_scale": self.log_scale}
        )
        return data


class HexParameter(IntParameter):
    """An integer parameter conventionally expressed in hexadecimal.

    Kconfig ``hex`` options (DMA masks, physical load addresses, ...) are
    integers under the hood; the only difference is rendering.
    """

    type_name = "hex"

    def render(self, value) -> str:
        """Render *value* in the 0x... form used by Kconfig fragments."""
        return "0x{:x}".format(self.clip(value))


class CategoricalParameter(Parameter):
    """A parameter taking one of a fixed set of unordered choices."""

    type_name = "categorical"

    def __init__(self, name, kind, choices, default=None, description=""):
        choices = tuple(choices)
        if not choices:
            raise ValueError("categorical parameter {} needs at least one choice".format(name))
        if len(set(choices)) != len(choices):
            raise ValueError("categorical parameter {} has duplicate choices".format(name))
        if default is None:
            default = choices[0]
        if default not in choices:
            raise ValueError("default {!r} not among choices for {}".format(default, name))
        super().__init__(name, kind, default, description)
        self.choices = choices

    def validate(self, value):
        return value in self.choices

    def sample(self, rng):
        return rng.choice(self.choices)

    def clip(self, value):
        return value if value in self.choices else self.default

    def domain_values(self):
        return self.choices

    @property
    def encoding_width(self):
        return len(self.choices)

    def encode(self, value):
        value = self.clip(value)
        return [1.0 if choice == value else 0.0 for choice in self.choices]

    def decode(self, floats):
        index = max(range(len(self.choices)), key=lambda i: floats[i])
        return self.choices[index]

    def to_dict(self):
        data = super().to_dict()
        data["choices"] = list(self.choices)
        return data


class StringParameter(CategoricalParameter):
    """A free-form string option restricted to a known set of useful values.

    Section 3.4 of the paper notes that string parameters are only explored
    over the values that can be extracted automatically (e.g. the observed
    default plus documented alternatives); arbitrary strings are not
    generated.  We model that as a categorical over the extracted values.
    """

    type_name = "string"
