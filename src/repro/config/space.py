"""Configuration spaces and concrete configurations.

A :class:`ConfigSpace` is an ordered collection of parameters plus validity
constraints; a :class:`Configuration` is an assignment of a value to every
parameter of a space.  Spaces can be filtered by parameter kind (compile-time,
boot-time, runtime), frozen (pinning security-critical parameters to fixed
values, §3.5 of the paper), and sampled.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.config.constraints import Constraint, ConstraintViolation
from repro.config.parameter import Parameter, ParameterKind


class Configuration(Mapping[str, Any]):
    """An immutable assignment of values to every parameter of a space.

    Configurations behave like read-only mappings from parameter name to
    value.  They are hashable, which lets the platform de-duplicate already
    explored configurations cheaply.
    """

    __slots__ = ("_space", "_values", "_hash")

    def __init__(self, space: "ConfigSpace", values: Mapping[str, Any]) -> None:
        missing = [name for name in space.parameter_names() if name not in values]
        if missing:
            raise KeyError("configuration missing values for: {}".format(", ".join(missing[:5])))
        extra = [name for name in values if name not in space]
        if extra:
            raise KeyError("configuration has unknown parameters: {}".format(", ".join(extra[:5])))
        self._space = space
        self._values = {name: values[name] for name in space.parameter_names()}
        self._hash: Optional[int] = None

    # -- mapping protocol ----------------------------------------------------
    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # -- identity ------------------------------------------------------------
    def __hash__(self) -> int:
        if self._hash is None:
            # Hash the values themselves so the hash/eq contract holds:
            # __eq__ is dict equality, under which e.g. True == 1, and
            # Python guarantees hash(True) == hash(1).  A repr-based hash
            # would break set/dict membership for such equal configurations
            # (the exploration history and the encoder's vector cache both
            # key on configurations).  repr stays as the fallback for
            # unhashable values.
            try:
                self._hash = hash(tuple(sorted(self._values.items())))
            except TypeError:
                self._hash = hash(tuple(sorted((k, repr(v))
                                               for k, v in self._values.items())))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        preview = ", ".join(
            "{}={!r}".format(k, v) for k, v in list(self._values.items())[:4]
        )
        return "Configuration({} params: {}{})".format(
            len(self._values), preview, ", ..." if len(self._values) > 4 else ""
        )

    # -- accessors -----------------------------------------------------------
    @property
    def space(self) -> "ConfigSpace":
        return self._space

    def as_dict(self) -> Dict[str, Any]:
        """Return a plain mutable copy of the assignment."""
        return dict(self._values)

    def with_values(self, updates: Mapping[str, Any]) -> "Configuration":
        """Return a copy with *updates* applied (values are clipped)."""
        values = dict(self._values)
        for name, value in updates.items():
            parameter = self._space[name]
            values[name] = parameter.clip(value)
        return Configuration(self._space, values)

    def subset(self, kind: ParameterKind) -> Dict[str, Any]:
        """Return only the values of parameters of the given *kind*."""
        return {
            name: value
            for name, value in self._values.items()
            if self._space[name].kind is kind
        }

    def differing_parameters(self, other: "Configuration") -> List[str]:
        """Names of parameters whose values differ between self and *other*."""
        return [
            name
            for name in self._values
            if name in other and self._values[name] != other[name]
        ]

    def only_runtime_differs(self, other: "Configuration") -> bool:
        """True if self and *other* differ only in runtime parameters.

        This is the condition under which the platform can skip the rebuild
        and reboot of the kernel between two iterations (§3.1).
        """
        for name in self.differing_parameters(other):
            if self._space[name].kind is not ParameterKind.RUNTIME:
                return False
        return True


class ConfigSpace:
    """An ordered set of configuration parameters with validity constraints."""

    def __init__(
        self,
        parameters: Iterable[Parameter] = (),
        constraints: Iterable[Constraint] = (),
        name: str = "config-space",
    ) -> None:
        self.name = name
        self._parameters: Dict[str, Parameter] = {}
        self._constraints: List[Constraint] = []
        self._frozen: Dict[str, Any] = {}
        for parameter in parameters:
            self.add_parameter(parameter)
        for constraint in constraints:
            self.add_constraint(constraint)

    # -- construction ----------------------------------------------------------
    def add_parameter(self, parameter: Parameter) -> None:
        if parameter.name in self._parameters:
            raise ValueError("duplicate parameter {!r}".format(parameter.name))
        self._parameters[parameter.name] = parameter

    def add_constraint(self, constraint: Constraint) -> None:
        for name in constraint.parameter_names():
            if name not in self._parameters:
                raise KeyError(
                    "constraint references unknown parameter {!r}".format(name)
                )
        self._constraints.append(constraint)

    def freeze(self, name: str, value: Any) -> None:
        """Pin *name* to *value*: sampling and mutation will never change it.

        Used to keep security-critical options (ASLR, SMEP, ...) at safe
        values during the search, as described in §3.5.
        """
        parameter = self[name]
        if not parameter.validate(parameter.clip(value)):
            raise ValueError("frozen value {!r} invalid for {}".format(value, name))
        self._frozen[name] = parameter.clip(value)

    def unfreeze(self, name: str) -> None:
        self._frozen.pop(name, None)

    @property
    def frozen_parameters(self) -> Dict[str, Any]:
        return dict(self._frozen)

    # -- lookup -----------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._parameters

    def __getitem__(self, name: str) -> Parameter:
        return self._parameters[name]

    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters.values())

    def parameters(self) -> List[Parameter]:
        return list(self._parameters.values())

    def parameter_names(self) -> List[str]:
        return list(self._parameters.keys())

    def parameters_of_kind(self, kind: ParameterKind) -> List[Parameter]:
        return [p for p in self._parameters.values() if p.kind is kind]

    @property
    def constraints(self) -> List[Constraint]:
        return list(self._constraints)

    def subspace(self, names: Iterable[str], name: Optional[str] = None) -> "ConfigSpace":
        """Return a new space restricted to *names* (constraints that only
        reference retained parameters are carried over)."""
        names = list(names)
        retained = set(names)
        parameters = [self._parameters[n] for n in names]
        constraints = [
            c for c in self._constraints if set(c.parameter_names()) <= retained
        ]
        sub = ConfigSpace(parameters, constraints, name=name or self.name + "-subspace")
        for frozen_name, value in self._frozen.items():
            if frozen_name in retained:
                sub.freeze(frozen_name, value)
        return sub

    # -- size --------------------------------------------------------------------
    def cardinality(self) -> float:
        """Total number of configurations (may be ``math.inf``)."""
        total = 1.0
        for parameter in self._parameters.values():
            card = parameter.cardinality()
            if math.isinf(card):
                return math.inf
            total *= card
            if total > 1e300:
                return math.inf
        return total

    def log10_cardinality(self) -> float:
        """log10 of the configuration count, robust to astronomically large spaces."""
        total = 0.0
        for parameter in self._parameters.values():
            card = parameter.cardinality()
            if math.isinf(card):
                return math.inf
            total += math.log10(card)
        return total

    # -- configurations ------------------------------------------------------------
    def default_configuration(self) -> Configuration:
        values = {p.name: p.default for p in self._parameters.values()}
        values.update(self._frozen)
        return Configuration(self, values)

    def sample_configuration(self, rng: random.Random) -> Configuration:
        """Draw a uniformly random configuration (frozen values respected)."""
        values = {}
        for parameter in self._parameters.values():
            if parameter.name in self._frozen:
                values[parameter.name] = self._frozen[parameter.name]
            else:
                values[parameter.name] = parameter.sample(rng)
        return Configuration(self, values)

    def mutate_configuration(
        self,
        configuration: Configuration,
        rng: random.Random,
        mutation_rate: float = 0.1,
        kinds: Optional[Sequence[ParameterKind]] = None,
    ) -> Configuration:
        """Return a copy of *configuration* with a random subset of parameters
        resampled.

        *kinds* optionally restricts mutation to parameters of the given kinds
        (the paper's experiments favour runtime parameters for performance
        search and compile-time parameters for footprint search).
        """
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be within [0, 1]")
        values = configuration.as_dict()
        mutated = False
        eligible = [
            p
            for p in self._parameters.values()
            if p.name not in self._frozen and (kinds is None or p.kind in kinds)
        ]
        for parameter in eligible:
            if rng.random() < mutation_rate:
                values[parameter.name] = parameter.sample(rng)
                mutated = True
        if not mutated and eligible:
            parameter = rng.choice(eligible)
            values[parameter.name] = parameter.sample(rng)
        return Configuration(self, values)

    def coerce(self, values: Mapping[str, Any]) -> Configuration:
        """Build a configuration from a possibly partial/poorly typed mapping.

        Missing parameters get their defaults; provided values are clipped to
        the parameter's domain.  Frozen values always win.
        """
        result = {p.name: p.default for p in self._parameters.values()}
        for name, value in values.items():
            if name in self._parameters:
                result[name] = self._parameters[name].clip(value)
        result.update(self._frozen)
        return Configuration(self, result)

    # -- validity -------------------------------------------------------------------
    def violations(self, configuration: Configuration) -> List[ConstraintViolation]:
        """Return every constraint violated by *configuration*."""
        found = []
        for constraint in self._constraints:
            violation = constraint.check(configuration)
            if violation is not None:
                found.append(violation)
        return found

    def is_valid(self, configuration: Configuration) -> bool:
        """True when *configuration* satisfies every declared constraint.

        Note that — exactly as with KConfig — a configuration may satisfy all
        declared constraints and still fail to build, boot or run; those
        failures come from the simulated system under test, not from the
        space definition.
        """
        return not self.violations(configuration)

    def repair(self, configuration: Configuration, rng: random.Random,
               max_rounds: int = 16) -> Configuration:
        """Attempt to fix constraint violations by applying constraint repairs."""
        current = configuration
        for _ in range(max_rounds):
            violations = self.violations(current)
            if not violations:
                return current
            updates: Dict[str, Any] = {}
            for violation in violations:
                updates.update(violation.constraint.repair(current, rng))
            if not updates:
                return current
            current = current.with_values(updates)
        return current

    # -- misc --------------------------------------------------------------------------
    def describe(self) -> Dict[str, int]:
        """Count parameters by (kind, type), mirroring Table 1 of the paper."""
        counts: Dict[str, int] = {}
        for parameter in self._parameters.values():
            key = "{}/{}".format(parameter.kind.value, parameter.type_name)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def __repr__(self) -> str:
        return "ConfigSpace(name={!r}, parameters={}, constraints={})".format(
            self.name, len(self._parameters), len(self._constraints)
        )
