"""Validity constraints over configurations.

Kconfig expresses dependencies between options (``depends on``, ``select``,
value ranges).  The platform checks these *declared* constraints before it
spends time building an image — exactly like KConfig refuses obviously
inconsistent configurations — but, as in the paper, many configurations that
satisfy all declared constraints still fail at build, boot, or run time.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple


class ConstraintViolation:
    """A single violated constraint, with a human-readable explanation."""

    def __init__(self, constraint: "Constraint", message: str) -> None:
        self.constraint = constraint
        self.message = message

    def __repr__(self) -> str:
        return "ConstraintViolation({!r})".format(self.message)


class Constraint:
    """Base class for configuration validity constraints."""

    def parameter_names(self) -> Sequence[str]:
        """Names of the parameters this constraint reads."""
        raise NotImplementedError

    def check(self, configuration: Mapping[str, Any]) -> Optional[ConstraintViolation]:
        """Return a violation if *configuration* breaks this constraint."""
        raise NotImplementedError

    def repair(self, configuration: Mapping[str, Any], rng: random.Random) -> Dict[str, Any]:
        """Suggest value updates that would satisfy the constraint."""
        return {}


def _enabled(value: Any) -> bool:
    """Interpret a bool or tristate value as 'feature enabled'."""
    return value in (True, 1, "y", "m")


class DependsOn(Constraint):
    """``option`` may only be enabled when ``dependency`` is enabled.

    Models Kconfig ``depends on`` edges between bool/tristate options.
    """

    def __init__(self, option: str, dependency: str) -> None:
        self.option = option
        self.dependency = dependency

    def parameter_names(self):
        return (self.option, self.dependency)

    def check(self, configuration):
        if _enabled(configuration[self.option]) and not _enabled(configuration[self.dependency]):
            return ConstraintViolation(
                self,
                "{} is enabled but its dependency {} is disabled".format(
                    self.option, self.dependency
                ),
            )
        return None

    def repair(self, configuration, rng):
        # Either disable the dependent option or enable the dependency;
        # disabling is what "make olddefconfig" style resolution does.
        value = configuration[self.option]
        disabled = "n" if isinstance(value, str) else False
        return {self.option: disabled}

    def __repr__(self):
        return "DependsOn({} -> {})".format(self.option, self.dependency)


class RequiresValue(Constraint):
    """When ``option`` is enabled, ``target`` must hold one of ``allowed``."""

    def __init__(self, option: str, target: str, allowed: Iterable[Any]) -> None:
        self.option = option
        self.target = target
        self.allowed = tuple(allowed)
        if not self.allowed:
            raise ValueError("RequiresValue needs at least one allowed value")

    def parameter_names(self):
        return (self.option, self.target)

    def check(self, configuration):
        if _enabled(configuration[self.option]) and configuration[self.target] not in self.allowed:
            return ConstraintViolation(
                self,
                "{} enabled requires {} in {!r}, got {!r}".format(
                    self.option, self.target, self.allowed, configuration[self.target]
                ),
            )
        return None

    def repair(self, configuration, rng):
        return {self.target: rng.choice(self.allowed)}

    def __repr__(self):
        return "RequiresValue({} => {} in {!r})".format(self.option, self.target, self.allowed)


class RangeConstraint(Constraint):
    """An integer parameter must stay within [minimum, maximum].

    Kconfig ``range`` statements on int/hex options.  Mostly redundant with
    the parameter's own domain, but job files may tighten ranges further.
    """

    def __init__(self, name: str, minimum: int, maximum: int) -> None:
        if minimum > maximum:
            raise ValueError("empty range for {}".format(name))
        self.name = name
        self.minimum = minimum
        self.maximum = maximum

    def parameter_names(self):
        return (self.name,)

    def check(self, configuration):
        value = configuration[self.name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return ConstraintViolation(self, "{} is not numeric".format(self.name))
        if not self.minimum <= value <= self.maximum:
            return ConstraintViolation(
                self,
                "{}={} outside [{}, {}]".format(self.name, value, self.minimum, self.maximum),
            )
        return None

    def repair(self, configuration, rng):
        value = configuration[self.name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return {self.name: self.minimum}
        return {self.name: min(self.maximum, max(self.minimum, int(value)))}

    def __repr__(self):
        return "RangeConstraint({} in [{}, {}])".format(self.name, self.minimum, self.maximum)


class ForbiddenCombination(Constraint):
    """A specific combination of values is invalid.

    Models mutually exclusive features (e.g. two conflicting preemption
    models both built-in).
    """

    def __init__(self, assignment: Mapping[str, Any], reason: str = "") -> None:
        if not assignment:
            raise ValueError("ForbiddenCombination needs at least one assignment")
        self.assignment = dict(assignment)
        self.reason = reason

    def parameter_names(self):
        return tuple(self.assignment.keys())

    def check(self, configuration):
        if all(configuration[name] == value for name, value in self.assignment.items()):
            return ConstraintViolation(
                self,
                self.reason
                or "forbidden combination: {}".format(
                    ", ".join("{}={!r}".format(k, v) for k, v in self.assignment.items())
                ),
            )
        return None

    def repair(self, configuration, rng):
        # Break the combination by flipping one of the pinned bool-ish values.
        name = rng.choice(list(self.assignment.keys()))
        value = self.assignment[name]
        if isinstance(value, bool):
            return {name: not value}
        if value in ("y", "m"):
            return {name: "n"}
        if value == "n":
            return {name: "y"}
        return {}

    def __repr__(self):
        return "ForbiddenCombination({})".format(self.assignment)


def count_satisfied(
    constraints: Iterable[Constraint], configuration: Mapping[str, Any]
) -> Tuple[int, int]:
    """Return (satisfied, total) constraint counts for *configuration*."""
    satisfied = 0
    total = 0
    for constraint in constraints:
        total += 1
        if constraint.check(configuration) is None:
            satisfied += 1
    return satisfied, total
