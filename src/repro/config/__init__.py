"""Configuration-space modelling.

This subpackage provides the data model that every other part of the
reproduction builds on: typed configuration parameters, configuration spaces,
concrete configurations, validity constraints, numeric encodings used by the
machine-learning optimizers, and the job-file serialization format used to
describe an exploration to the Wayfinder platform.
"""

from repro.config.constraints import (
    Constraint,
    ConstraintViolation,
    DependsOn,
    ForbiddenCombination,
    RangeConstraint,
    RequiresValue,
)
from repro.config.encoding import ConfigEncoder
from repro.config.jobfile import JobFile, dump_job_file, load_job_file
from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    HexParameter,
    IntParameter,
    Parameter,
    ParameterKind,
    StringParameter,
    TristateParameter,
)
from repro.config.space import Configuration, ConfigSpace

__all__ = [
    "Parameter",
    "ParameterKind",
    "BoolParameter",
    "TristateParameter",
    "IntParameter",
    "HexParameter",
    "StringParameter",
    "CategoricalParameter",
    "ConfigSpace",
    "Configuration",
    "Constraint",
    "ConstraintViolation",
    "DependsOn",
    "RequiresValue",
    "RangeConstraint",
    "ForbiddenCombination",
    "ConfigEncoder",
    "JobFile",
    "load_job_file",
    "dump_job_file",
]
