"""Numeric encoding of configurations for the machine-learning optimizers.

DeepTune and the Bayesian-optimization baseline operate on fixed-width float
vectors.  Each configuration ``x`` is split, as in §3.2 of the paper, into the
categorical part ``x_k`` (bools, tristates, strings, enumerations — one-hot
encoded) and the numeric part ``x_n`` (ints and hex values — min/max or
log-scaled to [0, 1]).  The encoder additionally supports z-score
normalization over a reference dataset, which is the form the RBF uncertainty
branch expects (the paper fits the RBF smoothing parameter gamma assuming
z-scored inputs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.parameter import Parameter
from repro.config.space import Configuration, ConfigSpace


class ConfigEncoder:
    """Encodes configurations of one space into flat numpy vectors."""

    def __init__(self, space: ConfigSpace) -> None:
        self.space = space
        self._slices: Dict[str, Tuple[int, int]] = {}
        offset = 0
        for parameter in space.parameters():
            width = parameter.encoding_width
            self._slices[parameter.name] = (offset, offset + width)
            offset += width
        self._width = offset
        # z-score statistics, fitted lazily from observed data.
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # -- geometry -------------------------------------------------------------
    @property
    def width(self) -> int:
        """Dimension of the encoded vector."""
        return self._width

    def slice_for(self, name: str) -> Tuple[int, int]:
        """Return the [start, stop) columns occupied by parameter *name*."""
        return self._slices[name]

    def parameter_for_column(self, column: int) -> Parameter:
        """Return the parameter that owns encoded column *column*."""
        for name, (start, stop) in self._slices.items():
            if start <= column < stop:
                return self.space[name]
        raise IndexError("column {} outside encoded width {}".format(column, self._width))

    def column_labels(self) -> List[str]:
        """Human-readable label per encoded column (for importance reports)."""
        labels = []
        for parameter in self.space.parameters():
            width = parameter.encoding_width
            if width == 1:
                labels.append(parameter.name)
            else:
                values = parameter.domain_values() or range(width)
                labels.extend(
                    "{}={}".format(parameter.name, value) for value in list(values)[:width]
                )
        return labels

    # -- encode / decode --------------------------------------------------------
    def encode(self, configuration: Configuration) -> np.ndarray:
        """Encode a single configuration into a float vector of length width."""
        vector = np.empty(self._width, dtype=np.float64)
        for parameter in self.space.parameters():
            start, stop = self._slices[parameter.name]
            vector[start:stop] = parameter.encode(configuration[parameter.name])
        return vector

    def encode_batch(self, configurations: Iterable[Configuration]) -> np.ndarray:
        """Encode many configurations into a (n, width) matrix."""
        rows = [self.encode(configuration) for configuration in configurations]
        if not rows:
            return np.empty((0, self._width), dtype=np.float64)
        return np.vstack(rows)

    def decode(self, vector: Sequence[float]) -> Configuration:
        """Best-effort inverse of :meth:`encode`."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self._width,):
            raise ValueError(
                "expected vector of shape ({},), got {}".format(self._width, vector.shape)
            )
        values = {}
        for parameter in self.space.parameters():
            start, stop = self._slices[parameter.name]
            values[parameter.name] = parameter.decode(list(vector[start:stop]))
        return Configuration(self.space, values)

    # -- normalization ------------------------------------------------------------
    def fit_normalization(self, matrix: np.ndarray) -> None:
        """Fit z-score statistics from an (n, width) matrix of encoded configs."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self._width:
            raise ValueError("normalization data must be (n, {})".format(self._width))
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit normalization on an empty matrix")
        self._mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        # Constant columns carry no signal; leave them centred at zero with
        # unit scale instead of dividing by zero.
        std[std < 1e-12] = 1.0
        self._std = std

    @property
    def is_normalized(self) -> bool:
        return self._mean is not None

    def normalize(self, matrix: np.ndarray) -> np.ndarray:
        """Apply the fitted z-score transform (identity if not fitted)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if self._mean is None or self._std is None:
            return matrix
        return (matrix - self._mean) / self._std

    def encode_normalized(self, configurations: Iterable[Configuration]) -> np.ndarray:
        """Encode and z-score a batch in one call."""
        return self.normalize(self.encode_batch(configurations))

    # -- distances -------------------------------------------------------------------
    def distance(self, first: Configuration, second: Configuration) -> float:
        """Euclidean distance between two configurations in encoded space."""
        return float(np.linalg.norm(self.encode(first) - self.encode(second)))

    def dissimilarity(self, candidate: np.ndarray, known: np.ndarray) -> float:
        """Dissimilarity term of the DeepTune scoring function (paper eq. 2).

        ``ds(x, X) = 1 - 1 / (1 + ||x - X||^2)`` where ``||x - X||`` is the
        distance from the candidate to the closest known sample.  A value near
        0 means the candidate sits on top of an already explored point; a
        value near 1 means it lies in unexplored territory.

        The squared distance is averaged over the encoded dimensions so the
        term keeps a useful dynamic range on high-dimensional spaces (with raw
        Euclidean distances over hundreds of columns the expression saturates
        at 1 for every candidate).
        """
        candidate = np.asarray(candidate, dtype=np.float64)
        known = np.asarray(known, dtype=np.float64)
        if known.size == 0:
            return 1.0
        if known.ndim == 1:
            known = known.reshape(1, -1)
        distances = np.linalg.norm(known - candidate.reshape(1, -1), axis=1)
        nearest_sq = float(np.min(distances) ** 2) / max(1, self._width)
        return 1.0 - 1.0 / (1.0 + nearest_sq)
