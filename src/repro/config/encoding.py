"""Numeric encoding of configurations for the machine-learning optimizers.

DeepTune and the Bayesian-optimization baseline operate on fixed-width float
vectors.  Each configuration ``x`` is split, as in §3.2 of the paper, into the
categorical part ``x_k`` (bools, tristates, strings, enumerations — one-hot
encoded) and the numeric part ``x_n`` (ints and hex values — min/max or
log-scaled to [0, 1]).  The encoder additionally supports z-score
normalization over a reference dataset, which is the form the RBF uncertainty
branch expects (the paper fits the RBF smoothing parameter gamma assuming
z-scored inputs).

Encoding sits on the hottest path of the search loop: every iteration encodes
a full candidate pool (192 configurations by default) plus the observed
configuration, over spaces with hundreds of parameters.  The encoder therefore
compiles an *encoding plan* at construction time — one vectorized column
writer per parameter — so :meth:`encode_batch` fills the (n, width) matrix
column-group by column-group with numpy array operations instead of a
per-configuration Python loop, and keeps an LRU vector cache keyed by the
(hashable) configuration so no configuration is ever encoded twice.  The fast
path is bit-identical to the reference per-parameter path (log-scaled columns
go through ``math.log1p`` exactly like :meth:`Parameter.encode` does, because
``np.log1p`` differs from the C library in the last ulp on some platforms).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    IntParameter,
    Parameter,
    TristateParameter,
)
from repro.config.space import Configuration, ConfigSpace


class _ColumnWriter:
    """One compiled writer: encodes a column of raw values for one parameter.

    ``write`` fills ``out[:, start:stop]`` for every row at once; the output
    matrix is zero-initialized, so one-hot writers only set the hot entries.
    """

    __slots__ = ("parameter", "start", "stop")

    def __init__(self, parameter: Parameter, start: int, stop: int) -> None:
        self.parameter = parameter
        self.start = start
        self.stop = stop

    def write(self, out: np.ndarray, values: Sequence, rows: np.ndarray) -> None:
        raise NotImplementedError


class _FallbackWriter(_ColumnWriter):
    """Reference path for parameter types without a vectorized writer."""

    __slots__ = ()

    def write(self, out: np.ndarray, values: Sequence, rows: np.ndarray) -> None:
        start, stop = self.start, self.stop
        encode = self.parameter.encode
        for row, value in enumerate(values):
            out[row, start:stop] = encode(value)


class _BoolWriter(_ColumnWriter):
    __slots__ = ()

    def write(self, out: np.ndarray, values: Sequence, rows: np.ndarray) -> None:
        try:
            flags = np.array(values, dtype=bool)
        except (TypeError, ValueError):
            flags = np.fromiter((bool(value) for value in values),
                                dtype=bool, count=len(values))
        out[:, self.start] = flags


class _OneHotWriter(_ColumnWriter):
    """Index-arithmetic one-hot writer for tristate/categorical parameters.

    ``index`` maps a domain value to its hot column offset; ``miss`` is the
    offset used for out-of-domain values (-1 leaves the row all-zero, which is
    what ``TristateParameter.encode`` produces, while categoricals clip to
    their default choice).
    """

    __slots__ = ("index", "miss")

    def __init__(self, parameter: Parameter, start: int, stop: int,
                 index: Dict, miss: int) -> None:
        super().__init__(parameter, start, stop)
        self.index = index
        self.miss = miss

    def write(self, out: np.ndarray, values: Sequence, rows: np.ndarray) -> None:
        n = len(values)
        start = self.start
        try:
            # Common case: every value is in the domain — a C-level map over
            # dict.__getitem__ with no per-value Python frame.
            hot = np.fromiter(map(self.index.__getitem__, values),
                              dtype=np.int64, count=n)
        except KeyError:
            lookup = self.index.get
            miss = self.miss
            hot = np.fromiter((lookup(value, miss) for value in values),
                              dtype=np.int64, count=n)
            if miss < 0:
                keep = np.nonzero(hot >= 0)[0]
                out[keep, start + hot[keep]] = 1.0
                return
        out[rows, start + hot] = 1.0


class _NumericWriter(_ColumnWriter):
    """Min-max / log1p scaler for int and hex parameters."""

    __slots__ = ("minimum", "maximum", "default", "log_scale", "lo", "hi")

    def __init__(self, parameter: IntParameter, start: int, stop: int) -> None:
        super().__init__(parameter, start, stop)
        self.minimum = parameter.minimum
        self.maximum = parameter.maximum
        self.default = parameter.default
        self.log_scale = parameter.log_scale
        if self.log_scale:
            self.lo = math.log1p(self.minimum)
            self.hi = math.log1p(self.maximum)
        else:
            self.lo = self.hi = 0.0

    def write(self, out: np.ndarray, values: Sequence, rows: np.ndarray) -> None:
        if self.maximum == self.minimum:
            out[:, self.start] = 0.0
            return
        try:
            # int64 conversion truncates floats toward zero, exactly like the
            # scalar path's int(value).
            clipped = np.array(values, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            clipped = np.array(
                [self.parameter.clip(value) for value in values], dtype=np.int64
            )
        np.maximum(clipped, self.minimum, out=clipped)
        np.minimum(clipped, self.maximum, out=clipped)
        if self.log_scale:
            # math.log1p (not np.log1p) for bit-identity with Parameter.encode.
            logs = np.fromiter(map(math.log1p, clipped.tolist()),
                               dtype=np.float64, count=len(values))
            out[:, self.start] = (logs - self.lo) / (self.hi - self.lo)
        else:
            out[:, self.start] = ((clipped - self.minimum)
                                  / float(self.maximum - self.minimum))


def _compile_writer(parameter: Parameter, start: int, stop: int) -> _ColumnWriter:
    """Pick the vectorized writer matching *parameter*'s encode implementation.

    A subclass that overrides ``encode`` (or the numeric helpers) falls back
    to the reference per-value path, so custom parameter types stay correct.
    """
    cls = type(parameter)
    if cls.encode is BoolParameter.encode:
        return _BoolWriter(parameter, start, stop)
    if cls.encode is TristateParameter.encode:
        # The subclass's own STATES: an override with different states (but
        # inherited encode) must one-hot against those, not the base tuple.
        states = type(parameter).STATES
        if len(states) != stop - start:
            return _FallbackWriter(parameter, start, stop)
        index = {state: i for i, state in enumerate(states)}
        return _OneHotWriter(parameter, start, stop, index, miss=-1)
    if cls.encode is CategoricalParameter.encode and cls.clip is CategoricalParameter.clip:
        index = {choice: i for i, choice in enumerate(parameter.choices)}
        return _OneHotWriter(parameter, start, stop, index,
                             miss=index[parameter.default])
    if (cls.encode is IntParameter.encode
            and cls.clip is IntParameter.clip
            and cls._to_unit is IntParameter._to_unit):
        return _NumericWriter(parameter, start, stop)
    return _FallbackWriter(parameter, start, stop)


class ConfigEncoder:
    """Encodes configurations of one space into flat numpy vectors."""

    #: default capacity of the LRU vector cache (vectors, not bytes).
    DEFAULT_CACHE_SIZE = 4096

    def __init__(self, space: ConfigSpace,
                 cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self.space = space
        self._names: List[str] = space.parameter_names()
        self._slices: Dict[str, Tuple[int, int]] = {}
        self._plan: List[_ColumnWriter] = []
        offset = 0
        for parameter in space.parameters():
            width = parameter.encoding_width
            self._slices[parameter.name] = (offset, offset + width)
            self._plan.append(_compile_writer(parameter, offset, offset + width))
            offset += width
        self._width = offset
        # Column -> owning parameter lookup table (O(1) parameter_for_column).
        self._column_owner: List[Parameter] = []
        for writer in self._plan:
            self._column_owner.extend(
                [writer.parameter] * (writer.stop - writer.start))
        # LRU cache of encoded vectors keyed by the configuration itself.
        self._cache: "OrderedDict[Configuration, np.ndarray]" = OrderedDict()
        self._cache_size = max(0, int(cache_size))
        self.cache_hits = 0
        self.cache_misses = 0
        #: batches in which a vectorized writer raised and its parameter was
        #: re-encoded through the reference path — should stay 0; a nonzero
        #: count means the fast path is silently degrading.
        self.plan_fallbacks = 0
        # z-score statistics, fitted lazily from observed data.
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # -- geometry -------------------------------------------------------------
    @property
    def width(self) -> int:
        """Dimension of the encoded vector."""
        return self._width

    def slice_for(self, name: str) -> Tuple[int, int]:
        """Return the [start, stop) columns occupied by parameter *name*."""
        return self._slices[name]

    def parameter_for_column(self, column: int) -> Parameter:
        """Return the parameter that owns encoded column *column*."""
        if not 0 <= column < self._width:
            raise IndexError("column {} outside encoded width {}".format(column, self._width))
        return self._column_owner[column]

    def column_labels(self) -> List[str]:
        """Human-readable label per encoded column (for importance reports)."""
        labels = []
        for parameter in self.space.parameters():
            width = parameter.encoding_width
            if width == 1:
                labels.append(parameter.name)
            else:
                values = parameter.domain_values() or range(width)
                labels.extend(
                    "{}={}".format(parameter.name, value) for value in list(values)[:width]
                )
        return labels

    # -- vector cache ----------------------------------------------------------
    def clear_cache(self) -> None:
        """Drop every cached vector (hit/miss counters are kept)."""
        self._cache.clear()

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    def _cache_lookup(self, configuration: Configuration) -> Optional[np.ndarray]:
        if not self._cache_size:
            return None
        cached = self._cache.get(configuration)
        if cached is not None:
            self._cache.move_to_end(configuration)
        return cached

    def _cache_store(self, configuration: Configuration, vector: np.ndarray) -> None:
        if not self._cache_size:
            return
        self._cache[configuration] = vector
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    # -- encode / decode --------------------------------------------------------
    def _encode_plan(self, configurations: Sequence[Configuration]) -> np.ndarray:
        """Columnar fast path: run every compiled writer over the batch."""
        out = np.zeros((len(configurations), self._width), dtype=np.float64)
        rows = np.arange(len(configurations))
        # Configuration._values dicts are built in space parameter order, so a
        # single C-level transpose yields one value column per parameter —
        # much cheaper than a per-parameter dict-lookup comprehension at
        # 192 x 362 items.  Configurations whose key order differs (foreign
        # spaces) are re-gathered by name.
        names = self._names
        value_rows = []
        for configuration in configurations:
            values_dict = configuration._values
            row = list(values_dict.values())
            if len(row) != len(names) or list(values_dict) != names:
                row = [values_dict[name] for name in names]
            value_rows.append(row)
        columns = list(zip(*value_rows))
        for writer, values in zip(self._plan, columns):
            try:
                writer.write(out, values, rows)
            except Exception:
                # Any surprise in the vectorized path (unhashable values,
                # overflow, exotic types) falls back to the reference encoder
                # for this parameter's columns only.
                self.plan_fallbacks += 1
                out[:, writer.start:writer.stop] = 0.0
                encode = writer.parameter.encode
                for row, value in enumerate(values):
                    out[row, writer.start:writer.stop] = encode(value)
        return out

    def encode_reference(self, configuration: Configuration) -> np.ndarray:
        """Reference scalar path: one ``Parameter.encode`` call per parameter.

        Kept as the equivalence oracle for the vectorized plan (tests assert
        the two paths are bit-identical) and used by the fallback writer.
        """
        vector = np.empty(self._width, dtype=np.float64)
        for parameter in self.space.parameters():
            start, stop = self._slices[parameter.name]
            vector[start:stop] = parameter.encode(configuration[parameter.name])
        return vector

    def encode(self, configuration: Configuration) -> np.ndarray:
        """Encode a single configuration into a float vector of length width.

        Returns a fresh array every call: mutating the result never poisons
        the cache.
        """
        cached = self._cache_lookup(configuration)
        if cached is None:
            self.cache_misses += 1
            cached = self._encode_plan([configuration])[0]
            self._cache_store(configuration, cached)
        else:
            self.cache_hits += 1
        return cached.copy()

    def encode_batch(self, configurations: Iterable[Configuration]) -> np.ndarray:
        """Encode many configurations into a (n, width) matrix."""
        configurations = list(configurations)
        if not configurations:
            return np.empty((0, self._width), dtype=np.float64)
        out = np.empty((len(configurations), self._width), dtype=np.float64)
        misses: List[Configuration] = []
        miss_index: Dict[Configuration, int] = {}
        pending: List[Tuple[int, int]] = []  # (output row, miss position)
        for row, configuration in enumerate(configurations):
            cached = self._cache_lookup(configuration)
            if cached is None:
                # Duplicates inside one batch are encoded exactly once.
                position = miss_index.get(configuration)
                if position is None:
                    position = len(misses)
                    miss_index[configuration] = position
                    misses.append(configuration)
                elif self._cache_size:
                    # In-batch dedup only reads as a hit when a cache exists.
                    self.cache_hits += 1
                pending.append((row, position))
            else:
                self.cache_hits += 1
                out[row] = cached
        if misses:
            self.cache_misses += len(misses)
            encoded = self._encode_plan(misses)
            for row, position in pending:
                out[row] = encoded[position]
            for configuration, vector in zip(misses, encoded):
                # Store a copy: rows of `out` are handed to the caller.
                self._cache_store(configuration, vector.copy())
        return out

    def decode(self, vector: Sequence[float]) -> Configuration:
        """Best-effort inverse of :meth:`encode`."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self._width,):
            raise ValueError(
                "expected vector of shape ({},), got {}".format(self._width, vector.shape)
            )
        values = {}
        for parameter in self.space.parameters():
            start, stop = self._slices[parameter.name]
            values[parameter.name] = parameter.decode(list(vector[start:stop]))
        return Configuration(self.space, values)

    # -- normalization ------------------------------------------------------------
    def fit_normalization(self, matrix: np.ndarray) -> None:
        """Fit z-score statistics from an (n, width) matrix of encoded configs."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self._width:
            raise ValueError("normalization data must be (n, {})".format(self._width))
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit normalization on an empty matrix")
        self._mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        # Constant columns carry no signal; leave them centred at zero with
        # unit scale instead of dividing by zero.
        std[std < 1e-12] = 1.0
        self._std = std

    @property
    def is_normalized(self) -> bool:
        return self._mean is not None

    def normalize(self, matrix: np.ndarray) -> np.ndarray:
        """Apply the fitted z-score transform (identity if not fitted)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if self._mean is None or self._std is None:
            return matrix
        return (matrix - self._mean) / self._std

    def encode_normalized(self, configurations: Iterable[Configuration]) -> np.ndarray:
        """Encode and z-score a batch in one call."""
        return self.normalize(self.encode_batch(configurations))

    # -- distances -------------------------------------------------------------------
    def distance(self, first: Configuration, second: Configuration) -> float:
        """Euclidean distance between two configurations in encoded space."""
        return float(np.linalg.norm(self.encode(first) - self.encode(second)))

    def dissimilarity(self, candidate: np.ndarray, known: np.ndarray) -> float:
        """Dissimilarity term of the DeepTune scoring function (paper eq. 2).

        ``ds(x, X) = 1 - 1 / (1 + ||x - X||^2)`` where ``||x - X||`` is the
        distance from the candidate to the closest known sample.  A value near
        0 means the candidate sits on top of an already explored point; a
        value near 1 means it lies in unexplored territory.

        The squared distance is averaged over the encoded dimensions so the
        term keeps a useful dynamic range on high-dimensional spaces (with raw
        Euclidean distances over hundreds of columns the expression saturates
        at 1 for every candidate).
        """
        candidate = np.asarray(candidate, dtype=np.float64)
        known = np.asarray(known, dtype=np.float64)
        if known.size == 0:
            return 1.0
        if known.ndim == 1:
            known = known.reshape(1, -1)
        distances = np.linalg.norm(known - candidate.reshape(1, -1), axis=1)
        nearest_sq = float(np.min(distances) ** 2) / max(1, self._width)
        return 1.0 - 1.0 / (1.0 + nearest_sq)
