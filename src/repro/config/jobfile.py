"""Job files: the on-disk description of an exploration.

Wayfinder takes as input "job files" describing the configuration space of
the target OS, the application and bench tool to run, and the search budget
(§3.1, §3.4).  The original system uses YAML; this reproduction ships a small
self-contained YAML-subset reader/writer (mappings, lists, scalars, comments)
so job files remain human-editable without adding a dependency, plus JSON as
an alternate format.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    HexParameter,
    IntParameter,
    Parameter,
    ParameterKind,
    StringParameter,
    TristateParameter,
)
from repro.config.space import ConfigSpace


# ---------------------------------------------------------------------------
# Minimal YAML subset
# ---------------------------------------------------------------------------

def _looks_numeric(text: str) -> bool:
    """True when the scalar parser would read *text* back as an int/float.

    Mirrors :func:`_parse_scalar`: ``int(text, 0)`` also accepts hex/octal/
    binary literals ("0x1f", "0o7", "0b101") and ``float`` accepts exponent
    and nan/inf spellings ("1e3", "nan", "-inf").
    """
    try:
        int(text, 0)
        return True
    except ValueError:
        pass
    try:
        float(text)
        return True
    except ValueError:
        return False


def _render_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    needs_quotes = (
        text == ""
        or text.strip() != text
        # "-x" at the start of a list item reads as nested-list syntax, and
        # "?" is a YAML indicator; quote both so the string survives.
        or text[0] in "-?"
        or any(ch in text for ch in ":#{}[],&*!|>'\"%@`")
        or text.lower() in ("null", "true", "false", "yes", "no", "~")
        # numeric-looking strings ("1.5", "007", "0x1f", "nan") would parse
        # back as numbers; quoting keeps the round trip type-faithful.
        or _looks_numeric(text)
    )
    if needs_quotes:
        return json.dumps(text)
    return text


def _dump_node(node: Any, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    if isinstance(node, dict):
        if not node:
            lines.append(pad + "{}")
            return
        for key, value in node.items():
            if isinstance(value, (dict, list)) and value:
                lines.append("{}{}:".format(pad, key))
                _dump_node(value, indent + 1, lines)
            else:
                lines.append("{}{}: {}".format(pad, key, _render_scalar(value) if not isinstance(value, (dict, list)) else ("{}" if isinstance(value, dict) else "[]")))
    elif isinstance(node, list):
        if not node:
            lines.append(pad + "[]")
            return
        for item in node:
            if isinstance(item, (dict, list)) and item:
                lines.append(pad + "-")
                _dump_node(item, indent + 1, lines)
            else:
                lines.append("{}- {}".format(pad, _render_scalar(item) if not isinstance(item, (dict, list)) else ("{}" if isinstance(item, dict) else "[]")))
    else:
        lines.append(pad + _render_scalar(node))


def dump_yaml(data: Any) -> str:
    """Render *data* (dicts, lists, scalars) to the supported YAML subset."""
    lines: List[str] = []
    _dump_node(data, 0, lines)
    return "\n".join(lines) + "\n"


def _parse_scalar(token: str) -> Any:
    token = token.strip()
    if token in ("", "~", "null", "Null", "NULL"):
        return None
    if token in ("true", "True", "yes", "Yes"):
        return True
    if token in ("false", "False", "no", "No"):
        return False
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return json.loads(token)
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return token[1:-1]
    if token.startswith("[") or token.startswith("{"):
        try:
            return json.loads(token)
        except json.JSONDecodeError:
            return token
    try:
        return int(token, 0)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _strip_comment(line: str) -> str:
    in_quote: Optional[str] = None
    for index, char in enumerate(line):
        if in_quote:
            if char == in_quote:
                in_quote = None
        elif char in ("'", '"'):
            in_quote = char
        elif char == "#":
            return line[:index]
    return line


def _prepare_lines(text: str) -> List[Tuple[int, str]]:
    prepared = []
    for raw in text.splitlines():
        line = _strip_comment(raw).rstrip()
        if not line.strip():
            continue
        indent = len(line) - len(line.lstrip(" "))
        prepared.append((indent, line.strip()))
    return prepared


def _parse_block(lines: List[Tuple[int, str]], start: int, indent: int) -> Tuple[Any, int]:
    """Parse a mapping or list block starting at *start* whose items are at *indent*."""
    if start >= len(lines):
        return {}, start
    is_list = lines[start][1].startswith("- ") or lines[start][1] == "-"
    container: Union[Dict[str, Any], List[Any]] = [] if is_list else {}
    index = start
    while index < len(lines):
        line_indent, content = lines[index]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise ValueError("unexpected indentation at line: {!r}".format(content))
        if is_list:
            if not (content.startswith("- ") or content == "-"):
                break
            payload = content[1:].strip()
            if not payload:
                child, index = _parse_block(lines, index + 1, _next_indent(lines, index, indent))
                container.append(child)
                continue
            if payload.endswith(":"):
                # mapping item whose first key holds a block value: further
                # keys of the same item may follow at the item's own indent
                # ("- match:\n    ...\n  set:\n    ..."), like real YAML.
                key = payload[:-1].strip()
                sibling_indent = indent + 2
                next_indent = _next_indent(lines, index, indent)
                if next_indent is not None and next_indent > sibling_indent:
                    child, index = _parse_block(lines, index + 1, next_indent)
                else:
                    child, index = None, index + 1
                item, index = _extend_list_item_mapping(
                    lines, index, sibling_indent, {key: child})
                container.append(item)
                continue
            if ": " in payload:
                # inline mapping item: subsequent deeper lines extend the mapping
                item, index = _parse_list_item_mapping(lines, index, indent, payload)
                container.append(item)
                continue
            container.append(_parse_scalar(payload))
            index += 1
        else:
            if content.startswith("- "):
                break
            key, _, rest = content.partition(":")
            key = key.strip()
            rest = rest.strip()
            if rest:
                container[key] = _parse_scalar(rest)
                index += 1
            else:
                next_indent = _next_indent(lines, index, indent)
                if next_indent is None:
                    container[key] = None
                    index += 1
                else:
                    child, index = _parse_block(lines, index + 1, next_indent)
                    container[key] = child
    return container, index


def _parse_list_item_mapping(
    lines: List[Tuple[int, str]], index: int, indent: int, payload: str
) -> Tuple[Dict[str, Any], int]:
    item: Dict[str, Any] = {}
    key, _, rest = payload.partition(":")
    item[key.strip()] = _parse_scalar(rest)
    return _extend_list_item_mapping(lines, index + 1, indent + 2, item)


def _extend_list_item_mapping(
    lines: List[Tuple[int, str]], index: int, child_indent: int,
    item: Dict[str, Any],
) -> Tuple[Dict[str, Any], int]:
    """Collect the remaining keys of a list-item mapping at *child_indent*."""
    while index < len(lines):
        line_indent, content = lines[index]
        if (line_indent < child_indent or content.startswith("- ")
                or content == "-"):
            break
        key, _, rest = content.partition(":")
        rest = rest.strip()
        if rest:
            item[key.strip()] = _parse_scalar(rest)
            index += 1
        else:
            next_indent = _next_indent(lines, index, child_indent)
            if next_indent is None:
                item[key.strip()] = None
                index += 1
            else:
                child, index = _parse_block(lines, index + 1, next_indent)
                item[key.strip()] = child
    return item, index


def _next_indent(lines: List[Tuple[int, str]], index: int, indent: int) -> Optional[int]:
    if index + 1 >= len(lines):
        return None
    next_indent = lines[index + 1][0]
    if next_indent <= indent:
        return None
    return next_indent


def load_yaml(text: str) -> Any:
    """Parse the supported YAML subset into dicts/lists/scalars."""
    lines = _prepare_lines(text)
    if not lines:
        return {}
    data, consumed = _parse_block(lines, 0, lines[0][0])
    if consumed != len(lines):
        raise ValueError("trailing content at line: {!r}".format(lines[consumed][1]))
    return data


# ---------------------------------------------------------------------------
# Job files
# ---------------------------------------------------------------------------

_PARAMETER_CLASSES = {
    "bool": BoolParameter,
    "tristate": TristateParameter,
    "int": IntParameter,
    "hex": HexParameter,
    "string": StringParameter,
    "categorical": CategoricalParameter,
}


def parameter_from_dict(data: Dict[str, Any]) -> Parameter:
    """Re-create a parameter from its job-file dictionary form."""
    type_name = data["type"]
    kind = ParameterKind(data["kind"])
    name = data["name"]
    description = data.get("description", "")
    if type_name == "bool":
        return BoolParameter(name, kind, default=bool(data.get("default", False)),
                             description=description)
    if type_name == "tristate":
        return TristateParameter(name, kind, default=data.get("default", "n"),
                                 description=description)
    if type_name in ("int", "hex"):
        cls = IntParameter if type_name == "int" else HexParameter
        return cls(
            name,
            kind,
            default=int(data["default"]),
            minimum=int(data["minimum"]),
            maximum=int(data["maximum"]),
            log_scale=bool(data.get("log_scale", False)),
            description=description,
        )
    if type_name in ("string", "categorical"):
        cls = StringParameter if type_name == "string" else CategoricalParameter
        return cls(
            name,
            kind,
            choices=data["choices"],
            default=data.get("default"),
            description=description,
        )
    raise ValueError("unknown parameter type {!r}".format(type_name))


class JobFile:
    """A complete description of one exploration job.

    Attributes mirror the fields a user would fill in: the OS and application
    under test, the bench tool and metric, the budget, frozen parameters, and
    the configuration space itself.
    """

    #: favor_kinds combinations expressible as a spec favor preset.
    _FAVOR_KIND_PRESETS = {
        ("runtime",): "runtime",
        ("boot",): "boot",
        ("compile",): "compile",
        ("runtime", "boot"): "runtime+boot",
        ("boot", "runtime"): "runtime+boot",
    }

    def __init__(
        self,
        name: str,
        os_name: str,
        application: str,
        bench_tool: str,
        metric: str,
        space: ConfigSpace,
        iterations: int = 250,
        time_budget_s: Optional[float] = None,
        favor_kinds: Optional[List[str]] = None,
        frozen: Optional[Dict[str, Any]] = None,
        seed: int = 0,
        workers: int = 1,
        batch_size: int = 1,
        execution: str = "batch",
        algorithm: str = "deeptune",
        plateau_trials: Optional[int] = None,
        warm_start: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.os_name = os_name
        self.application = application
        self.bench_tool = bench_tool
        self.metric = metric
        self.space = space
        self.iterations = iterations
        self.time_budget_s = time_budget_s
        self.favor_kinds = list(favor_kinds or [])
        self.frozen = dict(frozen or {})
        self.seed = seed
        #: simulated system-under-test machines evaluating trials in parallel.
        self.workers = workers
        #: configurations proposed per search round.
        self.batch_size = batch_size
        #: execution mode: "batch" (barrier rounds) or "async"
        #: (completion-driven dispatch, no barrier).
        self.execution = execution
        #: search algorithm to drive the exploration with.
        self.algorithm = algorithm
        #: optional early stop: trials without a new incumbent before giving up.
        self.plateau_trials = plateau_trials
        #: optional surrogate-zoo warm start: {"zoo": dir, "min_similarity":
        #: float, "donor": app} — see repro.deeptune.transfer.
        self.warm_start = dict(warm_start) if warm_start else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job": {
                "name": self.name,
                "os": self.os_name,
                "application": self.application,
                "bench_tool": self.bench_tool,
                "metric": self.metric,
                "iterations": self.iterations,
                "time_budget_s": self.time_budget_s,
                "favor_kinds": self.favor_kinds,
                "frozen": self.frozen,
                "seed": self.seed,
                "workers": self.workers,
                "batch_size": self.batch_size,
                "execution": self.execution,
                "algorithm": self.algorithm,
                "plateau_trials": self.plateau_trials,
                "warm_start": self.warm_start,
            },
            "parameters": [parameter.to_dict() for parameter in self.space.parameters()],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobFile":
        job = data.get("job", {})
        parameters = [parameter_from_dict(entry) for entry in data.get("parameters", [])]
        space = ConfigSpace(parameters, name=job.get("name", "job"))
        frozen = job.get("frozen") or {}
        for name, value in frozen.items():
            if name in space:
                space.freeze(name, value)
        return cls(
            name=job.get("name", "job"),
            os_name=job.get("os", "linux"),
            application=job.get("application", "nginx"),
            bench_tool=job.get("bench_tool", "wrk"),
            metric=job.get("metric", "throughput"),
            space=space,
            iterations=int(job.get("iterations", 250)),
            time_budget_s=job.get("time_budget_s"),
            favor_kinds=job.get("favor_kinds") or [],
            frozen=frozen,
            seed=int(job.get("seed", 0)),
            workers=int(job.get("workers", 1)),
            batch_size=int(job.get("batch_size", 1)),
            execution=job.get("execution") or "batch",
            algorithm=job.get("algorithm") or "deeptune",
            plateau_trials=job.get("plateau_trials"),
            warm_start=job.get("warm_start"),
        )

    def to_spec(self, **overrides: Any):
        """Build the :class:`~repro.core.spec.ExperimentSpec` this job describes.

        The declarative job fields (OS, application, metric, budget, fleet
        shape, frozen parameters) map one-to-one onto the spec; *overrides*
        replace individual spec fields, which is how the CLI applies explicit
        flags on top of a job file.  The job's parameter list itself is not
        carried over: the platform searches the target OS model's space, and
        the embedded space documents the probed subset for reproducibility.
        """
        # Imported lazily: the config layer stays importable without the
        # core/search stack.
        from repro.core.spec import UNSPECIFIED, ExperimentSpec

        kinds = tuple(self.favor_kinds)
        if not kinds:
            favor: Any = UNSPECIFIED
        elif kinds in self._FAVOR_KIND_PRESETS:
            favor = self._FAVOR_KIND_PRESETS[kinds]
        elif (kinds[0],) in self._FAVOR_KIND_PRESETS:
            # combination with no exact preset: keep the historical CLI
            # behaviour of honouring the first kind, but say so.
            favor = self._FAVOR_KIND_PRESETS[(kinds[0],)]
            warnings.warn(
                "favor_kinds {!r} has no exact favor preset; favoring "
                "{!r} only".format(self.favor_kinds, favor), stacklevel=2)
        else:
            raise ValueError(
                "favor_kinds {!r} has no favor preset equivalent".format(
                    self.favor_kinds))
        fields = {
            "name": self.name,
            "os_name": self.os_name,
            "application": self.application,
            "metric": self.metric,
            "algorithm": self.algorithm,
            "favor": favor,
            "seed": self.seed,
            "iterations": self.iterations,
            "time_budget_s": self.time_budget_s,
            "plateau_trials": self.plateau_trials,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "execution": self.execution,
            "frozen": dict(self.frozen),
            "warm_start": dict(self.warm_start) if self.warm_start else None,
        }
        fields.update(overrides)
        return ExperimentSpec(**fields)

    def __repr__(self) -> str:
        return "JobFile(name={!r}, os={!r}, app={!r}, metric={!r}, params={})".format(
            self.name, self.os_name, self.application, self.metric, len(self.space)
        )


def dump_job_file(job: JobFile, path: str) -> None:
    """Write *job* to *path* (format chosen by extension: .json or .yaml/.yml)."""
    data = job.to_dict()
    _, ext = os.path.splitext(path)
    with open(path, "w") as handle:
        if ext.lower() == ".json":
            json.dump(data, handle, indent=2, sort_keys=False)
            handle.write("\n")
        else:
            handle.write(dump_yaml(data))


def load_job_file(path: str) -> JobFile:
    """Load a job file previously written by :func:`dump_job_file`."""
    _, ext = os.path.splitext(path)
    with open(path) as handle:
        text = handle.read()
    if ext.lower() == ".json":
        data = json.loads(text)
    else:
        data = load_yaml(text)
    return JobFile.from_dict(data)


# ---------------------------------------------------------------------------
# Campaign files
# ---------------------------------------------------------------------------

def dump_campaign_file(campaign, path: str) -> None:
    """Write a :class:`~repro.core.campaign.CampaignSpec` to *path*.

    The document nests the campaign under a top-level ``campaign:`` key
    (mirroring the ``job:`` key of job files); the format is chosen by the
    file extension, .json or .yaml/.yml.
    """
    data = {"campaign": campaign.to_dict()}
    _, ext = os.path.splitext(path)
    with open(path, "w") as handle:
        if ext.lower() == ".json":
            json.dump(data, handle, indent=2, sort_keys=False)
            handle.write("\n")
        else:
            handle.write(dump_yaml(data))


def load_campaign_file(path: str):
    """Load a campaign spec from a YAML/JSON file written by hand or by
    :func:`dump_campaign_file`.

    Besides the grid axes and ``base``/``overrides`` blocks, the campaign
    mapping may carry a ``chaos:`` block (``seed``, ``kill_rate``,
    ``torn_write_rate``, ``startup_failure_rate``) enabling deterministic
    fault injection for every worker that runs the campaign — see
    :mod:`repro.platform.faults`.
    """
    # Imported lazily: the config layer stays importable without the
    # core/search stack (mirrors JobFile.to_spec).
    from repro.core.campaign import CampaignSpec

    _, ext = os.path.splitext(path)
    with open(path) as handle:
        text = handle.read()
    if ext.lower() == ".json":
        data = json.loads(text)
    else:
        data = load_yaml(text)
    if not isinstance(data, dict) or "campaign" not in data:
        raise ValueError(
            "{} is not a campaign file (expected a top-level 'campaign:' "
            "mapping)".format(path))
    return CampaignSpec.from_dict(data["campaign"])
