"""Wayfinder: Automated Operating System Specialization — Python reproduction.

This package reproduces the Wayfinder system (EuroSys'26): an automated OS
specialization framework that searches the configuration space of an operating
system (compile-time, boot-time and runtime parameters) for configurations
specialized towards a target application, workload and metric.  The search is
driven by DeepTune, a multitask neural network that predicts configuration
performance, crash likelihood and prediction uncertainty.

The public entry point is :class:`repro.core.Wayfinder`:

    >>> from repro import Wayfinder
    >>> wf = Wayfinder.for_linux(application="nginx", metric="throughput", seed=1)
    >>> result = wf.specialize(iterations=30)
    >>> result.best_performance > 0
    True
"""

__version__ = "1.0.0"

__all__ = [
    "CampaignSpec",
    "ExperimentSpec",
    "Wayfinder",
    "SpecializationSession",
    "SearchResult",
    "__version__",
]

_LAZY_EXPORTS = {"CampaignSpec", "ExperimentSpec", "Wayfinder",
                 "SpecializationSession", "SearchResult"}


def __getattr__(name):
    """Lazily expose the high-level API from :mod:`repro.core`.

    The subpackages (``repro.config``, ``repro.vm``, ...) stay importable on
    their own without pulling in the whole stack.
    """
    if name in _LAZY_EXPORTS:
        from repro import core

        return getattr(core, name)
    raise AttributeError("module {!r} has no attribute {!r}".format(__name__, name))
