"""Boot simulation: bringing up a built image inside the virtual machine.

Booting applies the boot-time command line, mounts the root filesystem,
starts the init system and exposes the runtime parameter tree (/proc/sys and
/sys, modelled by :class:`repro.sysctl.ProcFS`).  The boot simulator reports
the boot duration, the resident memory footprint of the freshly booted image
(the Figure 10 metric) and whether the boot failed.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.config.parameter import ParameterKind
from repro.config.space import Configuration
from repro.sysctl.procfs import ProcFS
from repro.vm.failures import FailureModel, FailureStage
from repro.vm.footprint import FootprintModel
from repro.vm.machine import PAPER_TESTBED, HardwareSpec
from repro.vm.os_model import OSModel


class BootResult:
    """Outcome of booting one built image."""

    def __init__(self, success: bool, duration_s: float, memory_mb: float,
                 procfs: Optional[ProcFS] = None, reason: str = "") -> None:
        self.success = success
        self.duration_s = duration_s
        self.memory_mb = memory_mb
        self.procfs = procfs
        self.reason = reason

    def __repr__(self) -> str:
        status = "ok" if self.success else "failed: {}".format(self.reason)
        return "BootResult({}, {:.1f}s, {:.1f} MB)".format(status, self.duration_s,
                                                           self.memory_mb)


class BootSimulator:
    """Simulates booting an image and applying its boot-time parameters."""

    def __init__(self, os_model: OSModel, failure_model: FailureModel,
                 hardware: HardwareSpec = PAPER_TESTBED) -> None:
        self.os_model = os_model
        self.failure_model = failure_model
        self.hardware = hardware
        self.footprint_model = FootprintModel(os_model)

    def _jitter(self, configuration: Configuration, salt: str, scale: float) -> float:
        digest = hashlib.sha256(salt.encode())
        for name in sorted(configuration):
            digest.update(name.encode())
            digest.update(repr(configuration[name]).encode())
        unit = int.from_bytes(digest.digest()[:8], "big") / float(1 << 64)
        return 1.0 + scale * (2.0 * unit - 1.0)

    def estimate_duration(self, configuration: Configuration) -> float:
        """Simulated seconds from power-on to a usable userspace."""
        duration = self.os_model.base_boot_time_s
        # Probing and initializing each enabled feature costs a little time.
        enabled = 0
        for parameter in self.os_model.space.parameters_of_kind(ParameterKind.COMPILE_TIME):
            if self.os_model.is_feature_enabled(configuration, parameter.name):
                enabled += 1
        duration += 0.01 * enabled
        # A verbose console slows the boot substantially (serial console writes).
        loglevel = configuration.get("boot.loglevel", 4)
        if not configuration.get("boot.quiet", True):
            duration += 1.5
        try:
            if int(loglevel) >= 7:
                duration += 2.0
        except (TypeError, ValueError):
            pass
        if self.hardware.emulated:
            duration *= 6.0
        return duration * self._jitter(configuration, "boot-time", 0.10)

    def boot(self, configuration: Configuration, application: str) -> BootResult:
        """Boot the image built from *configuration*."""
        duration = self.estimate_duration(configuration)
        failure = self.failure_model.evaluate(configuration, application)
        if failure.stage is FailureStage.BOOT:
            # A failed boot is usually detected by a watchdog timeout.
            return BootResult(False, duration + 30.0, 0.0, reason=failure.reason)
        memory = self.footprint_model.footprint_mb(configuration)
        procfs = ProcFS()
        # Apply the runtime portion of the configuration to the procfs tree so
        # later probing sees the configured values.
        for name, value in configuration.subset(ParameterKind.RUNTIME).items():
            try:
                procfs.write(name, value)
            except (FileNotFoundError, RuntimeError):
                continue
        return BootResult(True, duration, memory, procfs=procfs)
