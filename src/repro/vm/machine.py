"""Hardware platform descriptions.

The experiments in the paper run on a dual-socket Intel Xeon E5-2697 v2
(2 x 24 cores at 2.70 GHz, 128 GB RAM) restricted to a single NUMA node, and
the memory-footprint experiment targets a RISC-V embedded board emulated with
QEMU.  The hardware description feeds the build/boot duration models and the
application performance models (core counts, clock speed).
"""

from __future__ import annotations

from typing import Dict


class HardwareSpec:
    """A description of the machine (or emulated board) hosting the tests."""

    def __init__(
        self,
        name: str,
        cores: int,
        frequency_ghz: float,
        ram_gb: int,
        numa_nodes: int = 1,
        architecture: str = "x86_64",
        emulated: bool = False,
    ) -> None:
        if cores < 1:
            raise ValueError("a machine needs at least one core")
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if ram_gb < 1:
            raise ValueError("a machine needs at least 1 GB of RAM")
        self.name = name
        self.cores = cores
        self.frequency_ghz = frequency_ghz
        self.ram_gb = ram_gb
        self.numa_nodes = numa_nodes
        self.architecture = architecture
        self.emulated = emulated

    @property
    def compute_scale(self) -> float:
        """Relative single-thread compute capability (1.0 = paper testbed core)."""
        reference = 2.7
        scale = self.frequency_ghz / reference
        if self.emulated:
            # Full-system emulation costs roughly an order of magnitude; the
            # paper notes emulation affects performance but not memory usage.
            scale *= 0.08
        return scale

    def restrict_to_numa_node(self) -> "HardwareSpec":
        """Return a copy restricted to a single NUMA node (as in the paper)."""
        if self.numa_nodes <= 1:
            return self
        return HardwareSpec(
            name=self.name + "-node0",
            cores=self.cores // self.numa_nodes,
            frequency_ghz=self.frequency_ghz,
            ram_gb=self.ram_gb // self.numa_nodes,
            numa_nodes=1,
            architecture=self.architecture,
            emulated=self.emulated,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "cores": self.cores,
            "frequency_ghz": self.frequency_ghz,
            "ram_gb": self.ram_gb,
            "numa_nodes": self.numa_nodes,
            "architecture": self.architecture,
            "emulated": self.emulated,
        }

    def __repr__(self) -> str:
        return "HardwareSpec({!r}, {} cores @ {} GHz, {} GB RAM)".format(
            self.name, self.cores, self.frequency_ghz, self.ram_gb
        )


#: The dual-socket Xeon used for the paper's main experiments, restricted to
#: a single NUMA node of 24 cores / 64 GB as described in §4.
PAPER_TESTBED = HardwareSpec(
    name="xeon-e5-2697v2",
    cores=24,
    frequency_ghz=2.7,
    ram_gb=64,
    numa_nodes=1,
    architecture="x86_64",
)

#: The emulated RISC-V target of the memory-footprint experiment (§4.4).
RISCV_EMBEDDED_BOARD = HardwareSpec(
    name="qemu-riscv64-virt",
    cores=4,
    frequency_ghz=1.0,
    ram_gb=2,
    numa_nodes=1,
    architecture="riscv64",
    emulated=True,
)
