"""End-to-end simulated evaluation of one configuration.

The :class:`SystemSimulator` is the reproduction's stand-in for the paper's
QEMU/KVM testbed: given an OS model, an application and a bench tool, it runs
the full build → boot → benchmark pipeline for a configuration and reports
the measured metric, the memory footprint, whether and where the
configuration failed, and how much (simulated) wall-clock time was consumed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.config.space import Configuration
from repro.vm.boot import BootSimulator
from repro.vm.build import BuildSimulator
from repro.vm.failures import FailureModel, FailureStage
from repro.vm.machine import PAPER_TESTBED, HardwareSpec
from repro.vm.os_model import OSModel

if TYPE_CHECKING:  # imported lazily to avoid a circular import with repro.apps
    from repro.apps.base import Application, BenchmarkTool


class EvaluationOutcome:
    """Everything the platform learns from evaluating one configuration."""

    def __init__(
        self,
        configuration: Configuration,
        crashed: bool,
        failure_stage: FailureStage,
        failure_reason: str,
        metric_value: Optional[float],
        memory_mb: Optional[float],
        build_duration_s: float,
        boot_duration_s: float,
        run_duration_s: float,
        build_skipped: bool,
    ) -> None:
        self.configuration = configuration
        self.crashed = crashed
        self.failure_stage = failure_stage
        self.failure_reason = failure_reason
        self.metric_value = metric_value
        self.memory_mb = memory_mb
        self.build_duration_s = build_duration_s
        self.boot_duration_s = boot_duration_s
        self.run_duration_s = run_duration_s
        self.build_skipped = build_skipped

    @property
    def total_duration_s(self) -> float:
        return self.build_duration_s + self.boot_duration_s + self.run_duration_s

    def __repr__(self) -> str:
        if self.crashed:
            return "EvaluationOutcome(crashed at {}: {})".format(
                self.failure_stage.value, self.failure_reason
            )
        return "EvaluationOutcome(metric={:.1f}, memory={:.1f} MB, {:.0f}s)".format(
            self.metric_value, self.memory_mb, self.total_duration_s
        )


class SystemSimulator:
    """Simulates configure/build/boot/benchmark of OS images."""

    #: seconds to apply runtime sysctls when reusing an already booted image.
    RUNTIME_APPLY_S = 2.0

    def __init__(
        self,
        os_model: OSModel,
        application: Application,
        bench_tool: BenchmarkTool,
        hardware: HardwareSpec = PAPER_TESTBED,
        seed: int = 0,
    ) -> None:
        self.os_model = os_model
        self.application = application
        self.bench_tool = bench_tool
        self.hardware = hardware
        self.failure_model = FailureModel(os_model, seed=seed)
        self.build_simulator = BuildSimulator(os_model, self.failure_model, hardware)
        self.boot_simulator = BootSimulator(os_model, self.failure_model, hardware)
        self._rng = random.Random(seed ^ 0x5F5E5F)

    # -- checkpointing ------------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the measurement-noise RNG (the only mutable state).

        The failure model draws from a deterministic configuration hash and
        the build/boot simulators are stateless, so restoring the RNG stream
        makes a resumed run reproduce the remaining measurements exactly.
        """
        return {"rng": self._rng.getstate()}

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self._rng.setstate(state["rng"])

    # -- helpers -----------------------------------------------------------------
    def crash_probability(self, configuration: Configuration) -> float:
        """Expose the failure model's overall crash probability (for analysis)."""
        return self.failure_model.crash_probability(configuration, self.application.name)

    # -- evaluation -----------------------------------------------------------------
    def evaluate(self, configuration: Configuration,
                 reuse_image: bool = False) -> EvaluationOutcome:
        """Run the full pipeline on *configuration*.

        With ``reuse_image=True`` the build and boot stages are skipped: the
        previously booted image is kept and only the runtime parameters are
        re-applied (the platform requests this when two consecutive
        configurations differ only in runtime parameters, §3.1).
        """
        app_name = self.application.name
        build_duration = 0.0
        boot_duration = 0.0

        if reuse_image:
            build_duration = 0.0
            boot_duration = self.RUNTIME_APPLY_S
            failure = self.failure_model.evaluate(configuration, app_name)
            # Build/boot failures cannot occur: the image is already running.
            if failure.stage in (FailureStage.BUILD, FailureStage.BOOT):
                failure_stage = FailureStage.NONE
            else:
                failure_stage = failure.stage
            memory = self.boot_simulator.footprint_model.footprint_mb(configuration)
        else:
            build = self.build_simulator.build(configuration, app_name)
            build_duration = build.duration_s
            if not build.success:
                return EvaluationOutcome(
                    configuration, True, FailureStage.BUILD, build.reason,
                    None, None, build_duration, 0.0, 0.0, build_skipped=False,
                )
            boot = self.boot_simulator.boot(configuration, app_name)
            boot_duration = boot.duration_s
            if not boot.success:
                return EvaluationOutcome(
                    configuration, True, FailureStage.BOOT, boot.reason,
                    None, None, build_duration, boot_duration, 0.0, build_skipped=False,
                )
            memory = boot.memory_mb
            failure = self.failure_model.evaluate(configuration, app_name)
            failure_stage = failure.stage if failure.stage is FailureStage.RUN else FailureStage.NONE

        if failure_stage is FailureStage.RUN:
            # The application crashed or hung: the platform detects this via a
            # timeout, so a failed run still costs benchmark time.
            run_duration = self.bench_tool.run_duration_s(self._rng) * 1.3
            reason = failure.reason if failure.stage is FailureStage.RUN else ""
            return EvaluationOutcome(
                configuration, True, FailureStage.RUN, reason,
                None, memory, build_duration, boot_duration, run_duration,
                build_skipped=reuse_image,
            )

        measurement = self.bench_tool.measure(
            self.application, configuration, self.hardware, self._rng
        )
        return EvaluationOutcome(
            configuration, False, FailureStage.NONE, "",
            measurement.value, memory, build_duration, boot_duration,
            measurement.duration_s, build_skipped=reuse_image,
        )
