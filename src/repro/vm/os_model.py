"""Operating-system models binding a configuration space to behaviour metadata.

An :class:`OSModel` is what the simulated build/boot/run pipeline needs to
know about the OS under test beyond the raw configuration space: which
options are fragile (likely to break a build or boot when set to unusual
values), how much memory each compile-time feature costs, and which features
each application cannot run without.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.config.space import Configuration, ConfigSpace
from repro.kconfig.linux import LinuxSpaceBuilder
from repro.kconfig.unikraft import unikraft_nginx_space


class OSModel:
    """Behavioural metadata of an operating system under test."""

    def __init__(
        self,
        name: str,
        version: str,
        space: ConfigSpace,
        fragile_options: Iterable[str] = (),
        footprint_costs: Optional[Mapping[str, float]] = None,
        essential_features: Optional[Mapping[str, Iterable[str]]] = None,
        base_footprint_mb: float = 160.0,
        base_build_time_s: float = 150.0,
        base_boot_time_s: float = 8.0,
        is_unikernel: bool = False,
    ) -> None:
        self.name = name
        self.version = version
        self.space = space
        self.fragile_options: Set[str] = {n for n in fragile_options if n in space}
        self.footprint_costs: Dict[str, float] = {
            n: float(v) for n, v in (footprint_costs or {}).items() if n in space
        }
        self.essential_features: Dict[str, List[str]] = {
            app: [n for n in names if n in space]
            for app, names in (essential_features or {}).items()
        }
        self.base_footprint_mb = base_footprint_mb
        self.base_build_time_s = base_build_time_s
        self.base_boot_time_s = base_boot_time_s
        self.is_unikernel = is_unikernel

    # -- convenience -----------------------------------------------------------
    def default_configuration(self) -> Configuration:
        return self.space.default_configuration()

    def essential_for(self, application: str) -> List[str]:
        """Compile-time options *application* cannot run without."""
        return list(self.essential_features.get(application, []))

    def is_feature_enabled(self, configuration: Mapping[str, object], name: str) -> bool:
        """Interpret the configured value of a feature flag as enabled/disabled."""
        if name not in configuration:
            return False
        value = configuration[name]
        return value in (True, 1, "y", "m")

    def __repr__(self) -> str:
        return "OSModel(name={!r}, version={!r}, parameters={})".format(
            self.name, self.version, len(self.space)
        )


def linux_os_model(
    version: str = "v4.19",
    seed: int = 0,
    extra_compile: int = 120,
    extra_runtime: int = 80,
    extra_boot: int = 12,
    architecture: str = "x86_64",
) -> OSModel:
    """Build the Linux OS model used by the experiments.

    The *architecture* only changes the model name and base footprint (the
    RISC-V images of the memory-footprint experiment are somewhat smaller).
    """
    builder = LinuxSpaceBuilder(version=version, seed=seed)
    space = builder.experiment_space(
        extra_compile=extra_compile, extra_runtime=extra_runtime, extra_boot=extra_boot
    )

    footprint = builder.footprint_costs()
    fragile = set(builder.fragile_option_names())
    for option in builder.filler_option_metadata():
        if option.footprint_cost > 0:
            footprint[option.name] = option.footprint_cost
        if option.fragile:
            fragile.add(option.name)

    essential = {
        app: builder.essential_features(app)
        for app in ("nginx", "redis", "sqlite", "npb")
    }

    base_footprint = 182.0 if architecture == "x86_64" else 176.0
    return OSModel(
        name="linux-{}".format(architecture),
        version=version,
        space=space,
        fragile_options=fragile,
        footprint_costs=footprint,
        essential_features=essential,
        base_footprint_mb=base_footprint,
        base_build_time_s=180.0,
        base_boot_time_s=9.0,
        is_unikernel=False,
    )


def unikraft_os_model(seed: int = 0) -> OSModel:
    """Build the Unikraft OS model of the §4.4 experiment (Nginx workload)."""
    space = unikraft_nginx_space()
    footprint = {
        "uk.lwip": 900.0,
        "uk.vfs_cache_entries": 0.0,
        "uk.trace": 350.0,
        "uk.debug_printk": 120.0,
        "uk.alloc_stats": 60.0,
    }
    fragile = {"uk.heap_pages", "uk.lwip_pbuf_pool_size", "uk.boot_stack_pages",
               "uk.thread_stack_pages"}
    essential = {"nginx": ["uk.lwip"]}
    return OSModel(
        name="unikraft",
        version="0.16",
        space=space,
        fragile_options=fragile,
        footprint_costs=footprint,
        essential_features=essential,
        base_footprint_mb=6.0,
        base_build_time_s=35.0,
        base_boot_time_s=0.5,
        is_unikernel=True,
    )
