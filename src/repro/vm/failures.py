"""Failure model: which configurations break the build, the boot, or the run.

The paper observes that roughly one third of randomly generated Linux
configurations fail — the kernel does not build, does not boot, or the
application crashes or hangs.  Failures are not arbitrary: they are caused by
specific parameter values (memory watermarks set close to the machine's RAM,
overcommit disabled for allocation-hungry workloads, essential subsystems
compiled out, tiny heap sizes on a unikernel, ...).  DeepTune's crash
prediction head can only work because these causes are learnable functions of
the configuration, so the model below is built from explicit *hazards*: a
predicate over the configuration plus a conditional failure probability.  The
final draw is a deterministic hash of the configuration, keeping every
experiment reproducible.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.config.space import Configuration
from repro.vm.os_model import OSModel


class FailureStage(enum.Enum):
    """The stage of the evaluation pipeline at which a configuration fails."""

    NONE = "none"
    BUILD = "build"
    BOOT = "boot"
    RUN = "run"

    @property
    def is_failure(self) -> bool:
        return self is not FailureStage.NONE


class Hazard:
    """A single failure cause: a predicate plus a conditional probability."""

    def __init__(
        self,
        stage: FailureStage,
        probability: float,
        reason: str,
        predicate: Callable[[Mapping[str, object], str], bool],
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("hazard probability must be in [0, 1]")
        self.stage = stage
        self.probability = probability
        self.reason = reason
        self.predicate = predicate

    def triggered(self, configuration: Mapping[str, object], application: str) -> bool:
        try:
            return bool(self.predicate(configuration, application))
        except KeyError:
            return False

    def __repr__(self) -> str:
        return "Hazard({}, p={:.2f}, {!r})".format(self.stage.value, self.probability,
                                                   self.reason)


class FailureRecord:
    """The outcome of the failure model for one configuration."""

    def __init__(self, stage: FailureStage, reason: str = "",
                 triggered: Optional[Sequence[Hazard]] = None) -> None:
        self.stage = stage
        self.reason = reason
        self.triggered = list(triggered or [])

    @property
    def failed(self) -> bool:
        return self.stage.is_failure

    def __repr__(self) -> str:
        if not self.failed:
            return "FailureRecord(ok)"
        return "FailureRecord({}: {})".format(self.stage.value, self.reason)


def _value(config: Mapping[str, object], name: str, default=0):
    return config.get(name, default)


def _enabled(config: Mapping[str, object], name: str) -> bool:
    return _value(config, name, False) in (True, 1, "y", "m")


def _network_app(application: str) -> bool:
    return application in ("nginx", "redis")


def _linux_hazards(os_model: OSModel) -> List[Hazard]:
    """Failure causes of the simulated Linux kernel."""
    hazards: List[Hazard] = [
        # -- build-time ------------------------------------------------------
        Hazard(FailureStage.BUILD, 0.35, "KASAN instrumentation breaks out-of-tree drivers",
               lambda c, a: _enabled(c, "CONFIG_KASAN")),
        Hazard(FailureStage.BUILD, 0.30, "SLOB allocator incompatible with enabled subsystems",
               lambda c, a: _value(c, "CONFIG_SLAB_ALLOCATOR", "SLUB") == "SLOB"),
        Hazard(FailureStage.BUILD, 0.20, "DEBUG_PAGEALLOC conflicts with DMA-heavy drivers",
               lambda c, a: _enabled(c, "CONFIG_DEBUG_PAGEALLOC")),
        # -- boot-time --------------------------------------------------------
        Hazard(FailureStage.BOOT, 0.95, "no virtio-pci transport: no disk or NIC",
               lambda c, a: "CONFIG_VIRTIO_PCI" in c and not _enabled(c, "CONFIG_VIRTIO_PCI")),
        Hazard(FailureStage.BOOT, 0.90, "root filesystem driver (virtio-blk) compiled out",
               lambda c, a: "CONFIG_VIRTIO_BLK" in c and not _enabled(c, "CONFIG_VIRTIO_BLK")),
        Hazard(FailureStage.BOOT, 0.85, "ext4 support compiled out, root fs unmountable",
               lambda c, a: "CONFIG_EXT4_FS" in c and not _enabled(c, "CONFIG_EXT4_FS")),
        Hazard(FailureStage.BOOT, 0.30, "init scripts require /proc/sys",
               lambda c, a: "CONFIG_PROC_SYSCTL" in c and not _enabled(c, "CONFIG_PROC_SYSCTL")),
        Hazard(FailureStage.BOOT, 0.80, "boot-time hugepage reservation exhausts RAM",
               lambda c, a: _value(c, "boot.hugepages", 0) > 4096),
        Hazard(FailureStage.BOOT, 0.25, "NR_CPUS=1 with SMP scheduler topology",
               lambda c, a: _enabled(c, "CONFIG_SMP") and _value(c, "CONFIG_NR_CPUS", 64) <= 1),
        # -- runtime ------------------------------------------------------------
        Hazard(FailureStage.RUN, 0.90, "vm.min_free_kbytes set close to total RAM",
               lambda c, a: _value(c, "vm.min_free_kbytes", 0) > 1_500_000),
        Hazard(FailureStage.RUN, 0.85, "strict overcommit with low ratio starves the allocator",
               lambda c, a: _value(c, "vm.overcommit_memory", 0) == 2
               and _value(c, "vm.overcommit_ratio", 50) < 40),
        Hazard(FailureStage.RUN, 0.75, "runtime hugepage reservation evicts the page cache",
               lambda c, a: _value(c, "vm.nr_hugepages", 0) > 4096),
        Hazard(FailureStage.RUN, 0.70, "fs.file-max too low for the workload",
               lambda c, a: _value(c, "fs.file-max", 811896) < 2048),
        Hazard(FailureStage.RUN, 0.45, "accept backlog too small, connection storm stalls",
               lambda c, a: _network_app(a) and _value(c, "net.core.somaxconn", 128) < 32),
        Hazard(FailureStage.RUN, 0.35, "aggressive busy polling starves the benchmark client",
               lambda c, a: _value(c, "net.core.busy_poll", 0) > 150
               and _value(c, "net.core.busy_read", 0) > 150),
        Hazard(FailureStage.RUN, 0.40, "panic_on_oops with a warning-generating configuration",
               lambda c, a: _value(c, "kernel.panic_on_oops", 0) == 1
               and _value(c, "kernel.printk", 7) >= 8),
    ]

    # Essential compile-time features per application: the workload cannot run
    # without them, independently of everything else.
    def make_missing_feature(feature: str, apps: Tuple[str, ...]):
        return Hazard(
            FailureStage.RUN,
            0.97,
            "{} required by the application is disabled".format(feature),
            lambda c, a, feature=feature, apps=apps: a in apps
            and feature in c and not _enabled(c, feature),
        )

    for application, features in os_model.essential_features.items():
        for feature in features:
            # Boot-critical features are already covered above.
            if feature in ("CONFIG_VIRTIO_PCI", "CONFIG_VIRTIO_BLK", "CONFIG_EXT4_FS"):
                continue
            hazards.append(make_missing_feature(feature, (application,)))

    # Fragile generated filler options: unusual values occasionally break the
    # build, modelling the long tail of obscure interactions.
    fragile_fillers = [name for name in os_model.fragile_options
                       if name.startswith("CONFIG_") and "_OPT" in name]
    if fragile_fillers:
        def filler_flipped(config: Mapping[str, object], _app: str,
                           names=tuple(fragile_fillers)) -> bool:
            # Only count fragile options that were switched *on* away from
            # their default (or, for numeric options, pushed far above it):
            # turning untouched drivers off — what debloating does — is safe,
            # enabling unusual combinations of them is what breaks builds.
            flipped = 0
            for name in names:
                if name not in config:
                    continue
                parameter = os_model.space[name]
                value = config[name]
                if value == parameter.default:
                    continue
                if value in (True, "y", "m"):
                    flipped += 1
                elif isinstance(value, int) and not isinstance(value, bool):
                    try:
                        default = int(parameter.default)
                    except (TypeError, ValueError):
                        default = 0
                    if value > max(default, 1) * 8:
                        flipped += 1
            return flipped >= 3

        hazards.append(Hazard(FailureStage.BUILD, 0.25,
                              "several fragile driver options away from their defaults",
                              filler_flipped))
    return hazards


def _unikraft_hazards(os_model: OSModel) -> List[Hazard]:
    """Failure causes of the simulated Unikraft unikernel."""
    return [
        Hazard(FailureStage.RUN, 0.97, "lwip network stack not linked in",
               lambda c, a: "uk.lwip" in c and not _enabled(c, "uk.lwip")),
        Hazard(FailureStage.RUN, 0.65, "heap too small for the connection load",
               lambda c, a: _value(c, "uk.heap_pages", 8192) < 2048),
        Hazard(FailureStage.RUN, 0.50, "heap too small for configured worker connections",
               lambda c, a: _value(c, "uk.heap_pages", 8192) < 16384
               and _value(c, "nginx.worker_connections", 512) > 8192),
        Hazard(FailureStage.RUN, 0.55, "pbuf pool exhaustion under load",
               lambda c, a: _value(c, "uk.lwip_pbuf_pool_size", 256) < 64),
        Hazard(FailureStage.RUN, 0.40, "thread stack overflow",
               lambda c, a: _value(c, "uk.thread_stack_pages", 4) < 2),
        Hazard(FailureStage.BOOT, 0.35, "boot stack overflow during early init",
               lambda c, a: _value(c, "uk.boot_stack_pages", 2) < 2),
        Hazard(FailureStage.BUILD, 0.20, "allocator/libc combination fails to link",
               lambda c, a: _value(c, "uk.allocator", "buddy") == "tlsf"
               and _enabled(c, "uk.alloc_stats")),
    ]


class FailureModel:
    """Decides deterministically whether a configuration fails and where."""

    def __init__(self, os_model: OSModel, seed: int = 0) -> None:
        self.os_model = os_model
        self.seed = seed
        if os_model.is_unikernel:
            self._hazards = _unikraft_hazards(os_model)
        else:
            self._hazards = _linux_hazards(os_model)

    @property
    def hazards(self) -> List[Hazard]:
        return list(self._hazards)

    # -- deterministic randomness -------------------------------------------------
    def _uniform(self, configuration: Configuration, salt: str) -> float:
        digest = hashlib.sha256()
        digest.update(str(self.seed).encode())
        digest.update(salt.encode())
        for name in sorted(configuration):
            digest.update(name.encode())
            digest.update(repr(configuration[name]).encode())
        return int.from_bytes(digest.digest()[:8], "big") / float(1 << 64)

    # -- probabilities -----------------------------------------------------------
    def triggered_hazards(self, configuration: Configuration,
                          application: str) -> List[Hazard]:
        return [h for h in self._hazards if h.triggered(configuration, application)]

    def stage_probability(self, configuration: Configuration, application: str,
                          stage: FailureStage) -> float:
        """Probability of failing at *stage*, given the configuration."""
        survival = 1.0
        for hazard in self._hazards:
            if hazard.stage is stage and hazard.triggered(configuration, application):
                survival *= 1.0 - hazard.probability
        return 1.0 - survival

    def crash_probability(self, configuration: Configuration, application: str) -> float:
        """Overall probability of failing at any stage."""
        survival = 1.0
        for stage in (FailureStage.BUILD, FailureStage.BOOT, FailureStage.RUN):
            survival *= 1.0 - self.stage_probability(configuration, application, stage)
        return 1.0 - survival

    # -- the actual decision --------------------------------------------------------
    def evaluate(self, configuration: Configuration, application: str) -> FailureRecord:
        """Decide whether *configuration* fails, and at which stage."""
        for stage in (FailureStage.BUILD, FailureStage.BOOT, FailureStage.RUN):
            probability = self.stage_probability(configuration, application, stage)
            if probability <= 0.0:
                continue
            draw = self._uniform(configuration, stage.value)
            if draw < probability:
                triggered = [
                    h for h in self.triggered_hazards(configuration, application)
                    if h.stage is stage
                ]
                reason = triggered[0].reason if triggered else "unknown failure"
                return FailureRecord(stage, reason, triggered)
        return FailureRecord(FailureStage.NONE)
