"""Memory-footprint model of a booted kernel image.

Used by the memory-usage specialization experiment (Figure 10): the metric is
the resident memory of the booted image, which depends almost entirely on
which compile-time features are built in, plus a few boot/runtime knobs that
reserve memory up front (hugepages, log buffer sizing).  Disabling unused
subsystems (debug infrastructure, tracing, module machinery, LSMs, ...) is
what buys the ~8.5 % reduction the paper reports.
"""

from __future__ import annotations

from typing import Mapping

from repro.config.space import Configuration
from repro.vm.os_model import OSModel


class FootprintModel:
    """Computes the simulated resident memory of a booted image, in MB."""

    #: fraction of the compiled-in feature cost that stays resident after boot.
    RESIDENT_FRACTION = 0.85

    def __init__(self, os_model: OSModel) -> None:
        self.os_model = os_model

    def _feature_cost_mb(self, configuration: Mapping[str, object]) -> float:
        total_kb = 0.0
        for name, cost_kb in self.os_model.footprint_costs.items():
            if name not in configuration:
                continue
            if self.os_model.is_feature_enabled(configuration, name):
                total_kb += cost_kb
        return total_kb / 1024.0

    def _reserved_mb(self, configuration: Mapping[str, object]) -> float:
        """Memory reserved up-front by boot/runtime parameters."""
        reserved = 0.0
        # Each 2 MiB hugepage reserved at boot or runtime is resident memory.
        reserved += 2.0 * float(configuration.get("boot.hugepages", 0) or 0)
        reserved += 2.0 * float(configuration.get("vm.nr_hugepages", 0) or 0)
        # Kernel log buffer (compile-time shift or boot-time override).
        log_buf_shift = configuration.get("CONFIG_LOG_BUF_SHIFT", 17)
        try:
            reserved += (1 << int(log_buf_shift)) / (1024.0 * 1024.0)
        except (TypeError, ValueError):
            pass
        reserved += float(configuration.get("boot.log_buf_len_kb", 0) or 0) / 1024.0
        # min_free_kbytes is not allocated, but raising it grows per-zone
        # reserves; model a small proportional cost.
        reserved += float(configuration.get("vm.min_free_kbytes", 0) or 0) / (1024.0 * 64.0)
        return reserved

    def footprint_mb(self, configuration: Configuration) -> float:
        """Resident memory of the booted image built from *configuration*."""
        base = self.os_model.base_footprint_mb
        features = self._feature_cost_mb(configuration) * self.RESIDENT_FRACTION
        reserved = self._reserved_mb(configuration)
        return base + features + reserved

    def image_size_mb(self, configuration: Configuration) -> float:
        """Size of the kernel image on disk (used by the build simulator)."""
        return 0.12 * self.os_model.base_footprint_mb + self._feature_cost_mb(configuration) * 0.6
