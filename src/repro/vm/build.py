"""Kernel build simulation.

The build simulator models the wall-clock cost and outcome of turning a
configuration into a bootable image.  Durations are simulated seconds fed to
the platform's virtual clock — they reproduce the *relative* costs reported
in the paper (a full Linux build dominates an iteration; runtime-only changes
skip the build entirely; Unikraft images build in a fraction of the time).
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.config.parameter import ParameterKind
from repro.config.space import Configuration
from repro.vm.failures import FailureModel, FailureStage
from repro.vm.footprint import FootprintModel
from repro.vm.machine import PAPER_TESTBED, HardwareSpec
from repro.vm.os_model import OSModel


class BuildResult:
    """Outcome of building one configuration."""

    def __init__(self, success: bool, duration_s: float, image_size_mb: float,
                 reason: str = "") -> None:
        self.success = success
        self.duration_s = duration_s
        self.image_size_mb = image_size_mb
        self.reason = reason

    def __repr__(self) -> str:
        status = "ok" if self.success else "failed: {}".format(self.reason)
        return "BuildResult({}, {:.0f}s, {:.1f} MB)".format(status, self.duration_s,
                                                            self.image_size_mb)


class BuildSimulator:
    """Simulates the configure+compile step of the pipeline."""

    def __init__(self, os_model: OSModel, failure_model: FailureModel,
                 hardware: HardwareSpec = PAPER_TESTBED,
                 build_cores: Optional[int] = None) -> None:
        self.os_model = os_model
        self.failure_model = failure_model
        self.hardware = hardware
        self.build_cores = build_cores or hardware.cores
        self.footprint_model = FootprintModel(os_model)

    def _jitter(self, configuration: Configuration, scale: float) -> float:
        """Deterministic +/- *scale* fraction jitter derived from the config."""
        digest = hashlib.sha256()
        for name in sorted(configuration):
            digest.update(name.encode())
            digest.update(repr(configuration[name]).encode())
        unit = int.from_bytes(digest.digest()[:8], "big") / float(1 << 64)
        return 1.0 + scale * (2.0 * unit - 1.0)

    def estimate_duration(self, configuration: Configuration) -> float:
        """Simulated seconds to build *configuration* from scratch."""
        base = self.os_model.base_build_time_s
        # Every enabled compile-time feature adds compilation work.
        enabled = 0
        for parameter in self.os_model.space.parameters_of_kind(ParameterKind.COMPILE_TIME):
            if self.os_model.is_feature_enabled(configuration, parameter.name):
                enabled += 1
        per_feature = 1.6 if not self.os_model.is_unikernel else 0.4
        duration = base + per_feature * enabled
        # Debug info roughly doubles link and debuginfo-generation time.
        if self.os_model.is_feature_enabled(configuration, "CONFIG_DEBUG_INFO"):
            duration *= 1.8
        if self.os_model.is_feature_enabled(configuration, "CONFIG_KASAN"):
            duration *= 1.5
        duration *= 24.0 / float(self.build_cores)
        return duration * self._jitter(configuration, 0.10)

    def build(self, configuration: Configuration, application: str) -> BuildResult:
        """Build an image for *configuration*; failures come from the failure model."""
        duration = self.estimate_duration(configuration)
        failure = self.failure_model.evaluate(configuration, application)
        if failure.stage is FailureStage.BUILD:
            # Build failures surface quickly (a compile error part-way through).
            return BuildResult(False, duration * 0.35, 0.0, failure.reason)
        image_size = self.footprint_model.image_size_mb(configuration)
        return BuildResult(True, duration, image_size)
