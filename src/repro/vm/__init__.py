"""Simulated system under test: build, boot, and run of OS images.

The paper evaluates configurations by building a kernel image, booting it in
QEMU/KVM and running a benchmark against the application inside.  This
subpackage reproduces that loop as a deterministic simulator: given an OS
model and a configuration, it decides whether the build, boot, or run fails,
how long each stage takes (in simulated seconds), how much memory the booted
image consumes, and hands the configuration to the application performance
model for the actual measurement.
"""

from repro.vm.boot import BootResult, BootSimulator
from repro.vm.build import BuildResult, BuildSimulator
from repro.vm.failures import FailureModel, FailureStage
from repro.vm.footprint import FootprintModel
from repro.vm.machine import PAPER_TESTBED, RISCV_EMBEDDED_BOARD, HardwareSpec
from repro.vm.os_model import OSModel, linux_os_model, unikraft_os_model
from repro.vm.simulator import EvaluationOutcome, SystemSimulator

__all__ = [
    "HardwareSpec",
    "PAPER_TESTBED",
    "RISCV_EMBEDDED_BOARD",
    "OSModel",
    "linux_os_model",
    "unikraft_os_model",
    "FailureModel",
    "FailureStage",
    "FootprintModel",
    "BuildSimulator",
    "BuildResult",
    "BootSimulator",
    "BootResult",
    "SystemSimulator",
    "EvaluationOutcome",
]
