"""Bayesian optimization with a Gaussian-process surrogate.

This is the "Bayesian-opt" competitor of the paper's evaluation (Figure 9).
It keeps a Gaussian process over the encoded configuration vectors, fit on
every observed (configuration, objective) pair, and proposes the candidate
with the highest expected improvement from a random pool.  The implementation
is deliberately the textbook one — RBF kernel, exact GP regression, full
refit on every observation — because those are precisely the properties the
paper criticizes: O(n^3) fitting cost, O(n^2) memory, no incremental
training, and poor handling of large mixed categorical/numeric spaces.
Crashed configurations are included with a pessimistic objective so the
surrogate at least avoids re-proposing known-bad points.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config.encoding import ConfigEncoder
from repro.config.parameter import ParameterKind
from repro.config.space import Configuration, ConfigSpace
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.search.base import SearchAlgorithm


class GaussianProcess:
    """Exact Gaussian-process regression with an RBF kernel."""

    def __init__(self, length_scale: float = 1.0, signal_variance: float = 1.0,
                 noise_variance: float = 1e-4) -> None:
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise_variance = noise_variance
        self._X: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._L: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        sq_dists = (
            np.sum(A ** 2, axis=1)[:, None]
            + np.sum(B ** 2, axis=1)[None, :]
            - 2.0 * A @ B.T
        )
        np.maximum(sq_dists, 0.0, out=sq_dists)
        return self.signal_variance * np.exp(-0.5 * sq_dists / (self.length_scale ** 2))

    def fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Fit the GP on (X, y); cost is cubic in the number of samples."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) and y must be (n,)")
        self._y_mean = float(np.mean(y)) if y.size else 0.0
        self._y_std = float(np.std(y)) if y.size else 1.0
        if self._y_std < 1e-12:
            self._y_std = 1.0
        centred = (y - self._y_mean) / self._y_std
        K = self._kernel(X, X) + self.noise_variance * np.eye(X.shape[0])
        self._L = np.linalg.cholesky(K)
        self._alpha = np.linalg.solve(self._L.T, np.linalg.solve(self._L, centred))
        self._X = X

    @property
    def is_fitted(self) -> bool:
        return self._X is not None and self._X.shape[0] > 0

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return posterior mean and standard deviation for each row of X."""
        X = np.asarray(X, dtype=np.float64)
        if not self.is_fitted:
            return np.zeros(X.shape[0]), np.full(X.shape[0], math.sqrt(self.signal_variance))
        K_star = self._kernel(X, self._X)
        mean = K_star @ self._alpha
        v = np.linalg.solve(self._L, K_star.T)
        variance = self.signal_variance - np.sum(v ** 2, axis=0)
        np.maximum(variance, 1e-12, out=variance)
        return mean * self._y_std + self._y_mean, np.sqrt(variance) * self._y_std


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float,
                         xi: float = 0.01) -> np.ndarray:
    """Expected improvement of a maximization problem."""
    std = np.maximum(std, 1e-12)
    improvement = mean - best - xi
    z = improvement / std
    cdf = 0.5 * (1.0 + np.vectorize(math.erf)(z / math.sqrt(2.0)))
    pdf = np.exp(-0.5 * z ** 2) / math.sqrt(2.0 * math.pi)
    return improvement * cdf + std * pdf


class BayesianOptimizationSearch(SearchAlgorithm):
    """GP-based Bayesian optimization over the encoded configuration space."""

    name = "bayesian"
    batch_native = True

    def __init__(self, space: ConfigSpace, seed: int = 0,
                 favored_kinds: Optional[Sequence[ParameterKind]] = None,
                 candidate_pool_size: int = 128, initial_random: int = 8,
                 length_scale: float = 2.0, maximize: bool = True,
                 crash_penalty_quantile: float = 0.1) -> None:
        super().__init__(space, seed=seed, favored_kinds=favored_kinds)
        self.encoder = ConfigEncoder(space)
        self.candidate_pool_size = candidate_pool_size
        self.initial_random = initial_random
        self.maximize = maximize
        self.crash_penalty_quantile = crash_penalty_quantile
        self.gp = GaussianProcess(length_scale=length_scale)
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self._crashed: List[bool] = []

    # -- objective bookkeeping -----------------------------------------------------
    def _signed(self, objective: float) -> float:
        """Internally the GP always maximizes; flip the sign when minimizing."""
        return objective if self.maximize else -objective

    def _crash_value(self) -> float:
        """Objective assigned to crashed configurations (pessimistic)."""
        successes = [y for y, crashed in zip(self._y, self._crashed) if not crashed]
        if not successes:
            return 0.0
        return float(np.quantile(successes, self.crash_penalty_quantile))

    def observe(self, record: TrialRecord) -> None:
        vector = self.encoder.encode(record.configuration)
        self._X.append(vector)
        self._crashed.append(record.crashed)
        if record.crashed or record.objective is None:
            self._y.append(math.nan)
        else:
            self._y.append(self._signed(record.objective))

    def _fit(self) -> bool:
        if len(self._X) < 2:
            return False
        X = np.vstack(self._X)
        crash_value = self._crash_value()
        y = np.array([crash_value if math.isnan(v) else v for v in self._y])
        # The cubic refit on every single observation is the scalability
        # problem the paper points out; we keep it faithful.
        self.gp.fit(X, y)
        return True

    # -- proposal ----------------------------------------------------------------------
    def _ranked_pool(self, history: ExplorationHistory) -> Tuple[List[Configuration], np.ndarray]:
        """Sample a candidate pool and rank it by expected improvement.

        Pool slots are deduplicated against the history (O(1) membership
        index), so on small spaces the acquisition step does not waste
        candidates on configurations whose outcome is already known.  On
        large spaces collisions essentially never happen and the draw
        sequence is unchanged.
        """
        candidates = self.sampler.sample_pool(self.candidate_pool_size,
                                              history=history)
        matrix = self.encoder.encode_batch(candidates)
        mean, std = self.gp.predict(matrix)
        observed = [v for v in self._y if not math.isnan(v)]
        best = max(observed) if observed else 0.0
        scores = expected_improvement(mean, std, best)
        return candidates, np.argsort(-scores)

    def propose(self, history: ExplorationHistory,
                pending: Sequence[Configuration] = ()) -> Configuration:
        in_flight = set(pending)
        if len(self._X) < self.initial_random or not self._fit():
            return self.sampler.sample_unique(history, exclude=in_flight)
        candidates, order = self._ranked_pool(history)
        for index in order:
            candidate = candidates[int(index)]
            if (not history.contains_configuration(candidate)
                    and candidate not in in_flight):
                return candidate
        return self.sampler.sample_unique(history, exclude=in_flight)

    def propose_batch(self, history: ExplorationHistory, k: int) -> List[Configuration]:
        """Take the top-*k* distinct candidates from one EI scoring pass.

        The surrogate is fit once for the whole batch (no fantasized
        observations between picks), so a batch costs one cubic fit instead
        of *k* — the batched counterpart of the paper's criticism of the
        per-observation refit.
        """
        if k < 1:
            raise ValueError("batch size must be at least 1")
        if len(self._X) < self.initial_random or not self._fit():
            return self.sampler.sample_batch_unique(history, k)
        candidates, order = self._ranked_pool(history)
        return self.sampler.fill_batch(
            (candidates[int(index)] for index in order), history, k)

    # -- checkpointing ------------------------------------------------------------
    def export_state(self) -> dict:
        # The GP itself is refit from the observations on every proposal, so
        # only the observation store needs to be captured.
        state = super().export_state()
        state["X"] = [vector.copy() for vector in self._X]
        state["y"] = list(self._y)
        state["crashed"] = list(self._crashed)
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        self._X = [np.array(vector, dtype=np.float64) for vector in state["X"]]
        self._y = [float(value) for value in state["y"]]
        self._crashed = [bool(flag) for flag in state["crashed"]]
