"""Random search: the baseline of the paper's evaluation.

Each iteration proposes a fresh uniformly random configuration, ignoring the
exploration history entirely (apart from avoiding exact duplicates).  Random
search is known to perform reasonably on very large spaces, but it keeps
paying the ~1/3 crash rate of the raw configuration space because it never
learns which regions fail.
"""

from __future__ import annotations

from repro.config.space import Configuration
from repro.platform.history import ExplorationHistory
from repro.search.base import SearchAlgorithm


class RandomSearch(SearchAlgorithm):
    """Uniform random sampling of the configuration space."""

    name = "random"

    def propose(self, history: ExplorationHistory) -> Configuration:
        return self.sampler.sample_unique(history)
