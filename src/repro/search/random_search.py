"""Random search: the baseline of the paper's evaluation.

Each iteration proposes a fresh uniformly random configuration, ignoring the
exploration history entirely (apart from avoiding exact duplicates).  Random
search is known to perform reasonably on very large spaces, but it keeps
paying the ~1/3 crash rate of the raw configuration space because it never
learns which regions fail.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.config.space import Configuration
from repro.platform.history import ExplorationHistory
from repro.search.base import SearchAlgorithm


class RandomSearch(SearchAlgorithm):
    """Uniform random sampling of the configuration space."""

    name = "random"
    batch_native = True

    def propose(self, history: ExplorationHistory,
                pending: Sequence[Configuration] = ()) -> Configuration:
        return self.sampler.sample_unique(history, exclude=set(pending))

    def propose_batch(self, history: ExplorationHistory, k: int) -> List[Configuration]:
        """Draw *k* fresh samples, avoiding intra-batch duplicates as well."""
        if k < 1:
            raise ValueError("batch size must be at least 1")
        return self.sampler.sample_batch_unique(history, k)
