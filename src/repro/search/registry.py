"""Registry of search algorithms, addressable by name from job files."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.config.parameter import ParameterKind
from repro.config.space import ConfigSpace
from repro.search.base import SearchAlgorithm
from repro.search.bayesian import BayesianOptimizationSearch
from repro.search.grid_search import GridSearch
from repro.search.random_search import RandomSearch
from repro.search.unicorn import UnicornSearch


def _create_deeptune(space: ConfigSpace, seed: int,
                     favored_kinds: Optional[Sequence[ParameterKind]],
                     **kwargs) -> SearchAlgorithm:
    # Imported lazily: DeepTune pulls in the neural-network stack, which the
    # simpler algorithms do not need.
    from repro.deeptune import DeepTuneSearch

    return DeepTuneSearch(space, seed=seed, favored_kinds=favored_kinds, **kwargs)


_FACTORIES: Dict[str, Callable[..., SearchAlgorithm]] = {
    "random": lambda space, seed, favored_kinds, **kw: RandomSearch(
        space, seed=seed, favored_kinds=favored_kinds),
    "grid": lambda space, seed, favored_kinds, **kw: GridSearch(
        space, seed=seed, favored_kinds=favored_kinds, **kw),
    "bayesian": lambda space, seed, favored_kinds, **kw: BayesianOptimizationSearch(
        space, seed=seed, favored_kinds=favored_kinds, **kw),
    "unicorn": lambda space, seed, favored_kinds, **kw: UnicornSearch(
        space, seed=seed, favored_kinds=favored_kinds, **kw),
    "deeptune": _create_deeptune,
}


def available_algorithms() -> List[str]:
    """Names of the search algorithms that can be requested in a job file."""
    return sorted(_FACTORIES.keys())


def create_algorithm(name: str, space: ConfigSpace, seed: int = 0,
                     favored_kinds: Optional[Sequence[ParameterKind]] = None,
                     **kwargs) -> SearchAlgorithm:
    """Instantiate the search algorithm registered under *name*."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            "unknown search algorithm {!r}; available: {}".format(
                name, ", ".join(available_algorithms())
            )
        ) from None
    return factory(space, seed=seed, favored_kinds=favored_kinds, **kwargs)
