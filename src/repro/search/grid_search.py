"""Grid search: systematic one-parameter-at-a-time sweep.

The paper lists grid search among the supported strategies but omits it from
the evaluation because it is well known to be inferior to random search on
large spaces.  The implementation sweeps one parameter at a time around the
default configuration: for each parameter it enumerates the domain (or a
fixed number of quantiles for wide integer ranges), which is the only
tractable grid on spaces with hundreds of dimensions.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.config.parameter import IntParameter, Parameter, ParameterKind
from repro.config.space import Configuration, ConfigSpace
from repro.platform.history import ExplorationHistory
from repro.search.base import SearchAlgorithm


class GridSearch(SearchAlgorithm):
    """One-at-a-time sweep of every parameter around the default configuration."""

    name = "grid"
    batch_native = True

    def __init__(self, space: ConfigSpace, seed: int = 0,
                 favored_kinds: Optional[Sequence[ParameterKind]] = None,
                 integer_steps: int = 5) -> None:
        super().__init__(space, seed=seed, favored_kinds=favored_kinds)
        if integer_steps < 2:
            raise ValueError("integer_steps must be at least 2")
        self.integer_steps = integer_steps
        self._favored_kinds = list(favored_kinds) if favored_kinds else None
        self._plan = self._build_plan()
        self._cursor = 0

    # -- plan construction --------------------------------------------------------
    def _values_for(self, parameter: Parameter) -> List[object]:
        domain = parameter.domain_values()
        if domain is not None:
            return [value for value in domain if value != parameter.default]
        if isinstance(parameter, IntParameter):
            values = []
            for step in range(self.integer_steps):
                unit = step / float(self.integer_steps - 1)
                values.append(parameter.decode([unit]))
            return sorted({v for v in values if v != parameter.default})
        return []

    def _build_plan(self) -> List[Configuration]:
        default = self.space.default_configuration()
        plan: List[Configuration] = [default]
        frozen = self.space.frozen_parameters
        for parameter in self.space.parameters():
            if parameter.name in frozen:
                continue
            if self._favored_kinds is not None and parameter.kind not in self._favored_kinds:
                continue
            for value in self._values_for(parameter):
                plan.append(default.with_values({parameter.name: value}))
        return plan

    @property
    def plan_length(self) -> int:
        """Number of configurations the sweep will enumerate before recycling."""
        return len(self._plan)

    def _plan_entries(self) -> Iterator[Configuration]:
        """Consume plan entries in sweep order, advancing the cursor."""
        while self._cursor < len(self._plan):
            candidate = self._plan[self._cursor]
            self._cursor += 1
            yield candidate

    # -- search interface ------------------------------------------------------------
    def propose(self, history: ExplorationHistory,
                pending: Sequence[Configuration] = ()) -> Configuration:
        in_flight = set(pending)
        for candidate in self._plan_entries():
            if history.contains_configuration(candidate) or candidate in in_flight:
                # An in-flight plan entry will be observed when it completes;
                # skipping it consumes the cursor exactly like an explored one.
                continue
            return candidate
        # Plan exhausted: fall back to random sampling so long sessions can
        # keep running (matches how the platform treats exhausted strategies).
        return self.sampler.sample_unique(history, exclude=in_flight)

    def propose_batch(self, history: ExplorationHistory, k: int) -> List[Configuration]:
        """Take the next *k* unexplored plan entries (random once exhausted)."""
        if k < 1:
            raise ValueError("batch size must be at least 1")
        return self.sampler.fill_batch(self._plan_entries(), history, k)

    # -- checkpointing ------------------------------------------------------------
    def export_state(self) -> dict:
        state = super().export_state()
        # The plan itself is rebuilt deterministically from the space at
        # construction; only the sweep position is mutable state.
        state["cursor"] = self._cursor
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        self._cursor = int(state["cursor"])
