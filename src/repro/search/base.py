"""Search-algorithm interface and shared sampling utilities."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set

from repro.config.parameter import ParameterKind
from repro.config.space import Configuration, ConfigSpace
from repro.platform.history import ExplorationHistory, TrialRecord


class ConfigurationSampler:
    """Draws random candidate configurations, optionally favouring some kinds.

    The paper's experiments configure Wayfinder to *favor* certain parameter
    kinds: runtime parameters for the performance experiments (§4.1),
    compile-time parameters for the memory-footprint experiment (§4.4).
    Favoured runtime and boot-time kinds are fully randomized; favoured
    compile-time parameters are instead perturbed around the default
    configuration (a random defconfig-distance mutation per option), because
    that is how compile-time exploration proceeds in practice — a kernel built
    from a uniformly random .config essentially never boots.  Parameters of
    non-favoured kinds stay at their defaults except for an occasional
    mutation, so the search concentrates where it is told to without being
    strictly confined.
    """

    def __init__(
        self,
        space: ConfigSpace,
        seed: int = 0,
        favored_kinds: Optional[Sequence[ParameterKind]] = None,
        off_kind_mutation_rate: float = 0.005,
        compile_mutation_rate: float = 0.12,
        repair_constraints: bool = True,
    ) -> None:
        self.space = space
        self.rng = random.Random(seed)
        self.favored_kinds = list(favored_kinds) if favored_kinds else None
        self.off_kind_mutation_rate = off_kind_mutation_rate
        self.compile_mutation_rate = compile_mutation_rate
        self.repair_constraints = repair_constraints

    def sample(self) -> Configuration:
        """Draw one random configuration respecting the favoured kinds."""
        if self.favored_kinds is None:
            configuration = self.space.sample_configuration(self.rng)
        else:
            values = {}
            frozen = self.space.frozen_parameters
            for parameter in self.space.parameters():
                if parameter.name in frozen:
                    values[parameter.name] = frozen[parameter.name]
                elif parameter.kind in self.favored_kinds:
                    if (parameter.kind is ParameterKind.COMPILE_TIME
                            and self.rng.random() >= self.compile_mutation_rate):
                        values[parameter.name] = parameter.default
                    else:
                        values[parameter.name] = parameter.sample(self.rng)
                elif self.rng.random() < self.off_kind_mutation_rate:
                    values[parameter.name] = parameter.sample(self.rng)
                else:
                    values[parameter.name] = parameter.default
            configuration = Configuration(self.space, values)
        if self.repair_constraints:
            configuration = self.space.repair(configuration, self.rng)
        return configuration

    def sample_unique(self, history: ExplorationHistory, attempts: int = 32,
                      exclude: Optional[Set[Configuration]] = None) -> Configuration:
        """Draw a configuration not yet present in *history* (best effort).

        *exclude* extends the membership check to configurations already
        chosen for the current batch but not yet evaluated, so batched
        proposers can avoid intra-batch duplicates.  With ``exclude`` empty
        or ``None`` the draw sequence is identical to the historical
        single-proposal behaviour.
        """
        for _ in range(attempts):
            candidate = self.sample()
            if history.contains_configuration(candidate):
                continue
            if exclude and candidate in exclude:
                continue
            return candidate
        return self.sample()

    def sample_pool(self, size: int,
                    history: Optional[ExplorationHistory] = None,
                    attempts_per_slot: int = 8) -> List[Configuration]:
        """Draw a pool of candidates (duplicates possible on tiny spaces).

        When *history* is given, each slot is re-drawn (up to
        *attempts_per_slot* times) while it collides with an already
        evaluated configuration, using the history's O(1) membership index.
        On small spaces this stops candidate pools from wasting slots on
        configurations whose outcome is already known.
        """
        if history is None:
            return [self.sample() for _ in range(size)]
        pool: List[Configuration] = []
        for _ in range(size):
            candidate = self.sample()
            for _ in range(attempts_per_slot - 1):
                if not history.contains_configuration(candidate):
                    break
                candidate = self.sample()
            pool.append(candidate)
        return pool

    def sample_batch_unique(self, history: ExplorationHistory,
                            k: int) -> List[Configuration]:
        """Draw *k* configurations avoiding *history* and intra-batch repeats."""
        return self.fill_batch((), history, k)

    def fill_batch(self, ranked, history: ExplorationHistory, k: int,
                   skip_explored: bool = True) -> List[Configuration]:
        """Take up to *k* distinct configurations from the *ranked* iterable,
        padding any shortfall with unique random samples.

        Intra-batch duplicates and (with *skip_explored*) already-evaluated
        configurations are skipped but still consumed from the iterable, and
        nothing beyond the *k*-th pick is consumed — so stateful sources
        (e.g. a grid-plan cursor) advance exactly as far as the selection
        needed.  Shared by every batch-native proposer so the dedup/padding
        semantics cannot drift between algorithms.
        """
        batch: List[Configuration] = []
        chosen: Set[Configuration] = set()
        if k > 0:
            for candidate in ranked:
                if candidate in chosen:
                    continue
                if skip_explored and history.contains_configuration(candidate):
                    continue
                batch.append(candidate)
                chosen.add(candidate)
                if len(batch) >= k:
                    break
        while len(batch) < k:
            candidate = self.sample_unique(history, exclude=chosen)
            batch.append(candidate)
            chosen.add(candidate)
        return batch

    def mutate(self, configuration: Configuration, mutation_rate: float = 0.1) -> Configuration:
        """Mutate an existing configuration within the favoured kinds."""
        mutated = self.space.mutate_configuration(
            configuration, self.rng, mutation_rate=mutation_rate,
            kinds=self.favored_kinds,
        )
        if self.repair_constraints:
            mutated = self.space.repair(mutated, self.rng)
        return mutated


class SearchAlgorithm:
    """Interface between the platform and a configuration-search strategy."""

    #: registry/reporting name.
    name = "search"

    #: True for algorithms that derive a whole batch from one model/scoring
    #: pass (overriding :meth:`propose_batch`); False for algorithms that
    #: fall back to sequential proposals.
    batch_native = False

    def __init__(self, space: ConfigSpace, seed: int = 0,
                 favored_kinds: Optional[Sequence[ParameterKind]] = None) -> None:
        self.space = space
        self.seed = seed
        self.sampler = ConfigurationSampler(space, seed=seed, favored_kinds=favored_kinds)

    def propose(self, history: ExplorationHistory,
                pending: Sequence[Configuration] = ()) -> Configuration:
        """Return the next configuration the platform should evaluate.

        *pending* holds the configurations currently in flight on other
        workers (async execution proposes without waiting for them): the
        algorithm should avoid re-proposing them, exactly as it avoids
        re-proposing the history.  Contract: with *pending* empty the
        proposal — including every RNG draw — must be identical to the
        historical single-argument call, so batch mode and ``workers=1``
        async sessions reproduce the sequential loop bit for bit.
        """
        raise NotImplementedError

    def propose_batch(self, history: ExplorationHistory, k: int) -> List[Configuration]:
        """Return up to *k* configurations to evaluate as one batch.

        The default implementation issues *k* sequential :meth:`propose`
        calls without intermediate observations, which preserves each
        algorithm's per-proposal cost profile (deliberately so for the
        Unicorn baseline, whose Figure 7 growth curve depends on a full
        graph recomputation per proposal).  Batch-native algorithms override
        this to derive the whole batch from a single scoring pass.

        Contract: ``propose_batch(history, 1)`` must behave exactly like
        ``[propose(history)]`` — same configuration, same RNG consumption —
        so a ``batch_size=1`` session reproduces the sequential loop
        trial for trial.
        """
        if k < 1:
            raise ValueError("batch size must be at least 1")
        return [self.propose(history) for _ in range(k)]

    def observe(self, record: TrialRecord) -> None:
        """Learn from the result of the most recent evaluation.

        The default implementation does nothing: stateless algorithms such as
        random search read everything they need from the history.
        """

    # -- checkpointing ------------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the algorithm's mutable state as a picklable dictionary.

        The base implementation captures the sampler's RNG stream — the one
        piece of mutable state every algorithm shares.  Subclasses extend the
        dictionary with their model/plan/observation state; together with
        :meth:`import_state` this is what makes a checkpointed session resume
        bit-identically (same future proposals, same RNG consumption).
        Exported values must be *snapshots*: mutating the algorithm after the
        export must not change an already exported state.
        """
        return {"sampler_rng": self.sampler.rng.getstate()}

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        The algorithm must have been constructed with the same space, seed,
        and options as the exporting instance (the experiment spec guarantees
        this on the checkpoint/resume path).
        """
        self.sampler.rng.setstate(state["sampler_rng"])

    def __repr__(self) -> str:
        return "{}(space={!r})".format(type(self).__name__, self.space.name)
