"""Search-algorithm interface and shared sampling utilities."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.config.parameter import ParameterKind
from repro.config.space import Configuration, ConfigSpace
from repro.platform.history import ExplorationHistory, TrialRecord


class ConfigurationSampler:
    """Draws random candidate configurations, optionally favouring some kinds.

    The paper's experiments configure Wayfinder to *favor* certain parameter
    kinds: runtime parameters for the performance experiments (§4.1),
    compile-time parameters for the memory-footprint experiment (§4.4).
    Favoured runtime and boot-time kinds are fully randomized; favoured
    compile-time parameters are instead perturbed around the default
    configuration (a random defconfig-distance mutation per option), because
    that is how compile-time exploration proceeds in practice — a kernel built
    from a uniformly random .config essentially never boots.  Parameters of
    non-favoured kinds stay at their defaults except for an occasional
    mutation, so the search concentrates where it is told to without being
    strictly confined.
    """

    def __init__(
        self,
        space: ConfigSpace,
        seed: int = 0,
        favored_kinds: Optional[Sequence[ParameterKind]] = None,
        off_kind_mutation_rate: float = 0.005,
        compile_mutation_rate: float = 0.12,
        repair_constraints: bool = True,
    ) -> None:
        self.space = space
        self.rng = random.Random(seed)
        self.favored_kinds = list(favored_kinds) if favored_kinds else None
        self.off_kind_mutation_rate = off_kind_mutation_rate
        self.compile_mutation_rate = compile_mutation_rate
        self.repair_constraints = repair_constraints

    def sample(self) -> Configuration:
        """Draw one random configuration respecting the favoured kinds."""
        if self.favored_kinds is None:
            configuration = self.space.sample_configuration(self.rng)
        else:
            values = {}
            frozen = self.space.frozen_parameters
            for parameter in self.space.parameters():
                if parameter.name in frozen:
                    values[parameter.name] = frozen[parameter.name]
                elif parameter.kind in self.favored_kinds:
                    if (parameter.kind is ParameterKind.COMPILE_TIME
                            and self.rng.random() >= self.compile_mutation_rate):
                        values[parameter.name] = parameter.default
                    else:
                        values[parameter.name] = parameter.sample(self.rng)
                elif self.rng.random() < self.off_kind_mutation_rate:
                    values[parameter.name] = parameter.sample(self.rng)
                else:
                    values[parameter.name] = parameter.default
            configuration = Configuration(self.space, values)
        if self.repair_constraints:
            configuration = self.space.repair(configuration, self.rng)
        return configuration

    def sample_unique(self, history: ExplorationHistory, attempts: int = 32) -> Configuration:
        """Draw a configuration not yet present in *history* (best effort)."""
        for _ in range(attempts):
            candidate = self.sample()
            if not history.contains_configuration(candidate):
                return candidate
        return self.sample()

    def sample_pool(self, size: int) -> List[Configuration]:
        """Draw a pool of candidates (duplicates possible on tiny spaces)."""
        return [self.sample() for _ in range(size)]

    def mutate(self, configuration: Configuration, mutation_rate: float = 0.1) -> Configuration:
        """Mutate an existing configuration within the favoured kinds."""
        mutated = self.space.mutate_configuration(
            configuration, self.rng, mutation_rate=mutation_rate,
            kinds=self.favored_kinds,
        )
        if self.repair_constraints:
            mutated = self.space.repair(mutated, self.rng)
        return mutated


class SearchAlgorithm:
    """Interface between the platform and a configuration-search strategy."""

    #: registry/reporting name.
    name = "search"

    def __init__(self, space: ConfigSpace, seed: int = 0,
                 favored_kinds: Optional[Sequence[ParameterKind]] = None) -> None:
        self.space = space
        self.seed = seed
        self.sampler = ConfigurationSampler(space, seed=seed, favored_kinds=favored_kinds)

    def propose(self, history: ExplorationHistory) -> Configuration:
        """Return the next configuration the platform should evaluate."""
        raise NotImplementedError

    def observe(self, record: TrialRecord) -> None:
        """Learn from the result of the most recent evaluation.

        The default implementation does nothing: stateless algorithms such as
        random search read everything they need from the history.
        """

    def __repr__(self) -> str:
        return "{}(space={!r})".format(type(self).__name__, self.space.name)
