"""Pluggable search algorithms driving the specialization process.

The platform exposes a small interface (propose a configuration, observe the
result) and ships the algorithms evaluated in the paper: random search, grid
search, Bayesian optimization, a Unicorn-style causal-inference baseline, and
DeepTune (implemented in :mod:`repro.deeptune` and registered here).
"""

from repro.search.base import ConfigurationSampler, SearchAlgorithm
from repro.search.bayesian import BayesianOptimizationSearch, GaussianProcess
from repro.search.grid_search import GridSearch
from repro.search.random_search import RandomSearch
from repro.search.registry import available_algorithms, create_algorithm
from repro.search.unicorn import UnicornSearch

__all__ = [
    "SearchAlgorithm",
    "ConfigurationSampler",
    "RandomSearch",
    "GridSearch",
    "BayesianOptimizationSearch",
    "GaussianProcess",
    "UnicornSearch",
    "create_algorithm",
    "available_algorithms",
]
