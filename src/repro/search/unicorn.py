"""Unicorn-style causal-inference search baseline (scalability comparison).

Unicorn (Iqbal et al., EuroSys'22) models the influence of configuration
options on performance with a causal graph learned from the observations, and
picks interventions on the options with the strongest causal paths to the
objective.  The paper compares against it only on a synthetic space because
the causal-discovery step — a PC-style algorithm running conditional-
independence tests with growing conditioning sets over the full observation
history — has polynomial (cubic-and-worse) cost in the number of options and
observations, and recomputes the graph from scratch on every iteration.
Figure 7 shows exactly that: per-iteration time and memory grow super-
linearly for Unicorn while DeepTune stays flat.

This implementation reproduces the algorithmic structure (pairwise and
conditional partial-correlation tests, full recomputation per iteration,
quadratic-in-options working set) so the scalability benchmark measures a
real causal-discovery workload rather than an artificial sleep.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config.encoding import ConfigEncoder
from repro.config.parameter import ParameterKind
from repro.config.space import Configuration, ConfigSpace
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.search.base import SearchAlgorithm


def _partial_correlation(data: np.ndarray, i: int, j: int,
                         conditioning: Sequence[int]) -> float:
    """Partial correlation of columns i and j given the conditioning columns."""
    x = data[:, i]
    y = data[:, j]
    if conditioning:
        Z = data[:, list(conditioning)]
        Z = np.column_stack([Z, np.ones(Z.shape[0])])
        # Residualize both variables on the conditioning set.
        coeffs_x, _, _, _ = np.linalg.lstsq(Z, x, rcond=None)
        coeffs_y, _, _, _ = np.linalg.lstsq(Z, y, rcond=None)
        x = x - Z @ coeffs_x
        y = y - Z @ coeffs_y
    sx = np.std(x)
    sy = np.std(y)
    if sx < 1e-12 or sy < 1e-12:
        return 0.0
    return float(np.clip(np.corrcoef(x, y)[0, 1], -1.0, 1.0))


class CausalGraph:
    """A weighted undirected dependency graph over encoded feature columns."""

    def __init__(self, n_features: int) -> None:
        self.n_features = n_features
        self.adjacency = np.zeros((n_features, n_features), dtype=np.float64)
        self.objective_strength = np.zeros(n_features, dtype=np.float64)

    def strongest_features(self, top_k: int) -> List[int]:
        """Feature columns with the strongest causal path to the objective."""
        order = np.argsort(-np.abs(self.objective_strength))
        return [int(index) for index in order[:top_k]]


class CausalDiscovery:
    """PC-style causal structure learner used by the Unicorn baseline.

    Each conditional-independence decision is stabilised by bootstrap
    resampling over the observation history (a fraction of the history per
    test, as causal-discovery implementations do to control false edges).
    That stabilisation is what makes the cost of every iteration grow with
    the amount of data already collected: with ``n`` observations the learner
    runs O(n) resamples of O(n) work for each of the O(d^2)-O(d^3) tests, so
    the per-iteration cost climbs super-linearly over a run — the behaviour
    Figure 7 contrasts with DeepTune's bounded incremental updates.
    """

    def __init__(self, alpha: float = 0.1, max_conditioning: int = 2,
                 bootstrap_fraction: float = 0.3, seed: int = 0) -> None:
        self.alpha = alpha
        self.max_conditioning = max_conditioning
        self.bootstrap_fraction = bootstrap_fraction
        self._rng = np.random.default_rng(seed)

    def _bootstrap_tensor(self, data: np.ndarray) -> np.ndarray:
        """Materialize the bootstrap resamples used by every test this round.

        Shape (resamples, n, columns): the working set the learner keeps live
        for the whole graph recomputation, which is why its memory footprint
        grows quadratically with the observation history.
        """
        n_samples = data.shape[0]
        resamples = max(1, int(round(n_samples * self.bootstrap_fraction)))
        indices = self._rng.integers(0, n_samples, size=(resamples, n_samples))
        return data[indices]

    def _stabilised_correlation(self, resampled: np.ndarray, i: int, j: int,
                                conditioning: Sequence[int]) -> float:
        """Average the partial correlation over the materialized resamples."""
        total = 0.0
        for sample in resampled:
            total += _partial_correlation(sample, i, j, conditioning)
        return total / resampled.shape[0]

    def learn(self, features: np.ndarray, objective: np.ndarray) -> CausalGraph:
        """Recompute the causal graph from the full observation history.

        Complexity: for d features the pairwise pass is O(d^2) tests, each
        over O(n) bootstrap resamples of the n-sample history, and the
        conditional passes add O(d^3) — the cost profile Figure 7 plots.
        """
        n_samples, n_features = features.shape
        data = np.column_stack([features, objective])
        objective_column = n_features
        graph = CausalGraph(n_features)
        resampled = self._bootstrap_tensor(data)

        # Skeleton discovery: pairwise correlations.
        for i in range(n_features):
            for j in range(i + 1, n_features):
                graph.adjacency[i, j] = graph.adjacency[j, i] = abs(
                    self._stabilised_correlation(resampled, i, j, ())
                )

        # Conditional-independence pruning with growing conditioning sets.
        for size in range(1, self.max_conditioning + 1):
            for i in range(n_features):
                neighbours = [j for j in range(n_features)
                              if j != i and graph.adjacency[i, j] > self.alpha]
                for j in neighbours:
                    conditioning = [k for k in neighbours if k != j][:size]
                    if len(conditioning) < size:
                        continue
                    partial = abs(self._stabilised_correlation(resampled, i, j, conditioning))
                    if partial < self.alpha:
                        graph.adjacency[i, j] = graph.adjacency[j, i] = 0.0

        # Causal strength of each option on the objective, conditioned on its
        # strongest remaining neighbour.
        for i in range(n_features):
            neighbours = np.argsort(-graph.adjacency[i])[:1]
            conditioning = [int(k) for k in neighbours if graph.adjacency[i, int(k)] > 0]
            graph.objective_strength[i] = self._stabilised_correlation(
                resampled, i, objective_column, conditioning
            )
        return graph


class UnicornSearch(SearchAlgorithm):
    """Causal-inference-driven configuration search (Unicorn-style baseline)."""

    name = "unicorn"

    def __init__(self, space: ConfigSpace, seed: int = 0,
                 favored_kinds: Optional[Sequence[ParameterKind]] = None,
                 maximize: bool = True, top_k: int = 8,
                 candidate_pool_size: int = 32, alpha: float = 0.1,
                 max_conditioning: int = 2) -> None:
        super().__init__(space, seed=seed, favored_kinds=favored_kinds)
        # This baseline reproduces Unicorn's naive cost profile — full
        # recomputation and per-configuration re-encoding every iteration —
        # which is the behaviour Figure 7 measures against DeepTune's
        # incremental loop.  It therefore bypasses both the vector cache and
        # the columnar fast path (see :meth:`_encode` below).
        self.encoder = ConfigEncoder(space, cache_size=0)
        self.maximize = maximize
        self.top_k = top_k
        self.candidate_pool_size = candidate_pool_size
        self.discovery = CausalDiscovery(alpha=alpha, max_conditioning=max_conditioning)
        self._features: List[np.ndarray] = []
        self._objectives: List[float] = []
        self._graph: Optional[CausalGraph] = None
        #: per-iteration statistics recorded for the scalability benchmark.
        self.iteration_stats: List[Dict[str, float]] = []

    def _encode(self, configuration: Configuration) -> np.ndarray:
        """Naive per-parameter encoding, preserved for the cost profile."""
        return self.encoder.encode_reference(configuration)

    def observe(self, record: TrialRecord) -> None:
        vector = self._encode(record.configuration)
        self._features.append(vector)
        if record.crashed or record.objective is None:
            # Crashes are recorded at the worst observed objective so far.
            observed = self._objectives or [0.0]
            value = min(observed) if self.maximize else max(observed)
        else:
            value = record.objective
        self._objectives.append(value)

    def _relearn_graph(self) -> Optional[CausalGraph]:
        if len(self._features) < 4:
            return None
        features = np.vstack(self._features)
        objective = np.array(self._objectives, dtype=np.float64)
        # The full history and the dense pairwise structures are kept live —
        # the quadratic memory behaviour Figure 7 measures.
        graph = self.discovery.learn(features, objective)
        self.iteration_stats.append({
            "samples": float(features.shape[0]),
            "features": float(features.shape[1]),
            "edges": float(np.count_nonzero(graph.adjacency) / 2.0),
        })
        return graph

    def propose(self, history: ExplorationHistory,
                pending: Sequence[Configuration] = ()) -> Configuration:
        # The pending-aware dedupe below only filters the final ranked scan;
        # the full causal-graph recomputation per proposal — the Figure 7
        # cost profile — is untouched by async execution.
        in_flight = set(pending)
        self._graph = self._relearn_graph()
        if self._graph is None:
            return self.sampler.sample_unique(history, exclude=in_flight)
        important = set(self._graph.strongest_features(self.top_k))
        # dedup pool slots against already-evaluated configurations (O(1)
        # membership index); the ranked fallback scan below stays as the
        # safety net when the space is nearly exhausted.
        candidates = self.sampler.sample_pool(self.candidate_pool_size,
                                              history=history)
        matrix = np.vstack([self._encode(candidate) for candidate in candidates])

        best_record = history.best_record()
        if best_record is None:
            return self.sampler.sample_unique(history, exclude=in_flight)
        incumbent = self._encode(best_record.configuration)

        # Score candidates by how strongly they intervene on the causally
        # important columns, in the direction suggested by the correlation.
        scores = np.zeros(len(candidates))
        for column in important:
            direction = math.copysign(1.0, self._graph.objective_strength[column])
            if not self.maximize:
                direction = -direction
            scores += direction * (matrix[:, column] - incumbent[column])
        order = np.argsort(-scores)
        for index in order:
            candidate = candidates[int(index)]
            if (not history.contains_configuration(candidate)
                    and candidate not in in_flight):
                return candidate
        return self.sampler.sample_unique(history, exclude=in_flight)

    # -- checkpointing ------------------------------------------------------------
    def export_state(self) -> dict:
        # ``_graph`` is recomputed from scratch at every proposal (that is
        # the point of the baseline), so only the observation store and the
        # bootstrap RNG stream are mutable state.
        state = super().export_state()
        state["features"] = [vector.copy() for vector in self._features]
        state["objectives"] = list(self._objectives)
        state["bootstrap_rng"] = self.discovery._rng.bit_generator.state
        state["iteration_stats"] = [dict(entry) for entry in self.iteration_stats]
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        self._features = [np.array(vector, dtype=np.float64)
                          for vector in state["features"]]
        self._objectives = [float(value) for value in state["objectives"]]
        self.discovery._rng.bit_generator.state = state["bootstrap_rng"]
        self.iteration_stats = [dict(entry) for entry in state["iteration_stats"]]
        self._graph = None
