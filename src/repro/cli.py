"""Command-line interface to the Wayfinder reproduction.

The original Wayfinder ships ``wfctl``, a CLI that creates jobs from YAML job
files and starts exploration runs.  This module provides the equivalent for
the reproduction:

.. code-block:: console

    $ python -m repro.cli census --version v6.0
    $ python -m repro.cli probe --output probed-job.yaml
    $ python -m repro.cli run --application nginx --metric throughput \
          --algorithm deeptune --iterations 100 --results results/
    $ python -m repro.cli run --application redis --algorithm deeptune \
          --workers 4 --batch-size 4 --iterations 200
    $ python -m repro.cli run --job job.yaml
    $ python -m repro.cli run --application nginx --iterations 200 \
          --results results/ --checkpoint-every 5
    $ python -m repro.cli run --resume linux-nginx-deeptune --results results/
    $ python -m repro.cli run --application sqlite --algorithm deeptune \
          --warm-start campaign-out/ --iterations 100
    $ python -m repro.cli compare --application nginx --iterations 60
    $ python -m repro.cli compare --application nginx --favor none \
          --time-budget-s 7200 --workers 4 --batch-size 4
    $ python -m repro.cli campaign run --spec campaign.yaml \
          --results campaign-out/ --procs 4
    $ python -m repro.cli campaign run --results campaign-out/ --resume --procs 4
    $ python -m repro.cli campaign report --results campaign-out/

Every front-end — CLI flags, job files, the Python API — builds the same
declarative :class:`~repro.core.spec.ExperimentSpec`, which the platform
consumes wholesale.  ``--workers N`` evaluates trials on N simulated
system-under-test machines in parallel (batches of ``--batch-size`` proposals
per search round), which compresses the virtual time-to-best.  With
``--results`` and ``--checkpoint-every`` the run periodically persists a
resumable checkpoint; ``--resume NAME`` continues an interrupted run from it,
reproducing the uninterrupted run trial for trial.

``campaign run`` scales the same machinery to paper-style grids: a YAML
campaign spec expands into applications x algorithms x seeds (x favor)
experiments executed by ``--procs`` pull-based workers that claim work
from the campaign manifest under leases (``--lease-s``) and retry failures
with backoff (``--max-attempts``); ``campaign run --resume`` continues a
killed campaign (completed experiments skipped by manifest, in-flight ones
resumed bit-exactly, with a possibly different ``--procs``) and
``campaign report`` renders the cross-experiment tables and figure series.
The ``--chaos-*`` flags inject deterministic faults — worker kills, torn
checkpoint writes, startup failures — to verify all of the above.

Every subcommand prints plain-text tables (no plotting dependencies) and can
persist histories through :class:`repro.platform.results.ResultsStore`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.config.jobfile import JobFile, dump_job_file, load_job_file
from repro.config.space import ConfigSpace
from repro.core.spec import UNSPECIFIED, ExperimentSpec
from repro.core.wayfinder import Wayfinder
from repro.kconfig.linux import linux_census
from repro.platform.executor import EXECUTION_MODES
from repro.platform.lifecycle import SessionObserver
from repro.platform.results import ResultsStore
from repro.search.registry import available_algorithms
from repro.sysctl.probe import SpaceProber
from repro.sysctl.procfs import ProcFS


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError("must be a number") from None
    if not value > 0:  # rejects 0, negatives, and nan
        raise argparse.ArgumentTypeError("must be positive")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must not be negative")
    return value


def _rate(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError("must be a number") from None
    if not 0.0 <= value <= 1.0:  # rejects nan too
        raise argparse.ArgumentTypeError("must be in [0, 1]")
    return value


def _add_run_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "run", help="run a specialization search for an application/metric")
    parser.add_argument("--job", help="YAML/JSON job file to execute")
    parser.add_argument("--application", default="nginx",
                        help="application to specialize for (default: nginx)")
    parser.add_argument("--metric", default="auto",
                        help="throughput | latency | memory | score | auto")
    parser.add_argument("--algorithm", default=None,
                        choices=available_algorithms(),
                        help="search algorithm (default: deeptune, or the "
                             "job file's value)")
    parser.add_argument("--os", dest="os_name", default="linux",
                        choices=("linux", "unikraft"))
    parser.add_argument("--favor", default=None,
                        choices=("runtime", "boot", "compile", "runtime+boot", "none"),
                        help="parameter kinds to concentrate the search on "
                             "(default: runtime on linux, none on unikraft)")
    parser.add_argument("--iterations", type=_positive_int, default=None,
                        help="trial budget (default: 100, or the job file's value)")
    parser.add_argument("--time-budget-s", type=_positive_float, default=None,
                        help="virtual-time budget in simulated seconds")
    parser.add_argument("--plateau", type=_positive_int, default=None,
                        help="stop after this many trials without a new incumbent")
    parser.add_argument("--seed", type=_non_negative_int, default=0)
    parser.add_argument("--workers", type=_positive_int, default=None,
                        help="simulated SUT machines evaluating in parallel "
                             "(default: 1, or the job file's value)")
    parser.add_argument("--batch-size", type=_positive_int, default=None,
                        help="configurations proposed per search round "
                             "(default: 1, or the job file's value)")
    parser.add_argument("--execution", default=None,
                        choices=EXECUTION_MODES,
                        help="scheduling policy: batch forms a barrier per "
                             "search round, async hands each worker its next "
                             "proposal the moment it finishes a trial "
                             "(default: batch, or the job file's value)")
    parser.add_argument("--warm-start", metavar="ZOO",
                        help="warm-start DeepTune from a surrogate zoo: a "
                             "zoo/ directory, or a campaign results "
                             "directory containing one. The nearest donor "
                             "by parameter-importance similarity seeds the "
                             "model; falls back to cold start when no "
                             "compatible donor exists")
    parser.add_argument("--warm-start-min-similarity", type=_rate, default=None,
                        help="minimum donor similarity in [0, 1]; donors "
                             "below it are ignored (default: 0.2)")
    parser.add_argument("--results", help="directory to store the exploration history")
    parser.add_argument("--name", help="name of the stored history (default: derived)")
    parser.add_argument("--checkpoint-every", type=_positive_int, default=None,
                        help="persist a resumable checkpoint every N batches "
                             "(requires --results)")
    parser.add_argument("--resume", metavar="NAME",
                        help="continue from a stored checkpoint (a name inside "
                             "--results, or a checkpoint file path); the stored "
                             "spec supplies the experiment settings and budget "
                             "flags extend it. Checkpoints embed pickled state: "
                             "only resume files from a trusted source")


def _add_probe_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "probe", help="infer the runtime configuration space of a booted kernel (§3.4)")
    parser.add_argument("--output", default="probed-job.yaml",
                        help="job file to write (YAML or JSON)")
    parser.add_argument("--application", default="nginx")
    parser.add_argument("--scale-factor", type=_positive_int, default=10)
    parser.add_argument("--extra-generic", type=_non_negative_int, default=40,
                        help="number of synthetic long-tail sysctls in the probe VM")


def _add_census_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "census", help="print the configuration-space census (Table 1)")
    parser.add_argument("--version", default="v6.0", choices=("v6.0", "v4.19"))


def _add_campaign_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "campaign",
        help="run and report grids of experiments (paper-scale campaigns)")
    campaign_subparsers = parser.add_subparsers(dest="campaign_command",
                                                required=True)

    run_parser = campaign_subparsers.add_parser(
        "run", help="execute a campaign grid on a pool of OS processes")
    run_parser.add_argument("--spec", help="campaign YAML/JSON file "
                                           "(omit with --resume: the stored "
                                           "manifest supplies it)")
    run_parser.add_argument("--results", required=True,
                            help="campaign directory (manifest, checkpoints, "
                                 "per-experiment histories)")
    run_parser.add_argument("--procs", type=_positive_int, default=1,
                            help="worker processes running experiments "
                                 "concurrently (default: 1)")
    run_parser.add_argument("--checkpoint-every", type=_positive_int,
                            default=None,
                            help="per-experiment checkpoint cadence in "
                                 "batches (default: 1, or the stored "
                                 "campaign's cadence on resume)")
    run_parser.add_argument("--resume", action="store_true",
                            help="continue an interrupted campaign: completed "
                                 "experiments are skipped by manifest, "
                                 "checkpointed ones resume bit-exactly")
    run_parser.add_argument("--max-experiments", type=_positive_int,
                            default=None,
                            help="run at most N experiments this invocation "
                                 "(the manifest keeps the rest pending)")
    run_parser.add_argument("--lease-s", type=_positive_float, default=None,
                            help="experiment lease duration in seconds; a "
                                 "worker that stops heartbeating for this "
                                 "long is presumed dead and its experiment "
                                 "is reclaimed (default: 30)")
    run_parser.add_argument("--max-attempts", type=_positive_int, default=None,
                            help="failed-experiment retries before "
                                 "quarantine to failed-permanent (default: 3)")
    run_parser.add_argument("--chaos-seed", type=_non_negative_int,
                            default=None,
                            help="seed for deterministic fault injection "
                                 "(overrides the spec's chaos block)")
    run_parser.add_argument("--chaos-kill-rate", type=_rate, default=None,
                            help="probability of killing a worker at each "
                                 "completion event (checkpoint saved or "
                                 "experiment finished)")
    run_parser.add_argument("--chaos-torn-write-rate", type=_rate,
                            default=None,
                            help="probability a checkpoint write is torn "
                                 "(truncated on disk) before the worker dies")
    run_parser.add_argument("--chaos-startup-failure-rate", type=_rate,
                            default=None,
                            help="probability an experiment start raises a "
                                 "transient (retryable) failure")

    report_parser = campaign_subparsers.add_parser(
        "report", help="render the cross-experiment tables and figure series "
                       "(aggregates stream off the columnar trial store, no "
                       "payload parsing)")
    report_parser.add_argument("--results", required=True,
                               help="campaign directory to aggregate")
    report_parser.add_argument("--max-points", type=_positive_int, default=12,
                               help="points per rendered figure series "
                                    "(must be a positive integer)")
    report_parser.add_argument("--json", action="store_true",
                               help="emit the machine-readable report "
                                    "document (identical bytes to the "
                                    "tuning service's /report endpoint)")


def _add_serve_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve", help="run the tuning service: an HTTP/JSON API over the "
                      "campaign fabric")
    parser.add_argument("--results", required=True,
                        help="results root; every job is a campaign "
                             "directory <root>/<tenant>/<seq> and restart "
                             "recovery rescans it")
    parser.add_argument("--host", default="127.0.0.1",
                        help="address to bind (default: 127.0.0.1)")
    parser.add_argument("--port", type=_non_negative_int, default=8080,
                        help="port to bind; 0 picks a free port "
                             "(default: 8080)")
    parser.add_argument("--workers", type=_positive_int, default=2,
                        help="job worker pool size — jobs running "
                             "concurrently, not per-job parallelism "
                             "(default: 2)")
    parser.add_argument("--checkpoint-every", type=_positive_int, default=1,
                        help="per-experiment checkpoint cadence in batches "
                             "for submitted jobs (default: 1)")
    parser.add_argument("--lease-s", type=_positive_float, default=None,
                        help="experiment lease duration in seconds "
                             "(default: 30)")
    parser.add_argument("--max-attempts", type=_positive_int, default=None,
                        help="failed-experiment retries before quarantine "
                             "(default: 3)")


def _add_compare_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "compare", help="compare search algorithms on one application")
    parser.add_argument("--application", default="nginx")
    parser.add_argument("--os", dest="os_name", default="linux",
                        choices=("linux", "unikraft"))
    parser.add_argument("--algorithms", nargs="+",
                        default=["random", "bayesian", "deeptune"])
    parser.add_argument("--favor", default=None,
                        choices=("runtime", "boot", "compile", "runtime+boot", "none"),
                        help="parameter kinds to concentrate the search on "
                             "(default: runtime on linux, none on unikraft)")
    parser.add_argument("--iterations", type=_positive_int, default=60)
    parser.add_argument("--time-budget-s", type=_positive_float, default=None)
    parser.add_argument("--seed", type=_non_negative_int, default=0)
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="simulated SUT machines evaluating in parallel")
    parser.add_argument("--batch-size", type=_positive_int, default=1,
                        help="configurations proposed per search round")
    parser.add_argument("--execution", default="batch",
                        choices=EXECUTION_MODES,
                        help="scheduling policy for every compared algorithm")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wayfinder-repro",
        description="Wayfinder (EuroSys'26) reproduction command-line interface")
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(subparsers)
    _add_probe_parser(subparsers)
    _add_census_parser(subparsers)
    _add_compare_parser(subparsers)
    _add_campaign_parser(subparsers)
    _add_serve_parser(subparsers)
    return parser


def _cli_favor(favor: Optional[str]):
    """Map the CLI favor flag onto the spec's favor value.

    None means "not specified" (the spec applies the per-OS default:
    runtime on linux, unfavored on unikraft); the literal "none" means
    explicitly unfavored.
    """
    if favor is None:
        return UNSPECIFIED
    return None if favor == "none" else favor


def _spec_from_flags(os_name: str, application: str, metric: str, algorithm: str,
                     favor: Optional[str], seed: int, workers: int = 1,
                     batch_size: int = 1, iterations: Optional[int] = None,
                     time_budget_s: Optional[float] = None,
                     plateau_trials: Optional[int] = None,
                     execution: str = "batch",
                     warm_start: Optional[dict] = None) -> ExperimentSpec:
    return ExperimentSpec(os_name=os_name, application=application,
                          metric=metric, algorithm=algorithm,
                          favor=_cli_favor(favor), seed=seed, workers=workers,
                          batch_size=batch_size, execution=execution,
                          iterations=iterations,
                          time_budget_s=time_budget_s,
                          plateau_trials=plateau_trials,
                          warm_start=warm_start)


def _build_wayfinder(os_name: str, application: str, metric: str, algorithm: str,
                     favor: Optional[str], seed: int, workers: int = 1,
                     batch_size: int = 1) -> Wayfinder:
    """Resolve CLI-style settings into a spec and wire a Wayfinder from it."""
    return Wayfinder.from_spec(_spec_from_flags(
        os_name, application, metric, algorithm, favor, seed,
        workers=workers, batch_size=batch_size))


def _warm_start_from_args(args: argparse.Namespace) -> Optional[dict]:
    """The ``warm_start:`` spec block the --warm-start flags describe."""
    if args.warm_start is None:
        if args.warm_start_min_similarity is not None:
            raise SystemExit("--warm-start-min-similarity requires --warm-start")
        return None
    warm_start = {"zoo": args.warm_start}
    if args.warm_start_min_similarity is not None:
        warm_start["min_similarity"] = args.warm_start_min_similarity
    return warm_start


def _spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    """Build the experiment spec a ``run`` invocation describes."""
    warm_start = _warm_start_from_args(args)
    if args.job:
        job = load_job_file(args.job)
        # explicit CLI flags override the job file's settings
        overrides = {}
        for field, value in (("algorithm", args.algorithm),
                             ("workers", args.workers),
                             ("batch_size", args.batch_size),
                             ("execution", args.execution),
                             ("iterations", args.iterations),
                             ("time_budget_s", args.time_budget_s),
                             ("plateau_trials", args.plateau),
                             ("warm_start", warm_start)):
            if value is not None:
                overrides[field] = value
        return job.to_spec(**overrides)
    return _spec_from_flags(
        args.os_name, args.application, args.metric,
        args.algorithm if args.algorithm is not None else "deeptune",
        args.favor, args.seed,
        workers=args.workers if args.workers is not None else 1,
        batch_size=args.batch_size if args.batch_size is not None else 1,
        execution=args.execution if args.execution is not None else "batch",
        iterations=args.iterations if args.iterations is not None else 100,
        time_budget_s=args.time_budget_s,
        plateau_trials=args.plateau,
        warm_start=warm_start)


class _ProgressObserver(SessionObserver):
    """Renders the session lifecycle as live CLI progress lines."""

    def on_batch_start(self, session, batch_index, planned):
        history = session.history
        best = history.best_objective()
        print("[batch {:>3}] trials={:<4d} best={} crash={:>4.0%} "
              "virtual={:.2f}h".format(
                  batch_index, len(history),
                  "-" if best is None else "{:.2f}".format(best),
                  history.crash_rate(),
                  session.backend.now_s / 3600.0))

    def on_dispatch(self, session, configuration, worker):
        history = session.history
        best = history.best_objective()
        print("[dispatch] worker {} trials={:<4d} best={} in-flight={} "
              "virtual={:.2f}h".format(
                  worker, len(history),
                  "-" if best is None else "{:.2f}".format(best),
                  session.backend.in_flight,
                  session.backend.now_s / 3600.0))

    def on_new_incumbent(self, session, record):
        print("  new incumbent: {:.2f} (trial #{}, worker {})".format(
            record.objective, record.index, record.worker))

    def on_checkpoint(self, session, path):
        print("  checkpoint saved to {}".format(path))


def _command_run(args: argparse.Namespace) -> int:
    store = ResultsStore(args.results) if args.results else None
    if args.resume:
        if os.path.exists(args.resume):
            checkpoint_path = args.resume
        elif store is not None:
            checkpoint_path = store.checkpoint_path(args.resume)
        else:
            print("--resume needs a checkpoint file path or --results to "
                  "locate the named checkpoint", file=sys.stderr)
            return 2
        if not os.path.exists(checkpoint_path):
            print("--resume: no checkpoint at {}".format(checkpoint_path),
                  file=sys.stderr)
            return 2
        # the checkpoint's spec defines the experiment: flags that would
        # invalidate the restored state are rejected, budget flags extend it.
        for flag, value in (("--algorithm", args.algorithm),
                            ("--workers", args.workers),
                            ("--batch-size", args.batch_size),
                            ("--execution", args.execution),
                            ("--warm-start", args.warm_start)):
            if value is not None:
                print("--resume: {} cannot be changed on a resumed run "
                      "(the checkpointed state depends on it)".format(flag),
                      file=sys.stderr)
                return 2
        wayfinder = Wayfinder.resume(checkpoint_path)
        spec = wayfinder.spec
        if (args.iterations is not None or args.time_budget_s is not None
                or args.plateau is not None):
            wayfinder.spec = spec = spec.with_overrides(
                iterations=args.iterations if args.iterations is not None
                else spec.iterations,
                time_budget_s=args.time_budget_s if args.time_budget_s is not None
                else spec.time_budget_s,
                plateau_trials=args.plateau if args.plateau is not None
                else spec.plateau_trials)
        print("Resuming {} from {} ({} trials done)...".format(
            spec.name, checkpoint_path, len(wayfinder.build_session().session.history)))
        # keep storing under the name the run was checkpointed as
        checkpoint_file = os.path.basename(checkpoint_path)
        resumed_name = checkpoint_file[:-len(ResultsStore.CHECKPOINT_SUFFIX)] \
            if checkpoint_file.endswith(ResultsStore.CHECKPOINT_SUFFIX) else spec.name
        name = args.name or resumed_name
    else:
        spec = _spec_from_args(args)
        wayfinder = Wayfinder.from_spec(spec)
        name = args.name or spec.name

    wayfinder.add_observer(_ProgressObserver())
    if args.checkpoint_every:
        if store is None:
            print("--checkpoint-every requires --results", file=sys.stderr)
            return 2
        wayfinder.enable_checkpointing(store, name=name, every=args.checkpoint_every)
    elif args.resume and store is not None:
        # keep the resumed run checkpointing at the default cadence so it
        # stays interruptible.
        wayfinder.enable_checkpointing(store, name=name)

    print("Searching {} parameters with {} for {} ({}, {} worker{}, {} "
          "execution)...".format(
              len(wayfinder.space), spec.algorithm, spec.application,
              wayfinder.metric.name, spec.workers,
              "" if spec.workers == 1 else "s", spec.execution))
    result = wayfinder.specialize()

    rows = [
        ("iterations", result.iterations),
        ("default objective", "{:.2f}".format(result.default_objective or float("nan"))),
        ("best objective", "{:.2f}".format(result.best_performance or float("nan"))),
        ("improvement", "{:.2f}x".format(result.improvement_factor or float("nan"))),
        ("crash rate", "{:.0%}".format(result.crash_rate)),
        ("virtual time (h)", "{:.1f}".format(result.total_time_s / 3600.0)),
        ("stopped by", result.stop_reason or "-"),
    ]
    print(format_table(("quantity", "value"), rows, title="Search result"))

    if store is not None:
        summary = result.summary()
        path = store.save_history(name, result.history, metadata={
            "application": spec.application, "metric": wayfinder.metric.name,
            "algorithm": spec.algorithm, "seed": spec.seed,
            "workers": spec.workers, "batch_size": spec.batch_size,
            "execution": spec.execution,
            "worker_utilization": summary["worker_utilization"],
            "favor": summary["favor"], "time_budget_s": summary["time_budget_s"],
            "stop_reason": summary["stop_reason"],
        })
        print("History stored at {}".format(path))
    return 0


def _command_probe(args: argparse.Namespace) -> int:
    procfs = ProcFS(extra_generic=args.extra_generic)
    prober = SpaceProber(scale_factor=args.scale_factor)
    probed = prober.probe(procfs)
    space = ConfigSpace([record.to_parameter() for record in probed],
                        name="probed-runtime-space")
    job = JobFile(name="probed-job", os_name="linux", application=args.application,
                  bench_tool="wrk", metric="throughput", space=space,
                  favor_kinds=["runtime"])
    dump_job_file(job, args.output)
    print("Probed {} runtime parameters; job file written to {}".format(
        len(probed), args.output))
    by_type = {}
    for record in probed:
        by_type[record.inferred_type] = by_type.get(record.inferred_type, 0) + 1
    print(format_table(("inferred type", "count"), sorted(by_type.items()),
                       title="Probed parameter types"))
    return 0


def _command_census(args: argparse.Namespace) -> int:
    census = linux_census(args.version)
    print(format_table(("option class", "count"), sorted(census.items()),
                       title="Linux {} configuration-space census".format(args.version)))
    return 0


def _command_campaign_run(args: argparse.Namespace) -> int:
    from repro.config.jobfile import load_campaign_file
    from repro.platform.campaign_runner import (DEFAULT_LEASE_S, MANIFEST_NAME,
                                                CampaignRunner)
    from repro.platform.faults import RetryPolicy

    # --chaos-* flags patch over the spec's chaos block for this invocation
    chaos_flags = {"seed": args.chaos_seed,
                   "kill_rate": args.chaos_kill_rate,
                   "torn_write_rate": args.chaos_torn_write_rate,
                   "startup_failure_rate": args.chaos_startup_failure_rate}
    chaos = {key: value for key, value in chaos_flags.items()
             if value is not None} or None
    retry = (None if args.max_attempts is None
             else RetryPolicy(max_attempts=args.max_attempts))
    lease_s = DEFAULT_LEASE_S if args.lease_s is None else args.lease_s

    manifest_present = os.path.exists(os.path.join(args.results, MANIFEST_NAME))
    if args.resume and manifest_present:
        # the stored manifest owns the campaign and, unless overridden on
        # the command line, the checkpoint cadence
        runner = CampaignRunner.open(args.results, procs=args.procs,
                                     checkpoint_every=args.checkpoint_every,
                                     lease_s=lease_s, retry=retry, chaos=chaos)
        if args.spec and load_campaign_file(args.spec) != runner.campaign:
            print("--spec does not match the campaign stored in {}; resume "
                  "without --spec or use a fresh directory".format(
                      args.results), file=sys.stderr)
            return 2
    elif args.spec:
        campaign = load_campaign_file(args.spec)
        runner = CampaignRunner(
            campaign, args.results, procs=args.procs,
            checkpoint_every=(1 if args.checkpoint_every is None
                              else args.checkpoint_every),
            lease_s=lease_s, retry=retry, chaos=chaos)
    else:
        print("campaign run needs --spec (or --resume with an existing "
              "campaign directory)", file=sys.stderr)
        return 2

    def progress(outcome, done, total):
        if outcome["status"] == "complete":
            summary = outcome["summary"]
            print("[{}/{}] {}: best={} trials={} ({})".format(
                done, total, outcome["name"],
                "-" if summary["best_objective"] is None
                else "{:.2f}".format(summary["best_objective"]),
                summary["trials"], summary["stop_reason"] or "-"))
        elif outcome["status"] == "failed-permanent":
            print("[{}/{}] {}: QUARANTINED".format(done, total,
                                                   outcome["name"]))
        else:
            print("[{}/{}] {}: FAILED (will retry)".format(
                done, total, outcome["name"]))

    print("Campaign {!r}: {} experiments on {} process{}{}...".format(
        runner.campaign.name, len(runner.campaign), args.procs,
        "" if args.procs == 1 else "es",
        " (resuming)" if args.resume else ""))
    try:
        result = runner.run(resume=args.resume,
                            max_experiments=args.max_experiments,
                            progress=progress)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    quarantined = result.quarantined
    print("Campaign state: {} complete, {} failed{}, {} pending "
          "(manifest in {})".format(
              len(result.completed), len(result.failed),
              " ({} quarantined)".format(len(quarantined)) if quarantined
              else "", len(result.pending), args.results))
    for entry in result.failed:
        error = (entry.get("error") or "").strip().splitlines()
        print("  {} {} after {} attempt{}: {}".format(
            entry["name"], entry["status"], entry.get("attempts", 0),
            "" if entry.get("attempts", 0) == 1 else "s",
            error[-1] if error else "?"), file=sys.stderr)
    return 0 if not result.failed else 1


def _command_campaign_report(args: argparse.Namespace) -> int:
    from repro.analysis.campaign_report import (campaign_report_document,
                                                render_campaign_report)

    if not os.path.isdir(args.results):
        print("no campaign directory at {}".format(args.results),
              file=sys.stderr)
        return 2
    try:
        if args.json:
            # serialized exactly like the service's /report endpoint so the
            # two outputs byte-diff clean (CI pins this)
            document = campaign_report_document(args.results)
            sys.stdout.write(
                json.dumps(document, indent=2, sort_keys=True) + "\n")
        else:
            print(render_campaign_report(args.results,
                                         max_points=args.max_points))
    except (OSError, ValueError) as error:
        print("cannot report on {}: {}".format(args.results, error),
              file=sys.stderr)
        return 2
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.platform.faults import RetryPolicy
    from repro.service.server import TuningServer, TuningService

    retry = (None if args.max_attempts is None
             else RetryPolicy(max_attempts=args.max_attempts))
    service = TuningService(
        args.results, workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        lease_s=30.0 if args.lease_s is None else args.lease_s,
        retry=retry)
    server = TuningServer(service, host=args.host, port=args.port)
    if service._recovered:
        print("recovered {} unfinished job{}: {}".format(
            len(service._recovered),
            "" if len(service._recovered) == 1 else "s",
            ", ".join(service._recovered)), flush=True)
    # the exact line clients (and the CI smoke) wait for before connecting
    print("listening on {}".format(server.url), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    if args.campaign_command == "run":
        return _command_campaign_run(args)
    return _command_campaign_report(args)


def _command_compare(args: argparse.Namespace) -> int:
    rows = []
    for algorithm in args.algorithms:
        spec = _spec_from_flags(args.os_name, args.application, "auto",
                                algorithm, args.favor, args.seed,
                                workers=args.workers,
                                batch_size=args.batch_size,
                                execution=args.execution,
                                iterations=args.iterations,
                                time_budget_s=args.time_budget_s)
        wayfinder = Wayfinder.from_spec(spec)
        result = wayfinder.specialize()
        rows.append((algorithm,
                     "{:.2f}".format(result.best_performance or float("nan")),
                     "{:.2f}x".format(result.improvement_factor or float("nan")),
                     "{:.0%}".format(result.crash_rate),
                     "{:.0f}".format((result.time_to_best_s or 0.0) / 60.0)))
    print(format_table(
        ("algorithm", "best objective", "improvement", "crash rate", "time to best (min)"),
        rows, title="{} on {}: algorithm comparison".format(args.application,
                                                            args.os_name)))
    return 0


_COMMANDS = {
    "run": _command_run,
    "probe": _command_probe,
    "census": _command_census,
    "compare": _command_compare,
    "campaign": _command_campaign,
    "serve": _command_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
