"""Command-line interface to the Wayfinder reproduction.

The original Wayfinder ships ``wfctl``, a CLI that creates jobs from YAML job
files and starts exploration runs.  This module provides the equivalent for
the reproduction:

.. code-block:: console

    $ python -m repro.cli census --version v6.0
    $ python -m repro.cli probe --output probed-job.yaml
    $ python -m repro.cli run --application nginx --metric throughput \
          --algorithm deeptune --iterations 100 --results results/
    $ python -m repro.cli run --application redis --algorithm deeptune \
          --workers 4 --batch-size 4 --iterations 200
    $ python -m repro.cli run --job job.yaml
    $ python -m repro.cli compare --application nginx --iterations 60
    $ python -m repro.cli compare --application nginx --favor none \
          --time-budget-s 7200 --workers 4 --batch-size 4

``--workers N`` evaluates trials on N simulated system-under-test machines
in parallel (batches of ``--batch-size`` proposals per search round), which
compresses the virtual time-to-best.  Skip-build image reuse is per-worker
state, so trial durations — and through them the explored trajectory — can
differ slightly from a single-worker run at the same seed.

Every subcommand prints plain-text tables (no plotting dependencies) and can
persist histories through :class:`repro.platform.results.ResultsStore`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.config.jobfile import JobFile, dump_job_file, load_job_file
from repro.config.space import ConfigSpace
from repro.core.wayfinder import Wayfinder
from repro.kconfig.linux import linux_census
from repro.platform.results import ResultsStore
from repro.search.registry import available_algorithms
from repro.sysctl.probe import SpaceProber
from repro.sysctl.procfs import ProcFS


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _add_run_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "run", help="run a specialization search for an application/metric")
    parser.add_argument("--job", help="YAML/JSON job file to execute")
    parser.add_argument("--application", default="nginx",
                        help="application to specialize for (default: nginx)")
    parser.add_argument("--metric", default="auto",
                        help="throughput | latency | memory | score | auto")
    parser.add_argument("--algorithm", default="deeptune",
                        choices=available_algorithms())
    parser.add_argument("--os", dest="os_name", default="linux",
                        choices=("linux", "unikraft"))
    parser.add_argument("--favor", default=None,
                        choices=("runtime", "boot", "compile", "runtime+boot", "none"),
                        help="parameter kinds to concentrate the search on "
                             "(default: runtime on linux, none on unikraft)")
    parser.add_argument("--iterations", type=int, default=100)
    parser.add_argument("--time-budget-s", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=_positive_int, default=None,
                        help="simulated SUT machines evaluating in parallel "
                             "(default: 1, or the job file's value)")
    parser.add_argument("--batch-size", type=_positive_int, default=None,
                        help="configurations proposed per search round "
                             "(default: 1, or the job file's value)")
    parser.add_argument("--results", help="directory to store the exploration history")
    parser.add_argument("--name", help="name of the stored history (default: derived)")


def _add_probe_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "probe", help="infer the runtime configuration space of a booted kernel (§3.4)")
    parser.add_argument("--output", default="probed-job.yaml",
                        help="job file to write (YAML or JSON)")
    parser.add_argument("--application", default="nginx")
    parser.add_argument("--scale-factor", type=int, default=10)
    parser.add_argument("--extra-generic", type=int, default=40,
                        help="number of synthetic long-tail sysctls in the probe VM")


def _add_census_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "census", help="print the configuration-space census (Table 1)")
    parser.add_argument("--version", default="v6.0", choices=("v6.0", "v4.19"))


def _add_compare_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "compare", help="compare search algorithms on one application")
    parser.add_argument("--application", default="nginx")
    parser.add_argument("--os", dest="os_name", default="linux",
                        choices=("linux", "unikraft"))
    parser.add_argument("--algorithms", nargs="+",
                        default=["random", "bayesian", "deeptune"])
    parser.add_argument("--favor", default=None,
                        choices=("runtime", "boot", "compile", "runtime+boot", "none"),
                        help="parameter kinds to concentrate the search on "
                             "(default: runtime on linux, none on unikraft)")
    parser.add_argument("--iterations", type=int, default=60)
    parser.add_argument("--time-budget-s", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="simulated SUT machines evaluating in parallel")
    parser.add_argument("--batch-size", type=_positive_int, default=1,
                        help="configurations proposed per search round")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wayfinder-repro",
        description="Wayfinder (EuroSys'26) reproduction command-line interface")
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(subparsers)
    _add_probe_parser(subparsers)
    _add_census_parser(subparsers)
    _add_compare_parser(subparsers)
    return parser


def _build_wayfinder(os_name: str, application: str, metric: str, algorithm: str,
                     favor: Optional[str], seed: int, workers: int = 1,
                     batch_size: int = 1) -> Wayfinder:
    # favor=None means "not specified": linux keeps its historical runtime
    # preset, unikraft keeps its unfavored default.  An explicit --favor is
    # honoured on both OSes ("none" meaning no favoured kinds).
    if os_name == "unikraft":
        kwargs = {}
        if favor is not None:
            kwargs["favor"] = None if favor == "none" else favor
        return Wayfinder.for_unikraft(metric="throughput" if metric == "auto" else metric,
                                      algorithm=algorithm, seed=seed,
                                      workers=workers, batch_size=batch_size,
                                      **kwargs)
    favor = "runtime" if favor is None else favor
    favor_value = None if favor == "none" else favor
    return Wayfinder.for_linux(application=application, metric=metric,
                               algorithm=algorithm, favor=favor_value, seed=seed,
                               workers=workers, batch_size=batch_size)


def _command_run(args: argparse.Namespace) -> int:
    if args.job:
        job = load_job_file(args.job)
        application = job.application
        metric = job.metric
        seed = job.seed
        iterations: Optional[int] = job.iterations
        time_budget = job.time_budget_s
        favor = job.favor_kinds[0] if job.favor_kinds else None
        algorithm = args.algorithm
        os_name = job.os_name
        # explicit CLI flags override the job file's execution settings
        workers = args.workers if args.workers is not None else job.workers
        batch_size = (args.batch_size if args.batch_size is not None
                      else job.batch_size)
    else:
        application = args.application
        metric = args.metric
        seed = args.seed
        iterations = args.iterations
        time_budget = args.time_budget_s
        favor = args.favor
        algorithm = args.algorithm
        os_name = args.os_name
        workers = args.workers if args.workers is not None else 1
        batch_size = args.batch_size if args.batch_size is not None else 1

    wayfinder = _build_wayfinder(os_name, application, metric, algorithm, favor,
                                 seed, workers=workers, batch_size=batch_size)
    print("Searching {} parameters with {} for {} ({}, {} worker{})...".format(
        len(wayfinder.space), algorithm, application, wayfinder.metric.name,
        workers, "" if workers == 1 else "s"))
    result = wayfinder.specialize(iterations=iterations, time_budget_s=time_budget)

    rows = [
        ("iterations", result.iterations),
        ("default objective", "{:.2f}".format(result.default_objective or float("nan"))),
        ("best objective", "{:.2f}".format(result.best_performance or float("nan"))),
        ("improvement", "{:.2f}x".format(result.improvement_factor or float("nan"))),
        ("crash rate", "{:.0%}".format(result.crash_rate)),
        ("virtual time (h)", "{:.1f}".format(result.total_time_s / 3600.0)),
    ]
    print(format_table(("quantity", "value"), rows, title="Search result"))

    if args.results:
        store = ResultsStore(args.results)
        name = args.name or "{}-{}-{}".format(os_name, application, algorithm)
        path = store.save_history(name, result.history, metadata={
            "application": application, "metric": wayfinder.metric.name,
            "algorithm": algorithm, "seed": seed,
        })
        print("History stored at {}".format(path))
    return 0


def _command_probe(args: argparse.Namespace) -> int:
    procfs = ProcFS(extra_generic=args.extra_generic)
    prober = SpaceProber(scale_factor=args.scale_factor)
    probed = prober.probe(procfs)
    space = ConfigSpace([record.to_parameter() for record in probed],
                        name="probed-runtime-space")
    job = JobFile(name="probed-job", os_name="linux", application=args.application,
                  bench_tool="wrk", metric="throughput", space=space,
                  favor_kinds=["runtime"])
    dump_job_file(job, args.output)
    print("Probed {} runtime parameters; job file written to {}".format(
        len(probed), args.output))
    by_type = {}
    for record in probed:
        by_type[record.inferred_type] = by_type.get(record.inferred_type, 0) + 1
    print(format_table(("inferred type", "count"), sorted(by_type.items()),
                       title="Probed parameter types"))
    return 0


def _command_census(args: argparse.Namespace) -> int:
    census = linux_census(args.version)
    print(format_table(("option class", "count"), sorted(census.items()),
                       title="Linux {} configuration-space census".format(args.version)))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    rows = []
    for algorithm in args.algorithms:
        wayfinder = _build_wayfinder(args.os_name, args.application, "auto",
                                     algorithm, args.favor, args.seed,
                                     workers=args.workers,
                                     batch_size=args.batch_size)
        result = wayfinder.specialize(iterations=args.iterations,
                                      time_budget_s=args.time_budget_s)
        rows.append((algorithm,
                     "{:.2f}".format(result.best_performance or float("nan")),
                     "{:.2f}x".format(result.improvement_factor or float("nan")),
                     "{:.0%}".format(result.crash_rate),
                     "{:.0f}".format((result.time_to_best_s or 0.0) / 60.0)))
    print(format_table(
        ("algorithm", "best objective", "improvement", "crash rate", "time to best (min)"),
        rows, title="{} on {}: algorithm comparison".format(args.application,
                                                            args.os_name)))
    return 0


_COMMANDS = {
    "run": _command_run,
    "probe": _command_probe,
    "census": _command_census,
    "compare": _command_compare,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
