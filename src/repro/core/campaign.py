"""Declarative experiment campaigns: grids of specs run as one unit.

The paper's headline results are not single runs but *campaigns* — grids of
OS x application x algorithm x seed experiments compared against each other
(Figures 7/8, Table 3).  A :class:`CampaignSpec` describes such a grid
declaratively: the axes to sweep (applications, algorithms, seeds, favor
presets), a ``base`` block of :class:`~repro.core.spec.ExperimentSpec`
fields shared by every grid point, and optional per-axis ``overrides``
patching individual points (e.g. "redis experiments use the latency
metric").  :meth:`CampaignSpec.expand` resolves the grid into a list of
fully-validated experiment specs with deterministic, unique names — the
unit the :class:`~repro.platform.campaign_runner.CampaignRunner` schedules
onto OS processes.

Like the experiment spec, a campaign spec is serializable
(:meth:`to_dict`/:meth:`from_dict` round-trip through JSON) and has a YAML
file form (:func:`repro.config.jobfile.load_campaign_file`), so the whole
result matrix of a paper-style evaluation is one human-editable document.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.spec import FAVOR_PRESETS, UNSPECIFIED, ExperimentSpec

#: spec fields a campaign sweeps as axes; they cannot appear in ``base``
#: (``favor``/``execution`` are special: each is only an axis when the
#: corresponding ``favors``/``executions`` list is given).
_AXIS_FIELDS = ("application", "algorithm", "seed", "favor", "execution")

#: spec fields the campaign itself owns.
_RESERVED_BASE_FIELDS = ("name", "application", "algorithm", "seed")

#: match keys an override rule may constrain.
_MATCH_KEYS = _AXIS_FIELDS


def _normalize_execution(value: Any) -> str:
    """Validate one value of the ``executions`` axis."""
    # Imported lazily (mirrors the spec's registry import) so the campaign
    # layer stays importable without the platform stack; the executor owns
    # the canonical mode list.
    from repro.platform.executor import EXECUTION_MODES

    if value not in EXECUTION_MODES:
        raise ValueError(
            "unknown execution mode {!r}; expected one of {}".format(
                value, ", ".join(EXECUTION_MODES)))
    return str(value)


def _normalize_favor(value: Any) -> Any:
    """Map the file/CLI spelling of a favor onto the spec's value.

    The literal string ``"none"`` (and YAML ``null``) mean "explicitly
    unfavored"; every other value must be a known preset name.
    """
    if value == "none" or value is None:
        return None
    if value not in FAVOR_PRESETS:
        raise ValueError(
            "unknown favor preset {!r}; expected one of {} or none".format(
                value, ", ".join(sorted(k for k in FAVOR_PRESETS if k))))
    return value


def _check_axis_list(value: Any, axis: str) -> List[Any]:
    """An axis must be a real list — a bare string would silently become
    its letters (``applications: "nginx"`` → n, g, i, n, x)."""
    if isinstance(value, str) or not isinstance(value, (list, tuple)):
        raise ValueError(
            "campaign field {!r} must be a list (got {} {!r})".format(
                axis, type(value).__name__, value))
    return list(value)


def _unique(values: List[Any], axis: str) -> List[Any]:
    if not values:
        raise ValueError("campaign axis {!r} must not be empty".format(axis))
    seen = set()
    for value in values:
        if value in seen:
            raise ValueError("campaign axis {!r} repeats value {!r}".format(
                axis, value))
        seen.add(value)
    return list(values)


class CampaignSpec:
    """A declarative grid of experiments sharing one base configuration."""

    FIELDS = ("name", "applications", "algorithms", "seeds", "favors",
              "executions", "base", "overrides", "chaos")

    def __init__(
        self,
        name: str,
        applications: Optional[List[str]] = None,
        algorithms: Optional[List[str]] = None,
        seeds: Optional[List[int]] = None,
        favors: Optional[List[Optional[str]]] = None,
        executions: Optional[List[str]] = None,
        base: Optional[Dict[str, Any]] = None,
        overrides: Optional[List[Dict[str, Any]]] = None,
        chaos: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(
                "campaign field 'name' must be a non-empty string "
                "(got {} {!r})".format(type(name).__name__, name))
        self.name = name
        self.applications = _unique(
            ["nginx"] if applications is None
            else _check_axis_list(applications, "applications"),
            "applications")
        self.algorithms = _unique(
            ["deeptune"] if algorithms is None
            else _check_axis_list(algorithms, "algorithms"),
            "algorithms")
        seeds = ([0] if seeds is None
                 else _check_axis_list(seeds, "seeds"))
        for seed in seeds:
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise ValueError(
                    "campaign field 'seeds' must be a list of integers "
                    "(got {} {!r})".format(type(seed).__name__, seed))
        self.seeds = [int(seed) for seed in _unique(seeds, "seeds")]
        #: ``None`` means "no favor axis": every experiment uses the base's
        #: favor (or the per-OS default).  A list sweeps favor presets, with
        #: ``None``/"none" meaning explicitly unfavored.
        if favors is None:
            self.favors = None
        else:
            self.favors = [_normalize_favor(value) for value in _unique(
                _check_axis_list(favors, "favors"), "favors")]
        #: ``None`` means "no execution axis": every experiment uses the
        #: base's execution mode (or the default, batch).  A list sweeps
        #: execution modes — the async-vs-batch comparison as one campaign.
        if executions is None:
            self.executions = None
        else:
            self.executions = [_normalize_execution(value) for value in _unique(
                _check_axis_list(executions, "executions"), "executions")]
        if base is not None and not isinstance(base, dict):
            raise ValueError(
                "campaign field 'base' must be an object of spec fields "
                "(got {} {!r})".format(type(base).__name__, base))
        self.base = dict(base or {})
        bad = sorted(set(self.base) & set(_RESERVED_BASE_FIELDS))
        if bad:
            raise ValueError(
                "base cannot set {}: these are campaign axes (or the "
                "campaign's own name)".format(", ".join(bad)))
        unknown = sorted(set(self.base) - set(ExperimentSpec.FIELDS))
        if unknown:
            raise ValueError("unknown base spec fields: {}".format(
                ", ".join(unknown)))
        for field, value in self.base.items():
            ExperimentSpec.check_field(field, value)
        if "favor" in self.base:
            if self.favors is not None:
                raise ValueError(
                    "base cannot set favor when the campaign sweeps a "
                    "favors axis")
            self.base["favor"] = _normalize_favor(self.base["favor"])
        if "execution" in self.base:
            if self.executions is not None:
                raise ValueError(
                    "base cannot set execution when the campaign sweeps an "
                    "executions axis")
            self.base["execution"] = _normalize_execution(self.base["execution"])
        if overrides is not None and not isinstance(overrides, (list, tuple)):
            raise ValueError(
                "campaign field 'overrides' must be a list of override "
                "rules (got {} {!r})".format(type(overrides).__name__,
                                             overrides))
        self.overrides = [self._check_override(rule)
                          for rule in list(overrides or [])]
        # Imported lazily like the executor registry above: the chaos
        # vocabulary is owned by the platform's fault-injection module.
        from repro.platform.faults import validate_chaos

        #: optional fault-injection block (seed + kill/torn-write/startup
        #: failure rates) applied to every worker running this campaign;
        #: ``--chaos-*`` CLI flags override it per invocation.
        self.chaos = validate_chaos(chaos)
        # fail fast: an invalid grid point (bad metric, unknown algorithm,
        # colliding names) should surface when the campaign is built, not
        # halfway through a multi-hour run.
        self._expanded = self._expand()

    def _check_override(self, rule: Dict[str, Any]) -> Dict[str, Any]:
        if not isinstance(rule, dict) or set(rule) - {"match", "set"} or "set" not in rule:
            raise ValueError(
                "override rules are {{match: {{axis: value}}, set: {{spec "
                "field: value}}}} mappings (got {!r})".format(rule))
        match = dict(rule.get("match") or {})
        patch = dict(rule["set"])
        unknown = sorted(set(match) - set(_MATCH_KEYS))
        if unknown:
            raise ValueError("override can only match on {} (got {})".format(
                ", ".join(_MATCH_KEYS), ", ".join(unknown)))
        if "favor" in match:
            match["favor"] = _normalize_favor(match["favor"])
        if "execution" in match:
            match["execution"] = _normalize_execution(match["execution"])
        # a match value no grid point has would make the rule silently inert
        # for a whole (possibly multi-hour) campaign; fail fast instead.
        axis_values = {"application": self.applications,
                       "algorithm": self.algorithms, "seed": self.seeds,
                       "favor": (self.favors if self.favors is not None
                                 else [self.base.get("favor")]),
                       "execution": (self.executions
                                     if self.executions is not None
                                     else [self.base.get("execution", "batch")])}
        for key, value in match.items():
            if value not in axis_values[key]:
                raise ValueError(
                    "override matches {}={!r}, which no grid point "
                    "has".format(key, value))
        # the grid axes (and the derived name) are the campaign's identity:
        # patching them would make experiment names lie about what ran.
        reserved = {"name", "application", "algorithm", "seed"}
        if self.favors is not None:
            reserved.add("favor")
        if self.executions is not None:
            reserved.add("execution")
        bad = sorted(set(patch) & reserved)
        if bad:
            raise ValueError("override cannot set {}".format(", ".join(bad)))
        unknown = sorted(set(patch) - set(ExperimentSpec.FIELDS))
        if unknown:
            raise ValueError("unknown override spec fields: {}".format(
                ", ".join(unknown)))
        if "favor" in patch:
            patch["favor"] = _normalize_favor(patch["favor"])
        return {"match": match, "set": patch}

    # -- expansion ---------------------------------------------------------------
    def experiment_name(self, application: str, algorithm: str, seed: int,
                        favor: Any = UNSPECIFIED,
                        execution: Any = UNSPECIFIED) -> str:
        """The deterministic name of one grid point's experiment."""
        name = "{}-{}-{}-s{}".format(self.name, application, algorithm, seed)
        if self.favors is not None:
            name += "-f{}".format("none" if favor is None else favor)
        if self.executions is not None:
            name += "-x{}".format(execution)
        return name

    def _expand(self) -> List[ExperimentSpec]:
        favor_axis: List[Any] = [UNSPECIFIED] if self.favors is None else list(self.favors)
        execution_axis: List[Any] = ([UNSPECIFIED] if self.executions is None
                                     else list(self.executions))
        specs: List[ExperimentSpec] = []
        names = set()
        for application in self.applications:
            for algorithm in self.algorithms:
                for seed in self.seeds:
                    for favor in favor_axis:
                        for execution in execution_axis:
                            fields = dict(self.base)
                            fields["application"] = application
                            fields["algorithm"] = algorithm
                            fields["seed"] = seed
                            if favor is not UNSPECIFIED:
                                fields["favor"] = favor
                            if execution is not UNSPECIFIED:
                                fields["execution"] = execution
                            point = {"application": application,
                                     "algorithm": algorithm, "seed": seed,
                                     "favor": (self.base.get("favor")
                                               if favor is UNSPECIFIED
                                               else favor),
                                     "execution": (self.base.get("execution",
                                                                 "batch")
                                                   if execution is UNSPECIFIED
                                                   else execution)}
                            for rule in self.overrides:
                                if all(point.get(key) == value
                                       for key, value in rule["match"].items()):
                                    fields.update(rule["set"])
                            name = self.experiment_name(application, algorithm,
                                                        seed, favor, execution)
                            if name in names:  # unreachable: axes are unique
                                raise ValueError(
                                    "duplicate experiment name {!r}".format(name))
                            names.add(name)
                            specs.append(ExperimentSpec(name=name, **fields))
        return specs

    def expand(self) -> List[ExperimentSpec]:
        """The fully-resolved experiment specs of the grid, in axis order.

        The order is deterministic — applications outermost, then algorithms,
        seeds, the favor axis, and the execution axis — and experiment names
        are unique, which is what makes campaign manifests and
        resume-by-name well defined.
        """
        return list(self._expanded)

    def __len__(self) -> int:
        return len(self._expanded)

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serialize the campaign to a JSON-representable dictionary."""
        return {
            "name": self.name,
            "applications": list(self.applications),
            "algorithms": list(self.algorithms),
            "seeds": list(self.seeds),
            "favors": None if self.favors is None else list(self.favors),
            "executions": (None if self.executions is None
                           else list(self.executions)),
            "base": dict(self.base),
            "overrides": [{"match": dict(rule["match"]),
                           "set": dict(rule["set"])} for rule in self.overrides],
            "chaos": None if self.chaos is None else dict(self.chaos),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        """Rebuild a campaign from :meth:`to_dict` output (unknown keys rejected)."""
        if not isinstance(data, dict):
            raise ValueError(
                "campaign payload must be a JSON object (got {})".format(
                    type(data).__name__))
        unknown = sorted(set(data) - set(cls.FIELDS))
        if unknown:
            raise ValueError("unknown campaign fields: {}".format(
                ", ".join(unknown)))
        if "name" not in data:
            raise ValueError("a campaign needs a name")
        return cls(**data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CampaignSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return ("CampaignSpec(name={!r}, apps={}, algorithms={}, seeds={}, "
                "experiments={})").format(
                    self.name, self.applications, self.algorithms, self.seeds,
                    len(self._expanded))
