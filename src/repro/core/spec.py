"""The declarative experiment specification.

An :class:`ExperimentSpec` is the single description of one specialization
experiment: which OS and application to specialize, which metric and search
algorithm to use, the search budget, and how the evaluation fleet is shaped.
Every front-end builds one — the CLI from its flags, :class:`JobFile` via
:meth:`JobFile.to_spec`, and the :class:`~repro.core.wayfinder.Wayfinder`
constructors from their keyword arguments — and the rest of the platform
consumes only the spec, so a new knob is added in exactly one place.

The spec is *fully resolved*: OS-dependent defaults (the ``favor`` preset,
the Unikraft application) are applied at construction, so two specs built
from equivalent inputs through different front-ends compare equal.  It is
also *serializable* (``to_dict``/``from_dict`` round-trip through JSON),
which is what makes checkpoints self-describing: a stored checkpoint embeds
the spec, and :meth:`Wayfinder.resume` rebuilds the entire experiment from
it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.config.parameter import ParameterKind

#: favor preset name -> parameter kinds the search concentrates on.
FAVOR_PRESETS: Dict[Optional[str], Optional[List[ParameterKind]]] = {
    "runtime": [ParameterKind.RUNTIME],
    "boot": [ParameterKind.BOOT_TIME],
    "compile": [ParameterKind.COMPILE_TIME],
    "runtime+boot": [ParameterKind.RUNTIME, ParameterKind.BOOT_TIME],
    None: None,
}

_KNOWN_METRICS = ("auto", "throughput", "performance", "latency", "memory", "score")
_KNOWN_OS = ("linux", "unikraft")

#: sentinel distinguishing "favor not specified" (use the OS default) from an
#: explicit ``favor=None`` ("do not favor any parameter kind").
UNSPECIFIED = object()


def default_favor(os_name: str) -> Optional[str]:
    """The historical per-OS favor default: runtime on Linux, none on Unikraft."""
    return "runtime" if os_name == "linux" else None


def _jsonable(value: Any) -> Any:
    """Recursively normalize tuples to lists so dict round-trips compare equal.

    Values that are not JSON-representable (e.g. a pre-trained model passed
    through ``algorithm_options``) are left untouched; such specs still run
    but refuse to serialize (see :meth:`ExperimentSpec.to_dict`).
    """
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


class ExperimentSpec:
    """A complete, validated description of one specialization experiment."""

    FIELDS = (
        "name", "os_name", "application", "metric", "algorithm", "favor",
        "seed", "iterations", "time_budget_s", "plateau_trials", "workers",
        "batch_size", "execution", "enable_skip_build", "frozen",
        "algorithm_options", "os_version", "architecture", "space_options",
        "warm_start",
    )

    #: accepted keys of the ``warm_start`` block -> (types, human name).
    WARM_START_KEYS: Dict[str, Any] = {
        "zoo": ((str,), "a string (zoo or campaign directory)"),
        "min_similarity": ((int, float), "a number"),
        "donor": ((str,), "a string (application name)"),
    }

    def __init__(
        self,
        os_name: str = "linux",
        application: str = "nginx",
        metric: str = "auto",
        algorithm: str = "deeptune",
        favor: Any = UNSPECIFIED,
        seed: int = 0,
        iterations: Optional[int] = None,
        time_budget_s: Optional[float] = None,
        plateau_trials: Optional[int] = None,
        workers: int = 1,
        batch_size: int = 1,
        execution: str = "batch",
        enable_skip_build: bool = True,
        frozen: Optional[Dict[str, Any]] = None,
        algorithm_options: Optional[Dict[str, Any]] = None,
        os_version: str = "v4.19",
        architecture: str = "x86_64",
        space_options: Optional[Dict[str, Any]] = None,
        warm_start: Optional[Dict[str, Any]] = None,
        name: Optional[str] = None,
    ) -> None:
        if os_name not in _KNOWN_OS:
            raise ValueError("unknown os {!r}; expected one of {}".format(
                os_name, ", ".join(_KNOWN_OS)))
        if metric not in _KNOWN_METRICS:
            raise ValueError("unknown metric {!r}; expected one of {}".format(
                metric, ", ".join(_KNOWN_METRICS)))
        # Imported here so building a spec stays cheap for the config layer.
        from repro.search.registry import available_algorithms

        if algorithm not in available_algorithms():
            raise ValueError("unknown algorithm {!r}; available: {}".format(
                algorithm, ", ".join(available_algorithms())))
        if favor is UNSPECIFIED:
            favor = default_favor(os_name)
        if favor not in FAVOR_PRESETS:
            raise ValueError("unknown favor preset {!r}; expected one of {}".format(
                favor, ", ".join(sorted(k for k in FAVOR_PRESETS if k))))
        if iterations is not None and int(iterations) < 1:
            raise ValueError("iterations must be at least 1 (got {!r})".format(iterations))
        if time_budget_s is not None and float(time_budget_s) <= 0:
            raise ValueError("time_budget_s must be positive")
        if plateau_trials is not None and int(plateau_trials) < 1:
            raise ValueError("plateau_trials must be at least 1")
        if int(workers) < 1:
            raise ValueError("workers must be at least 1")
        if int(batch_size) < 1:
            raise ValueError("batch_size must be at least 1")
        # Imported here (like the registry above) so the config layer can
        # build specs without the platform stack; the executor owns the
        # canonical mode list.
        from repro.platform.executor import EXECUTION_MODES

        if execution not in EXECUTION_MODES:
            raise ValueError("unknown execution mode {!r}; expected one of {}".format(
                execution, ", ".join(EXECUTION_MODES)))
        if warm_start is not None:
            warm_start = self._validate_warm_start(warm_start)

        self.os_name = os_name
        # The Unikraft experiment always targets the §4.4 Nginx image, exactly
        # as the CLI has always resolved it; normalizing here keeps specs from
        # different front-ends comparable.
        self.application = "unikraft-nginx" if os_name == "unikraft" else application
        # auto-metric on Unikraft has always meant throughput.
        if os_name == "unikraft" and metric == "auto":
            metric = "throughput"
        self.metric = metric
        self.algorithm = algorithm
        self.favor = favor
        self.seed = int(seed)
        self.iterations = None if iterations is None else int(iterations)
        self.time_budget_s = None if time_budget_s is None else float(time_budget_s)
        self.plateau_trials = None if plateau_trials is None else int(plateau_trials)
        self.workers = int(workers)
        self.batch_size = int(batch_size)
        self.execution = str(execution)
        self.enable_skip_build = bool(enable_skip_build)
        self.frozen = _jsonable(dict(frozen or {}))
        self.algorithm_options = _jsonable(dict(algorithm_options or {}))
        self.os_version = os_version
        self.architecture = architecture
        self.space_options = _jsonable(dict(space_options or {}))
        # None survives (cold start); old serialized specs have no key at
        # all, and from_dict maps both to the same spec.
        self.warm_start = None if warm_start is None else _jsonable(dict(warm_start))
        self.name = name or "{}-{}-{}".format(self.os_name, self.application,
                                              self.algorithm)

    @classmethod
    def _validate_warm_start(cls, warm_start: Any) -> Dict[str, Any]:
        """Validate a ``warm_start`` block, naming the offending key."""
        if not isinstance(warm_start, dict):
            raise ValueError(
                "spec field 'warm_start' must be an object (got {} {!r})".format(
                    type(warm_start).__name__, warm_start))
        unknown = sorted(set(warm_start) - set(cls.WARM_START_KEYS))
        if unknown:
            raise ValueError("unknown warm_start keys: {} (expected {})".format(
                ", ".join(unknown), ", ".join(sorted(cls.WARM_START_KEYS))))
        if "zoo" not in warm_start:
            raise ValueError("warm_start requires a 'zoo' key naming the zoo "
                             "(or campaign results) directory")
        for key, value in warm_start.items():
            types, expected = cls.WARM_START_KEYS[key]
            if not isinstance(value, types) or isinstance(value, bool):
                raise ValueError(
                    "warm_start key {!r} must be {} (got {} {!r})".format(
                        key, expected, type(value).__name__, value))
        similarity = warm_start.get("min_similarity")
        if similarity is not None and not 0.0 <= float(similarity) <= 1.0:
            raise ValueError("warm_start key 'min_similarity' must be within "
                             "[0, 1] (got {!r})".format(similarity))
        return dict(warm_start)

    # -- favored kinds -----------------------------------------------------------
    @property
    def favored_kinds(self) -> Optional[List[ParameterKind]]:
        """The parameter kinds the favor preset resolves to (None = all)."""
        return FAVOR_PRESETS[self.favor]

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serialize the spec to a JSON-representable dictionary.

        Raises :class:`ValueError` when the spec carries non-serializable
        payloads (e.g. a live model object in ``algorithm_options``) — such
        experiments cannot be checkpointed or resumed.
        """
        data = {field: getattr(self, field) for field in self.FIELDS}
        try:
            json.dumps(data)
        except TypeError as error:
            raise ValueError(
                "spec is not serializable (non-JSON value in frozen/"
                "algorithm_options/space_options): {}".format(error)) from None
        return data

    #: per-field (accepted types, human name) for dict-payload validation.
    #: ``None`` is additionally accepted where the constructor treats it as
    #: "use the default"; booleans are never accepted where ints are (bool
    #: is an int subclass, but ``seed: true`` is a payload bug).
    FIELD_TYPES: Dict[str, Any] = {
        "name": ((str,), "a string"),
        "os_name": ((str,), "a string"),
        "application": ((str,), "a string"),
        "metric": ((str,), "a string"),
        "algorithm": ((str,), "a string"),
        "favor": ((str,), "a string or null"),
        "seed": ((int,), "an integer"),
        "iterations": ((int,), "an integer"),
        "time_budget_s": ((int, float), "a number"),
        "plateau_trials": ((int,), "an integer"),
        "workers": ((int,), "an integer"),
        "batch_size": ((int,), "an integer"),
        "execution": ((str,), "a string"),
        "enable_skip_build": ((bool,), "a boolean"),
        "frozen": ((dict,), "an object"),
        "algorithm_options": ((dict,), "an object"),
        "os_version": ((str,), "a string"),
        "architecture": ((str,), "a string"),
        "space_options": ((dict,), "an object"),
        "warm_start": ((dict,), "an object"),
    }

    #: fields where an explicit null is as good as an absent key.
    _NULLABLE = ("name", "favor", "iterations", "time_budget_s",
                 "plateau_trials", "frozen", "algorithm_options",
                 "space_options", "warm_start")

    @classmethod
    def check_field(cls, field: str, value: Any) -> None:
        """Raise a key-naming, type-naming ValueError when *value* is malformed.

        The tuning service surfaces these messages verbatim as 400 bodies,
        so they must say which key is wrong and what was expected — not
        just that ``int()`` failed somewhere.
        """
        if value is None and field in cls._NULLABLE:
            return
        types, expected = cls.FIELD_TYPES[field]
        ok = isinstance(value, types) and not (
            bool not in types and isinstance(value, bool))
        if not ok:
            raise ValueError(
                "spec field {!r} must be {} (got {} {!r})".format(
                    field, expected, type(value).__name__, value))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys rejected)."""
        if not isinstance(data, dict):
            raise ValueError("spec payload must be a JSON object (got {})".format(
                type(data).__name__))
        unknown = sorted(set(data) - set(cls.FIELDS))
        if unknown:
            raise ValueError("unknown spec fields: {}".format(", ".join(unknown)))
        for field, value in data.items():
            cls.check_field(field, value)
        kwargs = dict(data)
        # an absent favor key means "unspecified", an explicit null means
        # "unfavored" — mirror that distinction through the sentinel.
        if "favor" not in kwargs:
            kwargs["favor"] = UNSPECIFIED
        return cls(**kwargs)

    def with_overrides(self, **overrides: Any) -> "ExperimentSpec":
        """A copy of the spec with *overrides* applied (and re-validated)."""
        data = {field: getattr(self, field) for field in self.FIELDS}
        data.update(overrides)
        kwargs = {key: value for key, value in data.items() if key in self.FIELDS}
        unknown = sorted(set(overrides) - set(self.FIELDS))
        if unknown:
            raise ValueError("unknown spec fields: {}".format(", ".join(unknown)))
        return type(self)(**kwargs)

    # -- identity ----------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExperimentSpec):
            return NotImplemented
        return all(getattr(self, field) == getattr(other, field)
                   for field in self.FIELDS)

    def __repr__(self) -> str:
        return ("ExperimentSpec(os={!r}, app={!r}, metric={!r}, algorithm={!r}, "
                "seed={}, workers={}, batch_size={}, execution={!r})").format(
                    self.os_name, self.application, self.metric, self.algorithm,
                    self.seed, self.workers, self.batch_size, self.execution)
