"""Public high-level API of the Wayfinder reproduction."""

from repro.core.spec import ExperimentSpec
from repro.core.wayfinder import SearchResult, SpecializationSession, Wayfinder

__all__ = [
    "ExperimentSpec",
    "Wayfinder",
    "SpecializationSession",
    "SearchResult",
]
