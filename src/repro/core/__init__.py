"""Public high-level API of the Wayfinder reproduction."""

from repro.core.wayfinder import SearchResult, SpecializationSession, Wayfinder

__all__ = [
    "Wayfinder",
    "SpecializationSession",
    "SearchResult",
]
