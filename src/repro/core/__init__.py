"""Public high-level API of the Wayfinder reproduction."""

from repro.core.campaign import CampaignSpec
from repro.core.spec import ExperimentSpec
from repro.core.wayfinder import SearchResult, SpecializationSession, Wayfinder

__all__ = [
    "CampaignSpec",
    "ExperimentSpec",
    "Wayfinder",
    "SpecializationSession",
    "SearchResult",
]
