"""The Wayfinder facade: configure, search, and report in a few lines.

``Wayfinder`` wires together the configuration space of the target OS, the
simulated system under test, the metric, and a search algorithm, and runs the
specialization loop.  It is the API the examples and benchmarks use:

    >>> from repro import Wayfinder
    >>> wf = Wayfinder.for_linux(application="nginx", metric="throughput", seed=7)
    >>> result = wf.specialize(iterations=40)
    >>> result.improvement_factor >= 0.9
    True
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.apps.base import Application, BenchmarkTool
from repro.apps.registry import default_bench_tool_for, get_application
from repro.config.parameter import ParameterKind
from repro.config.space import Configuration, ConfigSpace
from repro.platform.history import ExplorationHistory
from repro.platform.metrics import (
    CompositeScoreMetric,
    LatencyMetric,
    MemoryFootprintMetric,
    Metric,
    ThroughputMetric,
    metric_for_application,
)
from repro.platform.executor import make_backend
from repro.platform.runner import SearchSession, SessionResult
from repro.search.base import SearchAlgorithm
from repro.search.registry import create_algorithm
from repro.vm.machine import PAPER_TESTBED, RISCV_EMBEDDED_BOARD, HardwareSpec
from repro.vm.os_model import OSModel, linux_os_model, unikraft_os_model
from repro.vm.simulator import SystemSimulator

_FAVOR_PRESETS = {
    "runtime": [ParameterKind.RUNTIME],
    "boot": [ParameterKind.BOOT_TIME],
    "compile": [ParameterKind.COMPILE_TIME],
    "runtime+boot": [ParameterKind.RUNTIME, ParameterKind.BOOT_TIME],
    None: None,
}


def _build_metric(metric: str, application: Application) -> Metric:
    if metric in ("throughput", "performance"):
        return ThroughputMetric(unit=application.unit)
    if metric == "latency":
        return LatencyMetric(unit=application.unit)
    if metric == "memory":
        return MemoryFootprintMetric()
    if metric == "score":
        return CompositeScoreMetric()
    if metric == "auto":
        return metric_for_application(application.name)
    raise ValueError("unknown metric {!r}".format(metric))


class SearchResult:
    """User-facing result of one specialization run."""

    def __init__(self, session_result: SessionResult, metric: Metric,
                 default_objective: Optional[float],
                 default_crashed: bool) -> None:
        self._session_result = session_result
        self.metric = metric
        self.default_objective = default_objective
        self.default_crashed = default_crashed

    # -- the configuration found -------------------------------------------------
    @property
    def best_configuration(self) -> Optional[Configuration]:
        return self._session_result.best_configuration

    @property
    def best_performance(self) -> Optional[float]:
        return self._session_result.best_objective

    @property
    def history(self) -> ExplorationHistory:
        return self._session_result.history

    @property
    def algorithm_name(self) -> str:
        return self._session_result.algorithm_name

    @property
    def iterations(self) -> int:
        return self._session_result.iterations

    @property
    def crash_rate(self) -> float:
        return self._session_result.crash_rate

    @property
    def time_to_best_s(self) -> Optional[float]:
        return self._session_result.time_to_best_s

    @property
    def total_time_s(self) -> float:
        return self.history.total_elapsed_s()

    @property
    def builds_skipped(self) -> int:
        return self._session_result.builds_skipped

    @property
    def improvement_factor(self) -> Optional[float]:
        """Best objective relative to the default configuration (>1 is better).

        For minimization metrics the ratio is inverted so that values above
        1.0 always mean "the found configuration is better than the default",
        matching the "Relative Perf." column of Table 2.
        """
        best = self.best_performance
        if best is None or self.default_objective in (None, 0.0):
            return None
        if self.metric.maximize:
            return best / self.default_objective
        return self.default_objective / best

    def summary(self) -> Dict[str, Any]:
        data = self._session_result.summary()
        data.update({
            "metric": self.metric.name,
            "default_objective": self.default_objective,
            "improvement_factor": self.improvement_factor,
        })
        return data

    def __repr__(self) -> str:
        return "SearchResult(best={!r}, improvement={!r}, crash_rate={:.2f})".format(
            self.best_performance, self.improvement_factor, self.crash_rate
        )


class SpecializationSession:
    """A fully wired specialization run: simulator, execution backend, algorithm."""

    def __init__(self, os_model: OSModel, application: Application,
                 bench_tool: BenchmarkTool, metric: Metric,
                 algorithm: SearchAlgorithm, hardware: HardwareSpec,
                 seed: int, enable_skip_build: bool = True,
                 workers: int = 1, batch_size: int = 1) -> None:
        self.os_model = os_model
        self.application = application
        self.bench_tool = bench_tool
        self.metric = metric
        self.algorithm = algorithm
        self.hardware = hardware
        self.seed = seed
        self.workers = workers
        self.batch_size = batch_size
        self.simulator = SystemSimulator(os_model, application, bench_tool,
                                         hardware=hardware, seed=seed)
        # workers=1 wires the historical single-pipeline serial backend;
        # workers>1 models a fleet of SUT machines sharing the simulator.
        self.backend = make_backend(self.simulator, metric, workers=workers,
                                    enable_skip_build=enable_skip_build)
        self.pipeline = getattr(self.backend, "pipeline",
                                None) or self.backend.pipelines[0]
        # The default configuration is always benchmarked first: it is the
        # incumbent every specialized configuration is compared against.
        self.session = SearchSession(algorithm=algorithm, metric=metric,
                                     evaluate_default_first=True,
                                     backend=self.backend,
                                     batch_size=batch_size)

    def evaluate_default(self) -> Dict[str, Any]:
        """Evaluate the default configuration outside the search history."""
        simulator = SystemSimulator(self.os_model, self.application, self.bench_tool,
                                    hardware=self.hardware, seed=self.seed + 9999)
        outcome = simulator.evaluate(self.os_model.default_configuration())
        return {
            "objective": self.metric.extract(outcome),
            "crashed": outcome.crashed,
            "memory_mb": outcome.memory_mb,
            "metric_value": outcome.metric_value,
        }

    def run(self, iterations: Optional[int] = None,
            time_budget_s: Optional[float] = None) -> SearchResult:
        default = self.evaluate_default()
        session_result = self.session.run(iterations=iterations,
                                          time_budget_s=time_budget_s)
        return SearchResult(session_result, self.metric,
                            default_objective=default["objective"],
                            default_crashed=default["crashed"])


class Wayfinder:
    """Facade constructing specialization sessions for the supported OSes."""

    def __init__(self, os_model: OSModel, application: Application,
                 bench_tool: BenchmarkTool, metric: Metric,
                 algorithm: str = "deeptune", seed: int = 0,
                 favor: Optional[str] = "runtime",
                 hardware: HardwareSpec = PAPER_TESTBED,
                 frozen: Optional[Dict[str, Any]] = None,
                 algorithm_options: Optional[Dict[str, Any]] = None,
                 enable_skip_build: bool = True,
                 workers: int = 1, batch_size: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.os_model = os_model
        self.application = application
        self.bench_tool = bench_tool
        self.metric = metric
        self.algorithm_name = algorithm
        self.seed = seed
        self.hardware = hardware
        self.enable_skip_build = enable_skip_build
        self.workers = workers
        self.batch_size = batch_size
        if favor not in _FAVOR_PRESETS:
            raise ValueError("unknown favor preset {!r}".format(favor))
        self.favored_kinds = _FAVOR_PRESETS[favor]
        for name, value in (frozen or {}).items():
            self.os_model.space.freeze(name, value)
        options = dict(algorithm_options or {})
        if algorithm in ("deeptune", "bayesian", "unicorn"):
            options.setdefault("maximize", metric.maximize)
        self.algorithm = create_algorithm(
            algorithm, self.os_model.space, seed=seed,
            favored_kinds=self.favored_kinds, **options)
        self._session: Optional[SpecializationSession] = None

    # -- constructors -----------------------------------------------------------------
    @classmethod
    def for_linux(cls, application: str = "nginx", metric: str = "auto",
                  version: str = "v4.19", seed: int = 0,
                  algorithm: str = "deeptune", favor: Optional[str] = "runtime",
                  architecture: str = "x86_64",
                  hardware: Optional[HardwareSpec] = None,
                  space_options: Optional[Dict[str, Any]] = None,
                  **kwargs) -> "Wayfinder":
        """Build a Wayfinder instance targeting the simulated Linux kernel."""
        app = get_application(application)
        bench = default_bench_tool_for(application)
        os_model = linux_os_model(version=version, seed=seed,
                                  architecture=architecture,
                                  **(space_options or {}))
        if hardware is None:
            hardware = RISCV_EMBEDDED_BOARD if architecture == "riscv64" else PAPER_TESTBED
        return cls(os_model, app, bench, _build_metric(metric, app),
                   algorithm=algorithm, seed=seed, favor=favor,
                   hardware=hardware, **kwargs)

    @classmethod
    def for_unikraft(cls, metric: str = "throughput", seed: int = 0,
                     algorithm: str = "deeptune", **kwargs) -> "Wayfinder":
        """Build a Wayfinder instance targeting the Unikraft+Nginx image (§4.4)."""
        app = get_application("unikraft-nginx")
        bench = default_bench_tool_for("unikraft-nginx")
        os_model = unikraft_os_model(seed=seed)
        kwargs.setdefault("favor", None)
        return cls(os_model, app, bench, _build_metric(metric, app),
                   algorithm=algorithm, seed=seed, **kwargs)

    # -- running -----------------------------------------------------------------------
    def build_session(self) -> SpecializationSession:
        """Wire up (or return the already wired) specialization session."""
        if self._session is None:
            self._session = SpecializationSession(
                self.os_model, self.application, self.bench_tool, self.metric,
                self.algorithm, self.hardware, self.seed,
                enable_skip_build=self.enable_skip_build,
                workers=self.workers, batch_size=self.batch_size,
            )
        return self._session

    def specialize(self, iterations: Optional[int] = None,
                   time_budget_s: Optional[float] = None) -> SearchResult:
        """Run the specialization search and return its result."""
        return self.build_session().run(iterations=iterations,
                                        time_budget_s=time_budget_s)

    @property
    def space(self) -> ConfigSpace:
        return self.os_model.space

    def trained_model(self):
        """The DeepTune model after a run (None for other algorithms)."""
        return getattr(self.algorithm, "model", None)

    def __repr__(self) -> str:
        return "Wayfinder(os={!r}, app={!r}, metric={!r}, algorithm={!r})".format(
            self.os_model.name, self.application.name, self.metric.name,
            self.algorithm_name,
        )
