"""The Wayfinder facade: configure, search, and report in a few lines.

``Wayfinder`` turns a declarative :class:`~repro.core.spec.ExperimentSpec`
into a fully wired specialization run: the configuration space of the target
OS, the simulated system under test, the metric, and a search algorithm.  The
keyword-argument constructors (:meth:`Wayfinder.for_linux`,
:meth:`Wayfinder.for_unikraft`) are thin builders producing a spec, exactly
like the CLI and :meth:`JobFile.to_spec` do — all front-ends meet at the same
spec object, so equivalent inputs construct identical experiments:

    >>> from repro import Wayfinder
    >>> wf = Wayfinder.for_linux(application="nginx", metric="throughput", seed=7)
    >>> result = wf.specialize(iterations=40)
    >>> result.improvement_factor >= 0.9
    True

Because the spec is serializable, runs are resumable: attach checkpointing
with :meth:`Wayfinder.enable_checkpointing` and continue an interrupted
sweep with :meth:`Wayfinder.resume` — the resumed session reproduces the
uninterrupted run trial for trial.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.similarity import DEFAULT_MIN_SIMILARITY, select_donor
from repro.apps.base import Application, BenchmarkTool
from repro.apps.registry import default_bench_tool_for, get_application
from repro.config.encoding import ConfigEncoder
from repro.config.space import Configuration, ConfigSpace
from repro.core.spec import FAVOR_PRESETS, ExperimentSpec
from repro.deeptune.importance import parameter_importance
from repro.deeptune.model import DeepTuneModel
from repro.deeptune.transfer import (ZooError, load_zoo_index, load_zoo_model,
                                     space_fingerprint, transfer_model,
                                     zoo_directory, zoo_entry_id)
from repro.platform.history import ExplorationHistory
from repro.platform.lifecycle import IncumbentPlateau, SessionObserver, StopCondition
from repro.platform.metrics import (
    CompositeScoreMetric,
    LatencyMetric,
    MemoryFootprintMetric,
    Metric,
    ThroughputMetric,
    metric_for_application,
)
from repro.platform.executor import make_backend
from repro.platform.results import (
    ResultsStore,
    SessionCheckpointer,
    load_checkpoint_file,
    restore_search_session,
)
from repro.platform.runner import SearchSession, SessionResult
from repro.search.registry import create_algorithm
from repro.vm.machine import PAPER_TESTBED, RISCV_EMBEDDED_BOARD, HardwareSpec
from repro.vm.os_model import OSModel, linux_os_model, unikraft_os_model
from repro.vm.simulator import SystemSimulator

#: kept as an alias for backwards compatibility; the presets now live with
#: the spec (the single place every front-end resolves them through).
_FAVOR_PRESETS = FAVOR_PRESETS


def _build_metric(metric: str, application: Application) -> Metric:
    if metric in ("throughput", "performance"):
        return ThroughputMetric(unit=application.unit)
    if metric == "latency":
        return LatencyMetric(unit=application.unit)
    if metric == "memory":
        return MemoryFootprintMetric()
    if metric == "score":
        return CompositeScoreMetric()
    if metric == "auto":
        return metric_for_application(application.name)
    raise ValueError("unknown metric {!r}".format(metric))


class SearchResult:
    """User-facing result of one specialization run."""

    def __init__(self, session_result: SessionResult, metric: Metric,
                 default_objective: Optional[float],
                 default_crashed: bool) -> None:
        self._session_result = session_result
        self.metric = metric
        self.default_objective = default_objective
        self.default_crashed = default_crashed

    # -- the configuration found -------------------------------------------------
    @property
    def best_configuration(self) -> Optional[Configuration]:
        return self._session_result.best_configuration

    @property
    def best_performance(self) -> Optional[float]:
        return self._session_result.best_objective

    @property
    def history(self) -> ExplorationHistory:
        return self._session_result.history

    @property
    def algorithm_name(self) -> str:
        return self._session_result.algorithm_name

    @property
    def iterations(self) -> int:
        return self._session_result.iterations

    @property
    def crash_rate(self) -> float:
        return self._session_result.crash_rate

    @property
    def time_to_best_s(self) -> Optional[float]:
        return self._session_result.time_to_best_s

    @property
    def total_time_s(self) -> float:
        return self.history.total_elapsed_s()

    @property
    def builds_skipped(self) -> int:
        return self._session_result.builds_skipped

    @property
    def stop_reason(self) -> Optional[str]:
        return self._session_result.stop_reason

    @property
    def improvement_factor(self) -> Optional[float]:
        """Best objective relative to the default configuration (>1 is better).

        For minimization metrics the ratio is inverted so that values above
        1.0 always mean "the found configuration is better than the default",
        matching the "Relative Perf." column of Table 2.
        """
        best = self.best_performance
        if best is None or self.default_objective in (None, 0.0):
            return None
        if self.metric.maximize:
            return best / self.default_objective
        return self.default_objective / best

    def summary(self) -> Dict[str, Any]:
        data = self._session_result.summary()
        data.update({
            "metric": self.metric.name,
            "default_objective": self.default_objective,
            "improvement_factor": self.improvement_factor,
        })
        return data

    def __repr__(self) -> str:
        return "SearchResult(best={!r}, improvement={!r}, crash_rate={:.2f})".format(
            self.best_performance, self.improvement_factor, self.crash_rate
        )


class SpecializationSession:
    """A fully wired specialization run: simulator, execution backend, algorithm.

    The declarative knobs (seed, worker fleet shape, batch size, skip-build)
    are read from the spec; the wired components are resolved by the owning
    :class:`Wayfinder` and passed in alongside it.
    """

    def __init__(self, spec: ExperimentSpec, os_model: OSModel,
                 application: Application, bench_tool: BenchmarkTool,
                 metric: Metric, algorithm, hardware: HardwareSpec) -> None:
        self.spec = spec
        self.os_model = os_model
        self.application = application
        self.bench_tool = bench_tool
        self.metric = metric
        self.algorithm = algorithm
        self.hardware = hardware
        self.simulator = SystemSimulator(os_model, application, bench_tool,
                                         hardware=hardware, seed=spec.seed)
        # workers=1 wires the historical single-pipeline serial backend;
        # workers>1 models a fleet of SUT machines sharing the simulator.
        self.backend = make_backend(self.simulator, metric, workers=spec.workers,
                                    enable_skip_build=spec.enable_skip_build)
        self.pipeline = getattr(self.backend, "pipeline",
                                None) or self.backend.pipelines[0]
        # The default configuration is always benchmarked first: it is the
        # incumbent every specialized configuration is compared against.
        self.session = SearchSession(algorithm=algorithm, metric=metric,
                                     evaluate_default_first=True,
                                     backend=self.backend,
                                     batch_size=spec.batch_size,
                                     favor=spec.favor,
                                     execution=spec.execution)

    def evaluate_default(self) -> Dict[str, Any]:
        """Evaluate the default configuration outside the search history."""
        simulator = SystemSimulator(self.os_model, self.application, self.bench_tool,
                                    hardware=self.hardware, seed=self.spec.seed + 9999)
        outcome = simulator.evaluate(self.os_model.default_configuration())
        return {
            "objective": self.metric.extract(outcome),
            "crashed": outcome.crashed,
            "memory_mb": outcome.memory_mb,
            "metric_value": outcome.metric_value,
        }

    def run(self, iterations: Optional[int] = None,
            time_budget_s: Optional[float] = None,
            stop: Optional[Sequence[StopCondition]] = None) -> SearchResult:
        default = self.evaluate_default()
        session_result = self.session.run(iterations=iterations,
                                          time_budget_s=time_budget_s,
                                          stop=stop)
        return SearchResult(session_result, self.metric,
                            default_objective=default["objective"],
                            default_crashed=default["crashed"])


class Wayfinder:
    """Facade turning an :class:`ExperimentSpec` into a specialization run."""

    def __init__(self, spec: ExperimentSpec,
                 hardware: Optional[HardwareSpec] = None) -> None:
        self.spec = spec
        if spec.os_name == "unikraft":
            self.os_model = unikraft_os_model(seed=spec.seed)
            default_hardware = PAPER_TESTBED
        else:
            self.os_model = linux_os_model(version=spec.os_version,
                                           seed=spec.seed,
                                           architecture=spec.architecture,
                                           **spec.space_options)
            default_hardware = (RISCV_EMBEDDED_BOARD
                                if spec.architecture == "riscv64" else PAPER_TESTBED)
        self.hardware = hardware if hardware is not None else default_hardware
        #: a hardware object the spec cannot re-derive makes the experiment
        #: non-reconstructible; checkpointing refuses rather than letting a
        #: resume silently wire different build/boot duration models.
        self._custom_hardware = self.hardware is not default_hardware
        self.application = get_application(spec.application)
        self.bench_tool = default_bench_tool_for(spec.application)
        self.metric = _build_metric(spec.metric, self.application)
        self.favored_kinds = spec.favored_kinds
        for name, value in spec.frozen.items():
            self.os_model.space.freeze(name, value)
        options = dict(spec.algorithm_options)
        if spec.algorithm in ("deeptune", "bayesian", "unicorn"):
            options.setdefault("maximize", self.metric.maximize)
        #: warm-start provenance (donor app, similarity) once a zoo donor is
        #: adopted; None for cold starts and non-DeepTune algorithms.
        self.warm_start: Optional[Dict[str, Any]] = None
        if (spec.algorithm == "deeptune" and spec.warm_start is not None
                and "model" not in options):
            resolved = self._resolve_warm_start()
            if resolved is not None:
                options["model"], self.warm_start = resolved
                # the paper's TL configuration: learned weights, empty
                # replay buffer, no random warmup — the donor model guides
                # proposals from iteration 0 (explicit algorithm_options
                # still win).
                options.setdefault("warmup_iterations", 0)
        self.algorithm = create_algorithm(
            spec.algorithm, self.os_model.space, seed=spec.seed,
            favored_kinds=self.favored_kinds, **options)
        if self.warm_start is not None:
            # ride the algorithm's export/import state so checkpoint/resume
            # reports the same donor the original run adopted.
            self.algorithm.provenance = dict(self.warm_start)
        self._session: Optional[SpecializationSession] = None

    # -- warm start --------------------------------------------------------------------
    def _resolve_warm_start(self) -> Optional[Tuple[DeepTuneModel,
                                                    Dict[str, Any]]]:
        """Resolve the spec's ``warm_start`` block to a donor model.

        Every failure path — missing/empty/corrupt zoo, no fingerprint-
        compatible entry, similarity below the threshold, unreadable donor
        model — returns ``None`` and the experiment cold-starts; warm start
        is an accelerator, never a new way for a run to fail.  Resolution
        is a deterministic function of the spec and the zoo bytes, so every
        resume and chaos replay adopts the same donor.
        """
        block = self.spec.warm_start
        zoo_dir = zoo_directory(block["zoo"])
        entries = list(load_zoo_index(zoo_dir).values())
        if not entries:
            return None
        encoder = ConfigEncoder(self.os_model.space)
        fingerprint = space_fingerprint(encoder)
        selection = select_donor(
            entries, self.spec.application, fingerprint,
            self._target_importance(encoder, entries, fingerprint),
            min_similarity=float(block.get("min_similarity",
                                           DEFAULT_MIN_SIMILARITY)),
            donor=block.get("donor"))
        if selection is None:
            return None
        entry, score = selection
        try:
            donor_model = load_zoo_model(zoo_dir, entry)
        except ZooError:
            return None
        if donor_model.input_dim != encoder.width:
            return None
        provenance = {
            "donor": entry.get("application"),
            "entry": entry.get("id"),
            "experiment": entry.get("experiment"),
            "similarity": round(float(score), 6),
            "observations": int(entry.get("observations", 0)),
        }
        return transfer_model(donor_model), provenance

    def _target_importance(self, encoder: ConfigEncoder, entries,
                           fingerprint: str) -> Dict[str, float]:
        """The target's Figure 5 reference vector for donor ranking.

        When the zoo already holds an entry for this application on this
        space, its stored importance vector is the reference.  Otherwise —
        the held-out-application case — a small seeded probe evaluates
        random configurations through the simulator (the paper's §3.3
        methodology) and scores importance on the measurements.  The probe
        uses its own sampler and simulator seeded from the spec, so the
        search session's RNG streams are untouched and the result is
        identical on every resume.
        """
        own_id = zoo_entry_id(self.spec.application, fingerprint)
        for entry in entries:
            if (entry.get("id") == own_id
                    and isinstance(entry.get("importance"), dict)):
                return {str(name): float(value)
                        for name, value in entry["importance"].items()}
        return self._probe_importance(encoder)

    def _probe_importance(self, encoder: ConfigEncoder,
                          n_probe: int = 16) -> Dict[str, float]:
        from repro.search.base import ConfigurationSampler

        probe_seed = self.spec.seed + 515151
        sampler = ConfigurationSampler(self.os_model.space, seed=probe_seed,
                                       favored_kinds=self.favored_kinds)
        simulator = SystemSimulator(self.os_model, self.application,
                                    self.bench_tool, hardware=self.hardware,
                                    seed=probe_seed)
        configurations = [sampler.sample() for _ in range(n_probe)]
        targets = np.empty(len(configurations))
        for index, configuration in enumerate(configurations):
            outcome = simulator.evaluate(configuration)
            objective = self.metric.extract(outcome)
            targets[index] = (np.nan if outcome.crashed or objective is None
                              else float(objective))
        return parameter_importance(
            encoder, encoder.encode_batch(configurations), targets)

    # -- spec passthroughs -------------------------------------------------------------
    @property
    def algorithm_name(self) -> str:
        return self.spec.algorithm

    @property
    def seed(self) -> int:
        return self.spec.seed

    @property
    def workers(self) -> int:
        return self.spec.workers

    @property
    def batch_size(self) -> int:
        return self.spec.batch_size

    @property
    def execution(self) -> str:
        return self.spec.execution

    @property
    def enable_skip_build(self) -> bool:
        return self.spec.enable_skip_build

    # -- constructors -----------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: ExperimentSpec,
                  hardware: Optional[HardwareSpec] = None) -> "Wayfinder":
        """Build a Wayfinder instance from a declarative experiment spec."""
        return cls(spec, hardware=hardware)

    @classmethod
    def for_linux(cls, application: str = "nginx", metric: str = "auto",
                  version: str = "v4.19", seed: int = 0,
                  algorithm: str = "deeptune", favor: Optional[str] = "runtime",
                  architecture: str = "x86_64",
                  hardware: Optional[HardwareSpec] = None,
                  space_options: Optional[Dict[str, Any]] = None,
                  **kwargs) -> "Wayfinder":
        """Build a Wayfinder instance targeting the simulated Linux kernel."""
        spec = ExperimentSpec(os_name="linux", application=application,
                              metric=metric, algorithm=algorithm, favor=favor,
                              seed=seed, os_version=version,
                              architecture=architecture,
                              space_options=space_options, **kwargs)
        return cls(spec, hardware=hardware)

    @classmethod
    def for_unikraft(cls, metric: str = "throughput", seed: int = 0,
                     algorithm: str = "deeptune", **kwargs) -> "Wayfinder":
        """Build a Wayfinder instance targeting the Unikraft+Nginx image (§4.4)."""
        kwargs.setdefault("favor", None)
        spec = ExperimentSpec(os_name="unikraft", metric=metric,
                              algorithm=algorithm, seed=seed, **kwargs)
        return cls(spec)

    @classmethod
    def resume(cls, path: str) -> "Wayfinder":
        """Rebuild an experiment from a checkpoint file and restore its state.

        The returned instance is primed to continue exactly where the
        checkpointed run stopped: calling :meth:`specialize` (the stored
        spec supplies the original budget) reproduces the uninterrupted run
        trial for trial — same proposals, same RNG consumption, same
        timestamps.

        .. warning::
            Checkpoints embed pickled state; loading one can execute
            arbitrary code, so only resume files written by a process you
            trust.
        """
        document = load_checkpoint_file(path)
        spec = ExperimentSpec.from_dict(document["spec"])
        wayfinder = cls.from_spec(spec)
        session = wayfinder.build_session()
        restore_search_session(document, session.session)
        return wayfinder

    # -- running -----------------------------------------------------------------------
    def build_session(self) -> SpecializationSession:
        """Wire up (or return the already wired) specialization session."""
        if self._session is None:
            self._session = SpecializationSession(
                self.spec, self.os_model, self.application, self.bench_tool,
                self.metric, self.algorithm, self.hardware,
            )
        return self._session

    def add_observer(self, observer: SessionObserver) -> SessionObserver:
        """Attach a lifecycle observer to the (lazily wired) search session."""
        return self.build_session().session.add_observer(observer)

    def enable_checkpointing(self, store, name: Optional[str] = None,
                             every: Optional[int] = None) -> SessionCheckpointer:
        """Persist resumable session state every *every* batches.

        *store* is a :class:`ResultsStore` or a directory path.  Returns the
        attached checkpointer; the checkpoint lives at
        ``store.checkpoint_path(name)`` and is consumed by :meth:`resume`.
        *every* defaults to the session's current cadence — 1 for fresh
        sessions, the original run's cadence for resumed ones.
        """
        if not isinstance(store, ResultsStore):
            store = ResultsStore(str(store))
        if self._custom_hardware:
            raise ValueError(
                "cannot checkpoint an experiment built with a custom hardware "
                "object: the spec cannot reconstruct it on resume (use the "
                "spec's architecture field instead)")
        session = self.build_session().session
        if every is not None:
            if every < 1:
                raise ValueError("checkpoint cadence must be at least 1 batch")
            session.checkpoint_every = every
        checkpointer = SessionCheckpointer(store, name or self.spec.name,
                                           self.spec, session)
        superseded = getattr(session, "checkpointer", None)
        if superseded is not None and hasattr(superseded, "close"):
            superseded.close()
        session.checkpointer = checkpointer
        return checkpointer

    def specialize(self, iterations: Optional[int] = None,
                   time_budget_s: Optional[float] = None,
                   stop: Optional[Sequence[StopCondition]] = None) -> SearchResult:
        """Run the specialization search and return its result.

        Budgets default to the spec's ``iterations`` / ``time_budget_s`` /
        ``plateau_trials`` when no explicit budget is given, so a spec-driven
        run (CLI, job file, resume) needs no arguments here.
        """
        stop = list(stop or [])
        if iterations is None and time_budget_s is None and not stop:
            iterations = self.spec.iterations
            time_budget_s = self.spec.time_budget_s
            if self.spec.plateau_trials is not None:
                stop.append(IncumbentPlateau(self.spec.plateau_trials))
        return self.build_session().run(iterations=iterations,
                                        time_budget_s=time_budget_s,
                                        stop=stop or None)

    @property
    def space(self) -> ConfigSpace:
        return self.os_model.space

    def trained_model(self):
        """The DeepTune model after a run (None for other algorithms)."""
        return getattr(self.algorithm, "model", None)

    def __repr__(self) -> str:
        return "Wayfinder(os={!r}, app={!r}, metric={!r}, algorithm={!r})".format(
            self.os_model.name, self.application.name, self.metric.name,
            self.algorithm_name,
        )
