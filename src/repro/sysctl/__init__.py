"""Runtime and boot-time parameter inventory of the simulated Linux kernel.

``procfs`` models the writable files under ``/proc/sys`` and ``/sys`` exposed
by a booted kernel; ``bootparams`` models the kernel command-line parameters;
``probe`` implements the space-inference heuristic of §3.4 that discovers
parameter types and value ranges automatically by probing a booted VM.
"""

from repro.sysctl.bootparams import BOOT_PARAMETERS, boot_parameters
from repro.sysctl.procfs import (
    SYSCTL_CATALOG,
    ProcFS,
    SysctlEntry,
    runtime_parameters,
)
from repro.sysctl.probe import ProbedParameter, SpaceProber

__all__ = [
    "SysctlEntry",
    "SYSCTL_CATALOG",
    "ProcFS",
    "runtime_parameters",
    "BOOT_PARAMETERS",
    "boot_parameters",
    "SpaceProber",
    "ProbedParameter",
]
