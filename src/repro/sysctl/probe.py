"""Automatic runtime configuration-space inference (§3.4 of the paper).

The heuristic works against a booted VM's /proc/sys and /sys tree:

1. list all writable pseudo-files — each is a candidate runtime parameter;
2. read each file and treat the value as the parameter's default;
3. infer the type from the default: 0/1 defaults are treated as booleans,
   other numbers as arbitrary integers, and non-numeric values as strings
   (explored only over the observed value, per the paper);
4. estimate a valid range by repeatedly scaling the default up and down by a
   factor of 10 and attempting the write; values that the kernel accepts
   without crashing are considered in range.

The output is a list of :class:`ProbedParameter` records, convertible into
search-space :class:`repro.config.Parameter` objects.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.parameter import (
    BoolParameter,
    IntParameter,
    Parameter,
    ParameterKind,
    StringParameter,
)
from repro.sysctl.procfs import ProcFS


class ProbedParameter:
    """The result of probing a single writable pseudo-file."""

    def __init__(
        self,
        path: str,
        inferred_type: str,
        default: object,
        minimum: Optional[int] = None,
        maximum: Optional[int] = None,
    ) -> None:
        self.path = path
        self.inferred_type = inferred_type
        self.default = default
        self.minimum = minimum
        self.maximum = maximum

    def to_parameter(self) -> Parameter:
        """Convert the probe record into a search-space parameter."""
        if self.inferred_type == "bool":
            return BoolParameter(self.path, ParameterKind.RUNTIME, default=bool(self.default))
        if self.inferred_type == "int":
            minimum = self.minimum if self.minimum is not None else 0
            maximum = self.maximum if self.maximum is not None else max(1, int(self.default) * 10)
            if maximum <= minimum:
                maximum = minimum + 1
            default = min(max(int(self.default), minimum), maximum)
            log_scale = maximum - minimum > 1000 and minimum >= 0
            return IntParameter(self.path, ParameterKind.RUNTIME, default=default,
                                minimum=minimum, maximum=maximum, log_scale=log_scale)
        # Strings are only explored over the value observed on the live system.
        return StringParameter(self.path, ParameterKind.RUNTIME,
                               choices=(str(self.default),), default=str(self.default))

    def __repr__(self) -> str:
        return "ProbedParameter({!r}, type={}, default={!r}, range=[{}, {}])".format(
            self.path, self.inferred_type, self.default, self.minimum, self.maximum
        )


class SpaceProber:
    """Infers the runtime configuration space by probing a booted kernel."""

    def __init__(self, scale_factor: int = 10, scale_rounds: int = 4) -> None:
        if scale_factor < 2:
            raise ValueError("scale_factor must be at least 2")
        self.scale_factor = scale_factor
        self.scale_rounds = scale_rounds

    # -- type inference -------------------------------------------------------
    @staticmethod
    def _parse_default(text: str):
        text = text.strip()
        try:
            return int(text)
        except ValueError:
            return text

    def _infer_type(self, default) -> str:
        if isinstance(default, int):
            return "bool" if default in (0, 1) else "int"
        return "string"

    # -- range inference --------------------------------------------------------
    def _probe_range(self, procfs: ProcFS, path: str, default: int) -> (int, int):
        """Scale the default up/down by the factor and keep accepted values."""
        accepted_low = default
        accepted_high = default
        # Upward probes.
        value = default if default > 0 else 1
        for _ in range(self.scale_rounds):
            value *= self.scale_factor
            if procfs.crashed:
                break
            if procfs.write(path, value):
                accepted_high = value
            else:
                break
        # Downward probes.
        value = default
        for _ in range(self.scale_rounds):
            value //= self.scale_factor
            if procfs.crashed:
                break
            if procfs.write(path, value):
                accepted_low = value
            else:
                break
            if value == 0:
                break
        # Restore the original default so probing one knob does not leak into
        # the measurements of the next.
        if not procfs.crashed:
            procfs.write(path, default)
        return accepted_low, accepted_high

    # -- main entry point -----------------------------------------------------------
    def probe(self, procfs: ProcFS) -> List[ProbedParameter]:
        """Probe every writable pseudo-file of *procfs*.

        Whenever a probing write destabilises the kernel, the VM is rebooted
        (values reset to their defaults) and probing continues with the next
        parameter — the same recovery loop the paper's heuristic relies on.
        """
        results: List[ProbedParameter] = []
        for path in procfs.list_writable():
            if procfs.crashed:
                procfs.reboot()
            default = self._parse_default(procfs.read(path))
            inferred = self._infer_type(default)
            if inferred == "int":
                low, high = self._probe_range(procfs, path, int(default))
                results.append(ProbedParameter(path, "int", default, low, high))
            elif inferred == "bool":
                results.append(ProbedParameter(path, "bool", bool(default), 0, 1))
            else:
                results.append(ProbedParameter(path, "string", default))
        if procfs.crashed:
            procfs.reboot()
        return results

    def probe_parameters(self, procfs: ProcFS) -> List[Parameter]:
        """Probe and convert directly to search-space parameters."""
        return [record.to_parameter() for record in self.probe(procfs)]
