"""Simulated /proc/sys and /sys runtime parameter tree.

The catalog below lists the runtime sysctls exposed by the simulated kernel.
Each entry carries a default value, a valid range and a set of *roles* that
the application performance models in :mod:`repro.apps` consume: a role names
the behavioural axis the knob influences (socket accept backlog, receive
buffer sizing, dirty page writeback, scheduler granularity, logging overhead,
...).  The catalog deliberately includes the parameters the paper reports as
high-impact for Nginx — ``net.core.somaxconn``, ``net.core.rmem_default``,
``net.ipv4.tcp_keepalive_time``, ``vm.stat_interval`` — as well as the
negative-impact ones (``kernel.printk``, ``kernel.printk_delay``,
``vm.block_dump``), plus a long tail of mostly-neutral knobs so the search
still has to find the needles in the haystack.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    IntParameter,
    Parameter,
    ParameterKind,
)


class SysctlEntry:
    """One writable file under /proc/sys or /sys."""

    def __init__(
        self,
        path: str,
        default: Any,
        minimum: Optional[int] = None,
        maximum: Optional[int] = None,
        choices: Optional[Sequence[str]] = None,
        log_scale: bool = False,
        roles: Sequence[str] = (),
        fragile: bool = False,
        writable: bool = True,
        description: str = "",
    ) -> None:
        self.path = path
        self.default = default
        self.minimum = minimum
        self.maximum = maximum
        self.choices = tuple(choices) if choices else None
        self.log_scale = log_scale
        self.roles = tuple(roles)
        self.fragile = fragile
        self.writable = writable
        self.description = description

    @property
    def is_boolean(self) -> bool:
        return self.choices is None and self.minimum == 0 and self.maximum == 1

    @property
    def is_categorical(self) -> bool:
        return self.choices is not None

    def to_parameter(self) -> Parameter:
        """Convert this catalog entry to a search-space parameter."""
        if self.is_categorical:
            return CategoricalParameter(
                self.path,
                ParameterKind.RUNTIME,
                choices=self.choices,
                default=self.default,
                description=self.description,
            )
        if self.is_boolean:
            return BoolParameter(
                self.path,
                ParameterKind.RUNTIME,
                default=bool(self.default),
                description=self.description,
            )
        return IntParameter(
            self.path,
            ParameterKind.RUNTIME,
            default=int(self.default),
            minimum=int(self.minimum if self.minimum is not None else 0),
            maximum=int(self.maximum if self.maximum is not None else max(1, int(self.default) * 100)),
            log_scale=self.log_scale,
            description=self.description,
        )

    def __repr__(self) -> str:
        return "SysctlEntry({!r}, default={!r})".format(self.path, self.default)


def _entry(path, default, minimum=None, maximum=None, **kwargs) -> SysctlEntry:
    return SysctlEntry(path, default, minimum, maximum, **kwargs)


#: The named, behaviour-bearing part of the runtime catalog.
SYSCTL_CATALOG: Tuple[SysctlEntry, ...] = (
    # -- networking: core -----------------------------------------------------
    _entry("net.core.somaxconn", 128, 16, 65535, log_scale=True,
           roles=("accept_backlog",), description="max queued connections per listen socket"),
    _entry("net.core.netdev_max_backlog", 1000, 16, 500000, log_scale=True,
           roles=("rx_backlog",)),
    _entry("net.core.rmem_default", 212992, 4096, 67108864, log_scale=True,
           roles=("rcv_buffer",), description="default socket receive buffer size"),
    _entry("net.core.wmem_default", 212992, 4096, 67108864, log_scale=True,
           roles=("snd_buffer",)),
    _entry("net.core.rmem_max", 212992, 4096, 134217728, log_scale=True,
           roles=("rcv_buffer_max",)),
    _entry("net.core.wmem_max", 212992, 4096, 134217728, log_scale=True,
           roles=("snd_buffer_max",)),
    _entry("net.core.busy_poll", 0, 0, 200, roles=("busy_poll",)),
    _entry("net.core.busy_read", 0, 0, 200, roles=("busy_poll",)),
    _entry("net.core.default_qdisc", "pfifo_fast",
           choices=("pfifo_fast", "fq", "fq_codel", "cake"), roles=("qdisc",)),
    # -- networking: TCP/IP ---------------------------------------------------
    _entry("net.ipv4.tcp_max_syn_backlog", 512, 16, 262144, log_scale=True,
           roles=("syn_backlog",)),
    _entry("net.ipv4.tcp_keepalive_time", 7200, 60, 32767, log_scale=True,
           roles=("keepalive",), description="TCP keepalive time in seconds"),
    _entry("net.ipv4.tcp_keepalive_intvl", 75, 1, 32767, log_scale=True,
           roles=("keepalive",)),
    _entry("net.ipv4.tcp_fin_timeout", 60, 1, 600, roles=("fin_timeout",)),
    _entry("net.ipv4.tcp_tw_reuse", 0, 0, 1, roles=("tw_reuse",)),
    _entry("net.ipv4.tcp_slow_start_after_idle", 1, 0, 1, roles=("slow_start_idle",)),
    _entry("net.ipv4.tcp_no_metrics_save", 0, 0, 1, roles=()),
    _entry("net.ipv4.tcp_sack", 1, 0, 1, roles=("tcp_features",)),
    _entry("net.ipv4.tcp_window_scaling", 1, 0, 1, roles=("tcp_features",)),
    _entry("net.ipv4.tcp_timestamps", 1, 0, 1, roles=("tcp_features",)),
    _entry("net.ipv4.tcp_syncookies", 1, 0, 1, roles=()),
    _entry("net.ipv4.tcp_congestion_control", "cubic",
           choices=("cubic", "reno", "bbr", "htcp"), roles=("congestion",)),
    _entry("net.ipv4.tcp_fastopen", 1, 0, 3, roles=("fastopen",)),
    _entry("net.ipv4.tcp_autocorking", 1, 0, 1, roles=("autocorking",)),
    _entry("net.ipv4.tcp_low_latency", 0, 0, 1, roles=("tcp_low_latency",)),
    _entry("net.ipv4.ip_local_port_range_min", 32768, 1024, 60999,
           roles=("port_range",)),
    _entry("net.ipv4.udp_mem_pressure", 170583, 4096, 4194304, log_scale=True, roles=()),
    # -- virtual memory ---------------------------------------------------------
    _entry("vm.swappiness", 60, 0, 200, roles=("swappiness",)),
    _entry("vm.dirty_ratio", 20, 1, 100, roles=("dirty_pages",)),
    _entry("vm.dirty_background_ratio", 10, 0, 100, roles=("dirty_pages",)),
    _entry("vm.dirty_expire_centisecs", 3000, 100, 360000, log_scale=True,
           roles=("writeback",)),
    _entry("vm.dirty_writeback_centisecs", 500, 0, 360000, log_scale=True,
           roles=("writeback",)),
    _entry("vm.stat_interval", 1, 1, 600, roles=("stat_interval",),
           description="interval at which vm statistics are refreshed"),
    _entry("vm.overcommit_memory", 0, 0, 2, roles=("overcommit",), fragile=True),
    _entry("vm.overcommit_ratio", 50, 0, 100, roles=("overcommit",)),
    _entry("vm.min_free_kbytes", 67584, 1024, 4194304, log_scale=True,
           roles=("min_free",), fragile=True),
    _entry("vm.vfs_cache_pressure", 100, 1, 1000, roles=("vfs_cache",)),
    _entry("vm.zone_reclaim_mode", 0, 0, 7, roles=("zone_reclaim",)),
    _entry("vm.nr_hugepages", 0, 0, 16384, log_scale=True, roles=("hugepages",),
           fragile=True),
    _entry("vm.compaction_proactiveness", 20, 0, 100, roles=()),
    _entry("vm.page-cluster", 3, 0, 10, roles=("page_cluster",)),
    _entry("vm.block_dump", 0, 0, 1, roles=("debug_logging",),
           description="enable block I/O debugging"),
    _entry("vm.laptop_mode", 0, 0, 60, roles=()),
    # -- scheduler ---------------------------------------------------------------
    _entry("kernel.sched_min_granularity_ns", 3000000, 100000, 1000000000,
           log_scale=True, roles=("sched_granularity",)),
    _entry("kernel.sched_wakeup_granularity_ns", 4000000, 0, 1000000000,
           log_scale=True, roles=("sched_granularity",)),
    _entry("kernel.sched_migration_cost_ns", 500000, 0, 100000000,
           log_scale=True, roles=("sched_migration",)),
    _entry("kernel.sched_latency_ns", 24000000, 100000, 1000000000,
           log_scale=True, roles=("sched_latency",)),
    _entry("kernel.sched_autogroup_enabled", 1, 0, 1, roles=("autogroup",)),
    _entry("kernel.sched_rt_runtime_us", 950000, -1, 1000000, roles=()),
    _entry("kernel.numa_balancing", 1, 0, 1, roles=("numa_balancing",)),
    _entry("kernel.timer_migration", 1, 0, 1, roles=()),
    # -- logging / debugging ------------------------------------------------------
    _entry("kernel.printk", 7, 0, 8, roles=("debug_logging",),
           description="console log level"),
    _entry("kernel.printk_delay", 0, 0, 10000, log_scale=True,
           roles=("debug_logging",), description="delay in ms after each printk"),
    _entry("kernel.printk_ratelimit", 5, 0, 1000, roles=()),
    _entry("kernel.hung_task_timeout_secs", 120, 0, 3600, roles=()),
    _entry("kernel.watchdog", 1, 0, 1, roles=("watchdog",)),
    _entry("kernel.nmi_watchdog", 1, 0, 1, roles=("watchdog",)),
    _entry("kernel.soft_watchdog", 1, 0, 1, roles=()),
    _entry("kernel.panic", 0, 0, 300, roles=()),
    _entry("kernel.panic_on_oops", 0, 0, 1, roles=(), fragile=True),
    # -- filesystem / io -----------------------------------------------------------
    _entry("fs.file-max", 811896, 1024, 10000000, log_scale=True, roles=("file_max",),
           fragile=True),
    _entry("fs.nr_open", 1048576, 1024, 10000000, log_scale=True, roles=("file_max",)),
    _entry("fs.aio-max-nr", 65536, 1024, 4194304, log_scale=True, roles=("aio",)),
    _entry("fs.inotify.max_user_watches", 8192, 64, 1048576, log_scale=True, roles=()),
    _entry("fs.pipe-max-size", 1048576, 4096, 33554432, log_scale=True, roles=("pipe",)),
    # -- security (candidates for freezing, §3.5) ------------------------------------
    _entry("kernel.randomize_va_space", 2, 0, 2, roles=("aslr",),
           description="address space layout randomization"),
    _entry("kernel.kptr_restrict", 0, 0, 2, roles=()),
    _entry("kernel.dmesg_restrict", 0, 0, 1, roles=()),
    _entry("kernel.perf_event_paranoid", 2, -1, 4, roles=()),
    # -- block layer (/sys) -------------------------------------------------------------
    _entry("sys.block.vda.queue.scheduler", "mq-deadline",
           choices=("none", "mq-deadline", "kyber", "bfq"), roles=("io_scheduler",)),
    _entry("sys.block.vda.queue.read_ahead_kb", 128, 0, 16384, log_scale=True,
           roles=("read_ahead",)),
    _entry("sys.block.vda.queue.nr_requests", 256, 4, 4096, log_scale=True,
           roles=("io_queue_depth",)),
    _entry("sys.block.vda.queue.rq_affinity", 1, 0, 2, roles=("io_affinity",)),
    _entry("sys.block.vda.queue.nomerges", 0, 0, 2, roles=("io_merges",)),
    _entry("sys.block.vda.queue.wbt_lat_usec", 75000, 0, 1000000, log_scale=True,
           roles=("writeback_throttle",)),
    _entry("sys.kernel.mm.transparent_hugepage.enabled", "madvise",
           choices=("always", "madvise", "never"), roles=("thp",)),
    _entry("sys.kernel.mm.transparent_hugepage.defrag", "madvise",
           choices=("always", "defer", "madvise", "never"), roles=("thp_defrag",)),
)


def _generic_entries(count: int, seed: int = 7) -> List[SysctlEntry]:
    """Generate a long tail of neutral runtime knobs (no behavioural roles)."""
    rng = random.Random(seed)
    groups = ("net.ipv4", "net.core", "vm", "kernel", "fs", "dev.raid", "net.netfilter")
    entries = []
    for index in range(count):
        group = rng.choice(groups)
        path = "{}.tunable_{:04d}".format(group, index)
        kind = rng.random()
        if kind < 0.45:
            entries.append(_entry(path, rng.choice([0, 1]), 0, 1))
        else:
            magnitude = rng.choice([16, 128, 1024, 8192, 65536, 1 << 20])
            entries.append(
                _entry(path, magnitude, 0, magnitude * 64, log_scale=True)
            )
    return entries


def runtime_parameters(extra_generic: int = 80, seed: int = 7) -> List[Parameter]:
    """Return the runtime parameter list used by the experiment spaces."""
    entries = list(SYSCTL_CATALOG) + _generic_entries(extra_generic, seed)
    return [entry.to_parameter() for entry in entries]


class ProcFS:
    """A simulated /proc/sys and /sys file tree exposed by a booted kernel.

    Only the small surface used by the space-probing heuristic and the
    platform is modelled: listing writable files, reading a value, and
    writing a value (which may be rejected or may crash the VM for fragile
    parameters pushed far outside their valid range).
    """

    def __init__(self, entries: Optional[Iterable[SysctlEntry]] = None,
                 extra_generic: int = 80, seed: int = 7) -> None:
        if entries is None:
            entries = list(SYSCTL_CATALOG) + _generic_entries(extra_generic, seed)
        self._entries: Dict[str, SysctlEntry] = {entry.path: entry for entry in entries}
        self._values: Dict[str, Any] = {
            entry.path: entry.default for entry in self._entries.values()
        }
        self._crashed = False

    # -- inspection --------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """True when a previous write destabilised the simulated kernel."""
        return self._crashed

    def list_writable(self) -> List[str]:
        """Return the paths of all writable pseudo-files, sorted."""
        return sorted(path for path, entry in self._entries.items() if entry.writable)

    def entry(self, path: str) -> SysctlEntry:
        return self._entries[path]

    def read(self, path: str) -> str:
        """Read a pseudo-file; values are returned as strings, like the real procfs."""
        if path not in self._values:
            raise FileNotFoundError(path)
        return str(self._values[path])

    # -- mutation -----------------------------------------------------------------
    def write(self, path: str, value: Any) -> bool:
        """Attempt to write *value*; return True on success.

        Returns False when the kernel rejects the value (EINVAL).  Writing a
        wildly out-of-range value to a *fragile* parameter marks the VM as
        crashed, mimicking e.g. setting ``vm.min_free_kbytes`` to most of RAM.
        """
        if self._crashed:
            raise RuntimeError("cannot write to a crashed VM")
        if path not in self._entries:
            raise FileNotFoundError(path)
        entry = self._entries[path]
        if not entry.writable:
            return False
        if entry.is_categorical:
            if str(value) not in entry.choices:
                return False
            self._values[path] = str(value)
            return True
        try:
            numeric = int(value)
        except (TypeError, ValueError):
            return False
        minimum = entry.minimum if entry.minimum is not None else numeric
        maximum = entry.maximum if entry.maximum is not None else numeric
        if numeric < minimum or numeric > maximum:
            if entry.fragile and maximum and numeric > maximum * 8:
                self._crashed = True
            return False
        self._values[path] = numeric
        return True

    def reboot(self) -> None:
        """Reset every value to its default and clear the crashed flag.

        The space-probing heuristic (§3.4) reboots the probe VM whenever a
        write destabilises it and then continues with the next parameter.
        """
        self._values = {entry.path: entry.default for entry in self._entries.values()}
        self._crashed = False

    def snapshot(self) -> Dict[str, Any]:
        """Return a copy of the current values (used by tests)."""
        return dict(self._values)
