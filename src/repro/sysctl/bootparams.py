"""Kernel command-line (boot-time) parameters of the simulated kernel.

These correspond to the 231 boot-time options counted in Table 1 of the
paper.  We model the well-known performance- and security-relevant ones by
name, plus a generated tail of neutral options so the boot-time space has a
realistic size relative to the runtime space in the experiment spaces.
"""

from __future__ import annotations

import random
from typing import List

from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    IntParameter,
    Parameter,
    ParameterKind,
)


def _named_boot_parameters() -> List[Parameter]:
    kind = ParameterKind.BOOT_TIME
    return [
        CategoricalParameter("boot.mitigations", kind,
                             choices=("auto", "auto,nosmt", "off"), default="auto",
                             description="CPU vulnerability mitigations"),
        CategoricalParameter("boot.pti", kind, choices=("auto", "on", "off"),
                             default="auto", description="page table isolation"),
        CategoricalParameter("boot.spectre_v2", kind,
                             choices=("auto", "on", "off", "retpoline"), default="auto"),
        CategoricalParameter("boot.preempt", kind,
                             choices=("none", "voluntary", "full"), default="voluntary"),
        CategoricalParameter("boot.transparent_hugepage", kind,
                             choices=("always", "madvise", "never"), default="madvise"),
        CategoricalParameter("boot.elevator", kind,
                             choices=("none", "mq-deadline", "kyber", "bfq"),
                             default="mq-deadline"),
        CategoricalParameter("boot.nohz", kind, choices=("on", "off"), default="on"),
        CategoricalParameter("boot.idle", kind, choices=("default", "poll", "halt"),
                             default="default"),
        CategoricalParameter("boot.isolcpus", kind,
                             choices=("", "0-1", "0-3"), default="0-1",
                             description="CPUs isolated from the scheduler"),
        BoolParameter("boot.nosmt", kind, default=True,
                      description="disable simultaneous multithreading"),
        BoolParameter("boot.quiet", kind, default=True),
        BoolParameter("boot.audit", kind, default=False),
        BoolParameter("boot.selinux", kind, default=False),
        BoolParameter("boot.init_on_alloc", kind, default=True),
        BoolParameter("boot.init_on_free", kind, default=False),
        BoolParameter("boot.threadirqs", kind, default=False),
        BoolParameter("boot.skew_tick", kind, default=False),
        BoolParameter("boot.nowatchdog", kind, default=False),
        BoolParameter("boot.tsc_reliable", kind, default=False),
        IntParameter("boot.loglevel", kind, default=4, minimum=0, maximum=8,
                     description="console log level at boot"),
        IntParameter("boot.maxcpus", kind, default=16, minimum=1, maximum=48),
        IntParameter("boot.hugepages", kind, default=0, minimum=0, maximum=8192,
                     log_scale=True),
        IntParameter("boot.log_buf_len_kb", kind, default=512, minimum=64,
                     maximum=16384, log_scale=True),
        IntParameter("boot.swiotlb_slots", kind, default=32768, minimum=1024,
                     maximum=1048576, log_scale=True),
    ]


def _generic_boot_parameters(count: int, seed: int = 13) -> List[Parameter]:
    rng = random.Random(seed)
    kind = ParameterKind.BOOT_TIME
    parameters: List[Parameter] = []
    for index in range(count):
        if rng.random() < 0.6:
            parameters.append(
                BoolParameter("boot.extra_flag_{:03d}".format(index), kind,
                              default=bool(rng.getrandbits(1)))
            )
        else:
            magnitude = rng.choice([8, 64, 512, 4096, 65536])
            parameters.append(
                IntParameter("boot.extra_knob_{:03d}".format(index), kind,
                             default=magnitude, minimum=0, maximum=magnitude * 32,
                             log_scale=True)
            )
    return parameters


#: The named boot parameters (always present in experiment spaces).
BOOT_PARAMETERS: List[Parameter] = _named_boot_parameters()


def boot_parameters(extra_generic: int = 12, seed: int = 13) -> List[Parameter]:
    """Return boot parameters: the named set plus *extra_generic* filler knobs."""
    return _named_boot_parameters() + _generic_boot_parameters(extra_generic, seed)
