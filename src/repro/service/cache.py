"""Manifest-fingerprint-keyed caching of campaign report documents.

Building a campaign report streams every completed experiment's numeric
columns — cheap, but still O(total trials) — while the service may serve
``GET /v1/jobs/{id}/report`` for the same unchanged campaign hundreds of
times (dashboards poll).  The campaign manifest is the perfect cache key:
every fact a report depends on flows through it.  Completed experiments'
history documents are immutable once written, and an experiment only
*becomes* completed by a manifest update (status + summary), so the report
is a pure function of the manifest bytes.  Hashing those bytes is
O(manifest) — kilobytes of per-experiment entries, independent of trial
count — which makes a repeat report effectively O(1).

The cache is bounded LRU and thread-safe; the tuning service's pool
workers mutate manifests while API threads read reports concurrently, and
a racy read simply rebuilds against whichever manifest version it saw —
the same answer an uncached request would have produced.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Tuple


class ReportCache:
    """Bounded LRU of report documents keyed by campaign-manifest digest."""

    def __init__(self, capacity: int = 32) -> None:
        self._capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[str, Dict[str, Any]]]" = \
            OrderedDict()
        #: observability counters (read under no lock; approximate is fine).
        self.hits = 0
        self.misses = 0

    @staticmethod
    def fingerprint(manifest_path: str) -> str:
        """Content digest of the manifest — the report's full dependency set."""
        with open(manifest_path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()

    def get(self, directory: str, manifest_path: str,
            build: Callable[[], Dict[str, Any]]) -> Dict[str, Any]:
        """The cached report for *directory*, rebuilt via *build* when stale.

        The returned document is shared across callers — treat it as
        read-only (the HTTP layer only serializes it).
        """
        key = os.path.abspath(directory)
        fingerprint = self.fingerprint(manifest_path)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == fingerprint:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[1]
        document = build()
        with self._lock:
            self.misses += 1
            self._entries[key] = (fingerprint, document)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
        return document
