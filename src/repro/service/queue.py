"""Per-tenant FIFO job scheduling with a bounded worker pool.

The service multiplexes many tenants onto one host, so raw global FIFO
would let one tenant's burst starve everyone else.  The queue instead
keeps one FIFO per tenant and hands out jobs round-robin across tenants
with pending work: within a tenant, submission order is strict; across
tenants, service is fair.  A fixed pool of worker threads pulls from the
queue — the pool bound is the host's admission control, not per-job
parallelism (each job runs the campaign fabric's inline worker loop).

The queue holds no durable state.  Jobs are made durable by their campaign
manifests at submission time; on restart the service rescans the results
root and re-enqueues whatever is unfinished (see ``TuningService``), so
losing the in-memory queue loses nothing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional, Tuple


class JobQueue:
    """Round-robin-across-tenants, FIFO-within-tenant job dispatcher.

    ``execute`` is called from pool threads with ``(tenant, job_id)``.
    Exceptions it raises are caught and remembered per job so one bad job
    cannot take a worker thread down.
    """

    def __init__(self, execute: Callable[[str, str], None],
                 workers: int = 2) -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least 1 worker")
        self._execute = execute
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        # OrderedDict preserves tenant arrival order for the round-robin scan.
        self._pending: "OrderedDict[str, Deque[str]]" = OrderedDict()
        self._next_tenants: Deque[str] = deque()
        self._active: Dict[str, str] = {}      # job_id -> tenant
        self._errors: Dict[str, str] = {}      # job_id -> last error text
        self._stopping = False
        self._threads: List[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(target=self._worker, daemon=True,
                                      name="job-worker-{}".format(index))
            thread.start()
            self._threads.append(thread)

    # -- submission ---------------------------------------------------------
    def enqueue(self, tenant: str, job_id: str) -> None:
        with self._work_ready:
            if self._stopping:
                raise RuntimeError("queue is shutting down")
            if tenant not in self._pending:
                self._pending[tenant] = deque()
                self._next_tenants.append(tenant)
            self._pending[tenant].append(job_id)
            self._work_ready.notify()

    # -- introspection ------------------------------------------------------
    def position(self, job_id: str) -> Optional[int]:
        """0-based position of *job_id* within its tenant's FIFO, if queued."""
        with self._lock:
            for jobs in self._pending.values():
                for index, queued in enumerate(jobs):
                    if queued == job_id:
                        return index
        return None

    def is_active(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._active

    def last_error(self, job_id: str) -> Optional[str]:
        with self._lock:
            return self._errors.get(job_id)

    def snapshot(self) -> Dict[str, List[str]]:
        """Pending job ids per tenant (for the service's status endpoint)."""
        with self._lock:
            return {tenant: list(jobs)
                    for tenant, jobs in self._pending.items() if jobs}

    # -- worker side --------------------------------------------------------
    def _take(self) -> Optional[Tuple[str, str]]:
        """Block until a job is available (or shutdown); claim and return it."""
        with self._work_ready:
            while True:
                if self._stopping:
                    return None
                # Rotate through tenants so each non-empty FIFO gets a turn.
                for _ in range(len(self._next_tenants)):
                    tenant = self._next_tenants[0]
                    self._next_tenants.rotate(-1)
                    jobs = self._pending.get(tenant)
                    if jobs:
                        job_id = jobs.popleft()
                        if not jobs:
                            del self._pending[tenant]
                            self._next_tenants.remove(tenant)
                        self._active[job_id] = tenant
                        return tenant, job_id
                self._work_ready.wait()

    def _worker(self) -> None:
        while True:
            claimed = self._take()
            if claimed is None:
                return
            tenant, job_id = claimed
            try:
                self._execute(tenant, job_id)
            except Exception as error:  # noqa: BLE001 - worker must survive
                with self._lock:
                    self._errors[job_id] = "{}: {}".format(
                        type(error).__name__, error)
            finally:
                with self._lock:
                    self._active.pop(job_id, None)

    def shutdown(self, timeout_s: float = 5.0) -> None:
        """Stop dispatching and join the pool; queued jobs stay on disk."""
        with self._work_ready:
            self._stopping = True
            self._work_ready.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout_s)
