"""Tuning-as-a-service control plane over the campaign fabric.

The engine below this package is a complete single-host system — flat-cost
inner loop, async execution, bit-exact checkpoint/resume, a lease-governed
campaign fabric — but reachable only through the CLI.  This package wraps it
in a long-running HTTP/JSON service (stdlib ``http.server`` only, no new
dependencies): spec payloads are submitted over ``POST /v1/experiments`` and
``POST /v1/campaigns``, a per-tenant FIFO queue with a bounded worker pool
executes them, progress streams live as NDJSON by bridging
:class:`~repro.platform.lifecycle.SessionObserver` callbacks onto per-job
subscription queues, and reports are served as JSON.

Durability comes entirely from the campaign fabric: every job is a campaign
directory whose manifest is written at submission time, so a restarted
server (``repro serve --results DIR``) rebuilds its queue from the on-disk
manifests alone — the service keeps no state files of its own.
"""

from repro.service.events import EventBridgeObserver, JobEventBus
from repro.service.queue import JobQueue
from repro.service.server import TuningServer, TuningService

__all__ = [
    "EventBridgeObserver",
    "JobEventBus",
    "JobQueue",
    "TuningServer",
    "TuningService",
]
