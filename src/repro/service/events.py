"""Per-job event fan-out: SessionObserver callbacks onto subscriber queues.

The engine already announces everything a client could want to watch —
``on_dispatch`` / ``on_trial`` / ``on_new_incumbent`` / ``on_checkpoint``
fire on every session — so live progress streaming is a bridge, not a new
mechanism.  :class:`EventBridgeObserver` serializes each callback into a
plain JSON-safe dict and publishes it on the job's :class:`JobEventBus`;
HTTP handlers subscribe to the bus and write NDJSON lines as events arrive.

The bus keeps a bounded replay buffer so a subscriber that connects
mid-run still sees the history so far (a campaign smoke run emits a few
hundred events; the bound only matters for million-trial campaigns, where
the tail is the interesting part anyway).  Closing the bus delivers a
``None`` sentinel to every subscriber, which is how streams learn the job
reached a terminal state.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Dict, List, Optional

from repro.platform.lifecycle import SessionObserver

#: Events kept for replay to late subscribers, per job.
REPLAY_LIMIT = 10000

#: Per-subscriber queue capacity; a stalled consumer drops events rather
#: than blocking the search thread (the replay buffer is authoritative).
SUBSCRIBER_LIMIT = 10000


class JobEventBus:
    """Fan-out of one job's event stream to any number of subscribers.

    Publishing never blocks the worker thread: subscriber queues are
    bounded and drop on overflow (each subscriber's ``dropped`` counter is
    reported through a synthetic event when the stream closes).
    """

    def __init__(self, replay_limit: int = REPLAY_LIMIT) -> None:
        self._lock = threading.Lock()
        self._replay: List[Dict[str, Any]] = []
        self._replay_limit = replay_limit
        self._dropped_from_replay = 0
        self._subscribers: List["queue.Queue[Optional[Dict[str, Any]]]"] = []
        self._sequence = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def publish(self, event: Dict[str, Any]) -> None:
        """Stamp *event* with a sequence number and deliver it everywhere."""
        with self._lock:
            if self._closed:
                return
            event = dict(event, seq=self._sequence)
            self._sequence += 1
            self._replay.append(event)
            if len(self._replay) > self._replay_limit:
                del self._replay[0]
                self._dropped_from_replay += 1
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber.put_nowait(event)
            except queue.Full:
                pass

    def subscribe(self) -> "queue.Queue[Optional[Dict[str, Any]]]":
        """Return a queue pre-loaded with the replay buffer and kept live.

        If the bus is already closed the queue ends with the ``None``
        sentinel immediately, so a subscriber to a finished job still gets
        the buffered history followed by a clean end-of-stream.
        """
        subscriber: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue(
            maxsize=max(SUBSCRIBER_LIMIT, self._replay_limit + 1))
        with self._lock:
            for event in self._replay:
                subscriber.put_nowait(event)
            if self._closed:
                subscriber.put_nowait(None)
            else:
                self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self,
                    subscriber: "queue.Queue[Optional[Dict[str, Any]]]") -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    def close(self, event: Optional[Dict[str, Any]] = None) -> None:
        """Publish a final *event* (if given) and end every subscription."""
        if event is not None:
            self.publish(event)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subscribers = list(self._subscribers)
            self._subscribers = []
        for subscriber in subscribers:
            try:
                subscriber.put_nowait(None)
            except queue.Full:
                # Full queue: the consumer is stalled anyway; drain one slot
                # so the sentinel always lands and the stream terminates.
                try:
                    subscriber.get_nowait()
                except queue.Empty:
                    pass
                subscriber.put_nowait(None)


def _record_event(kind: str, experiment: str, record: Any) -> Dict[str, Any]:
    return {
        "event": kind,
        "experiment": experiment,
        "trial": int(record.index),
        "objective": record.objective,
        "crashed": bool(record.crashed),
        "failure_stage": record.failure_stage.value,
        "duration_s": float(record.duration_s),
        "worker": int(record.worker),
    }


class EventBridgeObserver(SessionObserver):
    """Serializes one experiment's session callbacks onto the job's bus.

    One instance is attached per claimed experiment (via the campaign
    runner's ``observer_factory``), so every event carries the experiment
    name and the job's stream interleaves experiments in real completion
    order.
    """

    def __init__(self, bus: JobEventBus, experiment: str) -> None:
        self._bus = bus
        self._experiment = experiment

    def on_dispatch(self, session, configuration, worker: int) -> None:
        self._bus.publish({
            "event": "dispatch",
            "experiment": self._experiment,
            "worker": int(worker),
        })

    def on_trial(self, session, record) -> None:
        self._bus.publish(_record_event("trial", self._experiment, record))

    def on_new_incumbent(self, session, record) -> None:
        self._bus.publish(_record_event("new-incumbent", self._experiment,
                                        record))

    def on_checkpoint(self, session, path: str) -> None:
        self._bus.publish({
            "event": "checkpoint",
            "experiment": self._experiment,
            "trials": len(session.history),
        })
