"""HTTP/JSON surface of the tuning service (stdlib ``http.server`` only).

Routes::

    GET  /v1/health              liveness probe
    GET  /v1/jobs                paginated job listing (``?offset=&limit=``,
                                 stable (tenant, seq) order) + queued snapshot
    POST /v1/experiments         submit one ExperimentSpec payload
    POST /v1/campaigns           submit one CampaignSpec payload
    GET  /v1/jobs/{id}           manifest-backed status (attempts, leases)
    GET  /v1/jobs/{id}/events    live progress as NDJSON (one JSON per line)
    GET  /v1/jobs/{id}/report    campaign report tables as JSON (cached by
                                 manifest fingerprint while unchanged)

Submission bodies are ``{"tenant": "...", "spec": {...}}`` /
``{"tenant": "...", "campaign": {...}}``; ``tenant`` defaults to
``"default"``.  Validation failures surface the spec layer's key-naming
error messages verbatim as ``{"error": ...}`` 400 bodies — that is why
:meth:`ExperimentSpec.from_dict` names the offending field.

The events stream replays the job's buffered history, then follows live
until the job reaches a terminal state (or the optional ``timeout_s`` /
``max_events`` query bounds hit).  Responses carry no content-length and
close the connection to mark the end of the stream — NDJSON over plain
HTTP needs nothing fancier, and every line is one complete JSON object.
"""

from __future__ import annotations

import json
import queue as queue_module
import re
from http.server import BaseHTTPRequestHandler
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

#: largest accepted request body; a campaign grid spec is a few KB.
MAX_BODY_BYTES = 1 << 20

_JOB_ROUTE = re.compile(r"^/v1/jobs/([^/]+)(/events|/report)?$")


class ApiError(Exception):
    """An HTTP-visible failure: status code plus a JSON error body."""

    def __init__(self, status: int, message: str,
                 details: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.details = details

    def body(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"error": self.message}
        if self.details:
            body.update(self.details)
        return body


def _dumps(document: Any) -> bytes:
    """Canonical JSON: sorted keys, 2-space indent, trailing newline.

    ``campaign report --json`` uses the identical serialization, so the CI
    smoke can byte-diff the HTTP report against the CLI report.
    """
    return (json.dumps(document, indent=2, sort_keys=True) + "\n").encode()


def make_handler(service) -> type:
    """Build the request-handler class bound to *service*.

    ``BaseHTTPRequestHandler`` is instantiated per request by the server,
    so the service reference is carried through a closure rather than an
    attribute protocol.
    """

    class Handler(BaseHTTPRequestHandler):
        # keep-alive for the JSON endpoints; event streams opt out.
        protocol_version = "HTTP/1.1"
        server_version = "repro-tuning"

        # -- plumbing -------------------------------------------------------
        def log_message(self, format: str, *args: Any) -> None:
            # requests are the service's steady state; stay quiet unless
            # the server wants access logs (tests don't).
            pass

        def _send_json(self, status: int, document: Any) -> None:
            payload = _dumps(document)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _read_body(self) -> Dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                raise ApiError(400, "request body required")
            if length > MAX_BODY_BYTES:
                raise ApiError(413, "request body too large")
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ApiError(400, "request body is not valid JSON: "
                               "{}".format(error))
            if not isinstance(body, dict):
                raise ApiError(400, "request body must be a JSON object "
                               "(got {})".format(type(body).__name__))
            return body

        def _payload(self, body: Dict[str, Any],
                     key: str) -> Tuple[str, Dict[str, Any]]:
            tenant = body.get("tenant", "default")
            if not isinstance(tenant, str):
                raise ApiError(400, "field 'tenant' must be a string "
                               "(got {})".format(type(tenant).__name__))
            if key not in body:
                raise ApiError(400, "field {!r} required".format(key))
            extra = sorted(set(body) - {"tenant", key})
            if extra:
                raise ApiError(400, "unknown fields: {}".format(
                    ", ".join(extra)))
            return tenant, body[key]

        # -- routes ---------------------------------------------------------
        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            try:
                path = urlparse(self.path).path
                body = self._read_body()
                if path == "/v1/experiments":
                    tenant, payload = self._payload(body, "spec")
                    document = service.submit_experiment(tenant, payload)
                elif path == "/v1/campaigns":
                    tenant, payload = self._payload(body, "campaign")
                    document = service.submit_campaign(tenant, payload)
                else:
                    raise ApiError(404, "no such endpoint: POST {}".format(
                        path))
                self._send_json(201, document)
            except ApiError as error:
                self._send_json(error.status, error.body())
            except Exception as error:  # noqa: BLE001 - HTTP boundary
                self._send_json(500, {"error": "{}: {}".format(
                    type(error).__name__, error)})

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            try:
                parsed = urlparse(self.path)
                path = parsed.path
                if path == "/v1/health":
                    self._send_json(200, {"status": "ok"})
                    return
                if path == "/v1/jobs":
                    query = parse_qs(parsed.query)
                    offset = self._int_param(query, "offset", minimum=0)
                    limit = self._int_param(query, "limit", minimum=1)
                    self._send_json(200, service.list_jobs(
                        offset=0 if offset is None else offset, limit=limit))
                    return
                match = _JOB_ROUTE.match(path)
                if not match:
                    raise ApiError(404, "no such endpoint: GET {}".format(
                        path))
                job_id, view = match.group(1), match.group(2)
                if view == "/events":
                    self._stream_events(job_id, parse_qs(parsed.query))
                elif view == "/report":
                    self._send_json(200, service.job_report(job_id))
                else:
                    self._send_json(200, service.job_status(job_id))
            except ApiError as error:
                self._send_json(error.status, error.body())
            except BrokenPipeError:
                pass  # client went away mid-stream; nothing to answer
            except Exception as error:  # noqa: BLE001 - HTTP boundary
                self._send_json(500, {"error": "{}: {}".format(
                    type(error).__name__, error)})

        @staticmethod
        def _int_param(query: Dict[str, Any], key: str,
                       minimum: int) -> Optional[int]:
            """Validated integer query parameter; ``None`` when absent."""
            values = query.get(key)
            if not values:
                return None
            try:
                value = int(values[0])
            except ValueError:
                raise ApiError(400, "query parameter {!r} must be an "
                               "integer (got {!r})".format(key, values[0]))
            if value < minimum:
                raise ApiError(400, "query parameter {!r} must be >= "
                               "{}".format(key, minimum))
            return value

        def _stream_events(self, job_id: str,
                           query: Dict[str, Any]) -> None:
            def _float(key: str) -> Optional[float]:
                values = query.get(key)
                if not values:
                    return None
                try:
                    value = float(values[0])
                except ValueError:
                    raise ApiError(400, "query parameter {!r} must be a "
                                   "number (got {!r})".format(key, values[0]))
                if value <= 0:
                    raise ApiError(400, "query parameter {!r} must be "
                                   "positive".format(key))
                return value

            timeout_s = _float("timeout_s")
            max_events = _float("max_events")
            bus = service.job_events(job_id)
            subscriber = bus.subscribe()
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Cache-Control", "no-store")
            # end-of-stream is marked by closing the connection.
            self.send_header("Connection", "close")
            self.end_headers()
            self.close_connection = True
            sent = 0
            try:
                while True:
                    try:
                        event = subscriber.get(timeout=timeout_s)
                    except queue_module.Empty:
                        break
                    if event is None:
                        break
                    line = json.dumps(event, sort_keys=True) + "\n"
                    self.wfile.write(line.encode())
                    self.wfile.flush()
                    sent += 1
                    if max_events is not None and sent >= max_events:
                        break
            finally:
                bus.unsubscribe(subscriber)

    return Handler
