"""The tuning service: durable job management over the campaign fabric.

:class:`TuningService` owns the results root.  Every submitted job — a
single experiment or a whole campaign grid — becomes one campaign
directory ``<root>/<tenant>/<seq>`` whose manifest is written at
submission time via :meth:`CampaignRunner.prepare`, before the job is
queued.  That ordering is the crash-safety argument in one line: the
moment a client gets a job id back, the job exists on disk, and a
restarted server rebuilds its entire queue by scanning for manifests
whose state is not ``complete`` — the service adds **no state files** of
its own, the campaign manifest stays the single source of truth.

Execution reuses the fabric end to end: each pool worker runs the same
claim/lease/heartbeat/retry loop as ``repro campaign run`` (inline,
``procs=1`` — cross-job parallelism comes from the pool), so a job whose
worker dies mid-experiment is retried and quarantined through the
existing :class:`~repro.platform.faults.RetryPolicy` path, and resuming
after a kill reproduces byte-identical records.

:class:`TuningServer` is the thin stdlib HTTP front: a
``ThreadingHTTPServer`` serving the routes defined in
:mod:`repro.service.api`.
"""

from __future__ import annotations

import os
import re
import threading
from http.server import ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.core.campaign import CampaignSpec
from repro.core.spec import ExperimentSpec
from repro.platform.campaign_runner import (DEFAULT_LEASE_S, MANIFEST_NAME,
                                            TERMINAL_STATUSES, CampaignRunner,
                                            load_manifest)
from repro.platform.faults import RetryPolicy
from repro.platform.results import cleanup_stale_tmp_files
from repro.service.api import ApiError, make_handler
from repro.service.cache import ReportCache
from repro.service.events import EventBridgeObserver, JobEventBus
from repro.service.queue import JobQueue

#: tenants are path components; keep them boring so job directories are too.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.]{0,63}$")

#: width of the per-tenant job sequence number in directory names.
_SEQ_WIDTH = 6


def _job_id(tenant: str, seq: int) -> str:
    return "{}-{:0{}d}".format(tenant, seq, _SEQ_WIDTH)


def _parse_job_id(job_id: str) -> Tuple[str, int]:
    tenant, _, seq = job_id.rpartition("-")
    if not tenant or not seq.isdigit() or not _TENANT_RE.match(tenant):
        raise ApiError(404, "malformed job id {!r}".format(job_id))
    return tenant, int(seq)


class TuningService:
    """Job submission, scheduling, observation, and recovery."""

    def __init__(self, results_root: str, workers: int = 2,
                 checkpoint_every: int = 1,
                 lease_s: float = DEFAULT_LEASE_S,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.results_root = os.path.abspath(results_root)
        os.makedirs(self.results_root, exist_ok=True)
        self.checkpoint_every = int(checkpoint_every)
        self.lease_s = float(lease_s)
        self.retry = retry if retry is not None else RetryPolicy()
        self._lock = threading.Lock()
        self._next_seq: Dict[str, int] = {}
        self._buses: Dict[str, JobEventBus] = {}
        self.reports = ReportCache()
        self.queue = JobQueue(self._execute_job, workers=workers)
        self._recovered = self._recover()

    # -- directory layout ---------------------------------------------------
    def _job_directory(self, tenant: str, seq: int) -> str:
        return os.path.join(self.results_root, tenant,
                            "{:0{}d}".format(seq, _SEQ_WIDTH))

    def _directory_for(self, job_id: str) -> str:
        tenant, seq = _parse_job_id(job_id)
        directory = self._job_directory(tenant, seq)
        if not os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            raise ApiError(404, "no such job: {}".format(job_id))
        return directory

    def _allocate(self, tenant: str) -> Tuple[str, str]:
        """Reserve the tenant's next sequence number; return (job_id, dir)."""
        if not _TENANT_RE.match(tenant):
            raise ApiError(400, "tenant must match {} (got {!r})".format(
                _TENANT_RE.pattern, tenant))
        with self._lock:
            seq = self._next_seq.get(tenant, 0)
            self._next_seq[tenant] = seq + 1
        return _job_id(tenant, seq), self._job_directory(tenant, seq)

    # -- recovery -----------------------------------------------------------
    def _recover(self) -> List[str]:
        """Rebuild queue state from on-disk manifests (and sweep orphans).

        Scans ``<root>/<tenant>/<seq>/campaign.json``; every directory gets
        the pid-liveness ``*.tmp`` sweep (a crashed server must not leave
        staging orphans behind), every manifest whose state is not
        ``complete`` is re-enqueued in (tenant, submission) order.  Also
        seeds the per-tenant sequence counters past everything on disk.
        """
        recovered: List[str] = []
        for tenant in sorted(os.listdir(self.results_root)):
            tenant_dir = os.path.join(self.results_root, tenant)
            if not os.path.isdir(tenant_dir) or not _TENANT_RE.match(tenant):
                continue
            for name in sorted(os.listdir(tenant_dir)):
                directory = os.path.join(tenant_dir, name)
                if not name.isdigit() or not os.path.isdir(directory):
                    continue
                seq = int(name)
                with self._lock:
                    self._next_seq[tenant] = max(
                        self._next_seq.get(tenant, 0), seq + 1)
                if not os.path.exists(os.path.join(directory, MANIFEST_NAME)):
                    continue
                cleanup_stale_tmp_files(directory)
                manifest = load_manifest(directory)
                if manifest.get("state") != "complete":
                    job_id = _job_id(tenant, seq)
                    self.queue.enqueue(tenant, job_id)
                    recovered.append(job_id)
        return recovered

    # -- submission ---------------------------------------------------------
    def submit_experiment(self, tenant: str,
                          payload: Dict[str, Any]) -> Dict[str, Any]:
        """Validate one experiment spec and submit it as a 1-point campaign.

        Wrapping keeps a single durable job representation (the campaign
        manifest) for both endpoints; the fabric's lease/retry machinery
        then covers single experiments for free.
        """
        try:
            spec = ExperimentSpec.from_dict(payload)
        except (ValueError, TypeError) as error:
            raise ApiError(400, str(error))
        base = {field: getattr(spec, field) for field in spec.FIELDS
                if field not in ("name", "application", "algorithm", "seed")}
        campaign = CampaignSpec(
            name=spec.name, applications=[spec.application],
            algorithms=[spec.algorithm], seeds=[spec.seed], base=base)
        return self._submit(tenant, campaign, kind="experiment")

    def submit_campaign(self, tenant: str,
                        payload: Dict[str, Any]) -> Dict[str, Any]:
        try:
            campaign = CampaignSpec.from_dict(payload)
        except (ValueError, TypeError) as error:
            raise ApiError(400, str(error))
        return self._submit(tenant, campaign, kind="campaign")

    def _submit(self, tenant: str, campaign: CampaignSpec,
                kind: str) -> Dict[str, Any]:
        job_id, directory = self._allocate(tenant)
        runner = CampaignRunner(campaign, directory, procs=1,
                                checkpoint_every=self.checkpoint_every,
                                lease_s=self.lease_s, retry=self.retry)
        # durability point: after prepare() the job survives anything —
        # restart recovery finds the manifest even if enqueue never runs.
        manifest = runner.prepare()
        self._bus(job_id)
        self.queue.enqueue(tenant, job_id)
        return {
            "job": job_id,
            "kind": kind,
            "campaign": campaign.name,
            "experiments": [entry["name"]
                            for entry in manifest["experiments"]],
            "links": {
                "status": "/v1/jobs/{}".format(job_id),
                "events": "/v1/jobs/{}/events".format(job_id),
                "report": "/v1/jobs/{}/report".format(job_id),
            },
        }

    # -- execution ----------------------------------------------------------
    def _bus(self, job_id: str) -> JobEventBus:
        with self._lock:
            bus = self._buses.get(job_id)
            if bus is None:
                bus = self._buses[job_id] = JobEventBus()
            return bus

    def _execute_job(self, tenant: str, job_id: str) -> None:
        """Pool-worker entry: drive one job's campaign to its final state."""
        directory = self._job_directory(tenant, _parse_job_id(job_id)[1])
        bus = self._bus(job_id)
        bus.publish({"event": "job-started", "job": job_id})

        def observer_factory(claim: Dict[str, Any]) -> List[Any]:
            bus.publish({"event": "experiment-claimed", "job": job_id,
                         "experiment": claim["name"],
                         "attempt": int(claim.get("attempts", 0)) + 1})
            return [EventBridgeObserver(bus, claim["name"])]

        def progress(outcome: Dict[str, Any], done: int, total: int) -> None:
            bus.publish({"event": "experiment-finished", "job": job_id,
                         "experiment": outcome["name"],
                         "status": outcome["status"], "done": done,
                         "total": total})

        try:
            runner = CampaignRunner.open(directory, procs=1,
                                         lease_s=self.lease_s,
                                         retry=self.retry)
            result = runner.run(resume=True, progress=progress,
                                observer_factory=observer_factory)
            bus.close({"event": "job-finished", "job": job_id,
                       "state": result.manifest["state"],
                       "completed": len(result.completed),
                       "failed": len(result.failed)})
        except Exception as error:
            bus.close({"event": "job-error", "job": job_id,
                       "error": "{}: {}".format(type(error).__name__, error)})
            raise

    # -- observation --------------------------------------------------------
    def job_status(self, job_id: str) -> Dict[str, Any]:
        """The job's manifest facts plus its in-memory scheduling state."""
        directory = self._directory_for(job_id)
        manifest = load_manifest(directory)
        if self.queue.is_active(job_id):
            phase = "running"
        elif self.queue.position(job_id) is not None:
            phase = "queued"
        elif manifest.get("state") == "complete":
            phase = "complete"
        else:
            # on disk but neither queued nor running: the server lost it
            # (e.g. an execution error) — visible, not silently absent.
            phase = "stalled"
        status = {
            "job": job_id,
            "phase": phase,
            "state": manifest.get("state"),
            "campaign": manifest["campaign"]["name"],
            "queue_position": self.queue.position(job_id),
            "experiments": [
                {"name": entry["name"], "status": entry["status"],
                 "attempts": entry.get("attempts", 0),
                 "lease": entry.get("lease"),
                 "retry_at": entry.get("retry_at"),
                 "error": entry.get("error")}
                for entry in manifest["experiments"]],
        }
        error = self.queue.last_error(job_id)
        if error is not None:
            status["execution_error"] = error
        return status

    def job_report(self, job_id: str) -> Dict[str, Any]:
        """The canonical report document, cached by manifest fingerprint.

        Every fact a report aggregates flows through the campaign manifest
        (completed experiments' histories are immutable once their manifest
        entry says so), so an unchanged manifest digest means an unchanged
        report — repeated polls of a finished campaign cost one manifest
        hash, not O(total trials) aggregation.
        """
        from repro.analysis.campaign_report import campaign_report_document

        directory = self._directory_for(job_id)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        return self.reports.get(directory, manifest_path,
                                lambda: campaign_report_document(directory))

    def job_events(self, job_id: str) -> JobEventBus:
        """The job's event bus; terminal jobs get a pre-closed bus."""
        directory = self._directory_for(job_id)
        with self._lock:
            bus = self._buses.get(job_id)
        if bus is not None:
            return bus
        # Job known only from disk (pre-restart submission): synthesize a
        # closed stream carrying its final state.
        manifest = load_manifest(directory)
        bus = JobEventBus()
        terminal = manifest.get("state") == "complete" or all(
            entry["status"] in TERMINAL_STATUSES
            for entry in manifest["experiments"])
        if terminal:
            bus.close({"event": "job-finished", "job": job_id,
                       "state": manifest.get("state")})
            return bus
        with self._lock:
            return self._buses.setdefault(job_id, bus)

    def list_jobs(self, offset: int = 0,
                  limit: Optional[int] = None) -> Dict[str, Any]:
        """Stable-ordered job listing with offset/limit pagination.

        Jobs order by (tenant, sequence) ascending — submission order
        within a tenant — so pages are stable across calls while jobs only
        get appended.  The directory scan touches names only; manifests
        load for the returned page alone, keeping a page request O(page)
        rather than O(all manifests).
        """
        identifiers: List[Tuple[str, int]] = []
        for tenant in sorted(os.listdir(self.results_root)):
            tenant_dir = os.path.join(self.results_root, tenant)
            if not os.path.isdir(tenant_dir) or not _TENANT_RE.match(tenant):
                continue
            for name in sorted(os.listdir(tenant_dir)):
                directory = os.path.join(tenant_dir, name)
                if not name.isdigit() or not os.path.exists(
                        os.path.join(directory, MANIFEST_NAME)):
                    continue
                identifiers.append((tenant, int(name)))
        offset = max(0, int(offset))
        page = identifiers[offset:] if limit is None \
            else identifiers[offset:offset + int(limit)]
        jobs: List[Dict[str, Any]] = []
        for tenant, seq in page:
            manifest = load_manifest(self._job_directory(tenant, seq))
            jobs.append({"job": _job_id(tenant, seq), "tenant": tenant,
                         "campaign": manifest["campaign"]["name"],
                         "state": manifest.get("state")})
        document = {"jobs": jobs, "queued": self.queue.snapshot(),
                    "total": len(identifiers), "offset": offset}
        if limit is not None:
            document["limit"] = int(limit)
        return document

    def shutdown(self) -> None:
        self.queue.shutdown()


class TuningServer:
    """``ThreadingHTTPServer`` wrapper binding a :class:`TuningService`."""

    def __init__(self, service: TuningService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), make_handler(service))
        # NDJSON streams live as long as the job; don't cap them at the
        # default socket timeout.
        self.httpd.daemon_threads = True

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return "http://{}:{}".format(host, port)

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def serve_in_thread(self) -> threading.Thread:
        thread = threading.Thread(target=self.httpd.serve_forever,
                                  daemon=True, name="tuning-server")
        thread.start()
        return thread

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.service.shutdown()
