"""Retry policies and deterministic fault injection for the campaign fabric.

The campaign runner's fault-tolerance story has two halves.  The *defensive*
half is :class:`RetryPolicy`: failed experiments are retried with capped
exponential backoff (the jitter is a deterministic function of the
experiment name and attempt number, so two workers never compute different
delays for the same retry), and an experiment that keeps failing is
quarantined to ``failed-permanent`` after ``max_attempts`` tries so one
poisoned grid point degrades the final report gracefully instead of
aborting the whole campaign.

The *adversarial* half is :class:`FaultInjector`, a seeded chaos harness
that exercises exactly the failure modes the fabric claims to survive:

* **worker kills** at completion events (after a checkpoint has been
  durably saved, mirroring a preemption or ``kill -9`` between units of
  work) — with real worker processes the injector ``os._exit``\\ s, with an
  in-process worker it raises :class:`WorkerKilled`, which the worker loop
  treats exactly like a process death (the lease is left behind to expire);
* **torn checkpoint writes** — the staged checkpoint bytes are truncated
  and written over the final path, then the worker dies, simulating a crash
  mid-write on a filesystem without atomic rename (the results store must
  detect the damage and fall back to the last good checkpoint);
* **transient experiment-startup failures** — :class:`TransientStartupError`
  raised before the experiment has any side effects, exercising the
  retry/backoff path.

Because every experiment is a deterministic function of its spec and
checkpoints restore bit-exactly, *any* schedule of injected faults must
leave the final per-experiment records, summaries, and report tables
byte-identical to the fault-free run — the invariant ``tests/test_chaos.py``
pins.
"""

from __future__ import annotations

import hashlib
import os
import random
from typing import Any, Dict, Optional


class TransientStartupError(RuntimeError):
    """An injected (retryable) failure before an experiment started."""


class WorkerKilled(BaseException):
    """An injected worker death.

    Derives from :class:`BaseException` so the ``except Exception`` guard
    around experiment execution cannot swallow it: a killed worker must not
    report a ``failed`` outcome — it must simply stop, leaving its lease to
    expire, exactly like a real ``kill -9``.
    """


def stable_hash(*parts: object) -> int:
    """A process-independent 64-bit hash of *parts*.

    Python's builtin ``hash`` is salted per process, which would make
    retry jitter differ between the workers computing it; campaign
    coordination needs every process to agree.
    """
    text = "\x1f".join(str(part) for part in parts)
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8],
                          "big")


class RetryPolicy:
    """Capped exponential backoff with deterministic jitter and quarantine.

    ``delay_s(name, attempt)`` is the wait before retry number *attempt*
    (1-based): ``base * 2**(attempt-1)`` capped at ``max_delay_s``, scaled
    by a jitter factor in ``[1-jitter, 1+jitter]`` derived deterministically
    from ``(seed, name, attempt)``.  ``exhausted(attempts)`` decides
    quarantine: once an experiment has failed *max_attempts* times it is
    marked ``failed-permanent`` and never retried by this campaign run.
    """

    FIELDS = ("max_attempts", "base_delay_s", "max_delay_s", "jitter", "seed")

    def __init__(self, max_attempts: int = 3, base_delay_s: float = 0.05,
                 max_delay_s: float = 2.0, jitter: float = 0.5,
                 seed: int = 0) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if base_delay_s < 0 or max_delay_s < 0:
            raise ValueError("backoff delays must not be negative")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.max_attempts = int(max_attempts)
        self.base_delay_s = float(base_delay_s)
        self.max_delay_s = float(max_delay_s)
        self.jitter = float(jitter)
        self.seed = int(seed)

    def delay_s(self, name: str, attempt: int) -> float:
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        delay = min(self.base_delay_s * (2.0 ** (attempt - 1)),
                    self.max_delay_s)
        if self.jitter:
            unit = random.Random(stable_hash(self.seed, name, attempt)).random()
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return delay

    def exhausted(self, attempts: int) -> bool:
        return attempts >= self.max_attempts

    def to_dict(self) -> Dict[str, Any]:
        return {field: getattr(self, field) for field in self.FIELDS}

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "RetryPolicy":
        data = dict(data or {})
        unknown = sorted(set(data) - set(cls.FIELDS))
        if unknown:
            raise ValueError("unknown retry fields: {}".format(
                ", ".join(unknown)))
        return cls(**data)

    def __repr__(self) -> str:
        return ("RetryPolicy(max_attempts={}, base_delay_s={}, "
                "max_delay_s={}, jitter={}, seed={})").format(
                    self.max_attempts, self.base_delay_s, self.max_delay_s,
                    self.jitter, self.seed)


#: keys a ``chaos:`` block (campaign spec or CLI) may set.
CHAOS_FIELDS = ("seed", "kill_rate", "torn_write_rate",
                "startup_failure_rate")


def validate_chaos(data: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Validate and normalize a ``chaos:`` configuration block.

    Returns ``None`` when the block is absent or entirely inert (all rates
    zero are still kept: an explicit all-zero block means "chaos plumbing
    on, no faults", which is useful for CI dry runs).
    """
    if data is None:
        return None
    if not isinstance(data, dict):
        raise ValueError("chaos must be a mapping of {} (got {!r})".format(
            ", ".join(CHAOS_FIELDS), data))
    unknown = sorted(set(data) - set(CHAOS_FIELDS))
    if unknown:
        raise ValueError("unknown chaos fields: {}".format(", ".join(unknown)))
    block: Dict[str, Any] = {"seed": int(data.get("seed", 0))}
    if block["seed"] < 0:
        raise ValueError("chaos seed must not be negative")
    for field in CHAOS_FIELDS[1:]:
        rate = float(data.get(field, 0.0))
        if not 0.0 <= rate <= 1.0:
            raise ValueError("chaos {} must be in [0, 1] (got {})".format(
                field, rate))
        block[field] = rate
    return block


class FaultInjector:
    """Seeded chaos: kills, torn checkpoint writes, startup failures.

    One injector drives one worker *incarnation*; its decision stream is
    ``random.Random(stable_hash(seed, incarnation))``, so a respawned
    replacement worker (next incarnation) rolls a fresh stream instead of
    replaying its predecessor's death.  Kills only fire *after* a checkpoint
    or a completed experiment has been durably recorded, so no injected
    death ever loses work — and with rates below 1 every chaos schedule
    terminates with the same results as the fault-free run.
    """

    def __init__(self, seed: int = 0, kill_rate: float = 0.0,
                 torn_write_rate: float = 0.0,
                 startup_failure_rate: float = 0.0,
                 incarnation: int = 0) -> None:
        for name, rate in (("kill_rate", kill_rate),
                           ("torn_write_rate", torn_write_rate),
                           ("startup_failure_rate", startup_failure_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("{} must be in [0, 1]".format(name))
        self.seed = int(seed)
        self.kill_rate = float(kill_rate)
        self.torn_write_rate = float(torn_write_rate)
        self.startup_failure_rate = float(startup_failure_rate)
        self.incarnation = int(incarnation)
        self._rng = random.Random(stable_hash(self.seed, self.incarnation))
        #: True in subprocess workers: injected deaths really ``os._exit``.
        self.hard_exit = False

    @classmethod
    def from_config(cls, config: Optional[Dict[str, Any]],
                    incarnation: int = 0) -> Optional["FaultInjector"]:
        """Build an injector from a validated ``chaos:`` block (or ``None``)."""
        block = validate_chaos(config)
        if block is None:
            return None
        return cls(incarnation=incarnation, **block)

    # -- fault sites -----------------------------------------------------------
    def die(self) -> None:
        """Kill this worker, ``kill -9``-style.

        Real worker processes exit with status 137 (the shell's
        SIGKILL convention) so nothing up-stack can run cleanup that a
        genuine kill would have skipped; in-process workers raise
        :class:`WorkerKilled`, which the worker loop converts into the same
        abandoned-lease state.
        """
        if self.hard_exit:
            os._exit(137)
        raise WorkerKilled("injected worker death (incarnation {})".format(
            self.incarnation))

    def maybe_kill(self) -> None:
        """Kill the worker at a completion event, with ``kill_rate`` odds."""
        if self.kill_rate and self._rng.random() < self.kill_rate:
            self.die()

    def maybe_fail_startup(self, name: str) -> None:
        """Fail an experiment before it starts, with ``startup_failure_rate`` odds."""
        if (self.startup_failure_rate
                and self._rng.random() < self.startup_failure_rate):
            raise TransientStartupError(
                "injected startup failure for {} (incarnation {})".format(
                    name, self.incarnation))

    def tear(self, data: str) -> Optional[str]:
        """Decide whether a checkpoint write is torn; return the torn bytes.

        Returns ``None`` (write proceeds atomically) or a truncated prefix
        of *data* — the caller writes the prefix over the final path and
        must then :meth:`die`, because a torn write only ever exists
        together with a crash.
        """
        if not self.torn_write_rate or self._rng.random() >= self.torn_write_rate:
            return None
        # cut somewhere inside the document so the result is invalid JSON
        cut = 1 + int(self._rng.random() * max(1, len(data) - 2))
        return data[:cut]
