"""Append-only columnar storage for trial records.

JSON-per-record storage is fine at 10² trials and hopeless at the 10⁵–10⁶ a
large campaign grid produces: every checkpoint re-serializes the whole
history, so checkpoint cost grows O(history) and the Figure 7/8 flat-cost
invariant dies in the results layer.  This module stores the fixed-width
numeric measurements of every trial (objective, crash flags, timestamps,
worker attribution) as rows of one packed numpy structured dtype in an
append-only binary file, with a compact JSON-lines sidecar holding the
variable-width payload (configuration values, failure reason).  Each row
carries the byte offset and length of its sidecar line, so both files
support random access and prefix truncation.

Two properties carry the crash-safety story:

* **Prefix validity** — both files are append-only, so every prefix written
  by a completed flush stays valid forever.  The JSON manifest (checkpoint
  or history document) is the authority on how many rows are live; a torn
  append past the manifest's count is invisible, and the rolling ``.prev``
  manifest fallback of :class:`~repro.platform.results.ResultsStore` keeps
  working unchanged because an older manifest simply references a shorter
  prefix of the same files.
* **Deterministic bytes** — a trial's row and sidecar line are pure
  functions of the record, and the platform's bit-exact resume invariant
  means every worker (re)computes identical records.  A presumed-dead
  writer waking up therefore re-writes the same bytes at the same offsets
  it would have written anyway, never diverging content.

Readers get zero-copy access: :func:`open_columns` maps the binary file
read-only with :func:`numpy.memmap`, and field access on the returned
structured array (``columns["objective"]``) is a view into the mapping, so
training-scale reads never materialize per-record Python objects.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.space import ConfigSpace
from repro.platform.history import TrialRecord
from repro.vm.failures import FailureStage

#: file magic + on-disk layout version of the columns file header.
MAGIC = b"REPROTRL"
LAYOUT_VERSION = 1
HEADER_SIZE = 16  # magic (8) + version (u4) + itemsize (u4)

#: failure stages by on-disk code (the enum's declaration order).
FAILURE_STAGES = tuple(stage for stage in FailureStage)
_STAGE_CODES = {stage: code for code, stage in enumerate(FAILURE_STAGES)}

#: one trial = one packed row.  Optional floats (objective, metric value,
#: memory) store NaN when absent, with an explicit presence flag so a
#: genuine NaN measurement and "no measurement" stay distinguishable.
TRIAL_DTYPE = np.dtype([
    ("index", "<i8"),
    ("objective", "<f8"),
    ("metric_value", "<f8"),
    ("memory_mb", "<f8"),
    ("duration_s", "<f8"),
    ("started_at_s", "<f8"),
    ("payload_offset", "<i8"),
    ("payload_length", "<i8"),
    ("worker", "<i4"),
    ("has_objective", "u1"),
    ("has_metric_value", "u1"),
    ("has_memory_mb", "u1"),
    ("crashed", "u1"),
    ("failure_stage", "u1"),
    ("build_skipped", "u1"),
])


def make_header() -> bytes:
    return MAGIC + struct.pack("<II", LAYOUT_VERSION, TRIAL_DTYPE.itemsize)


def check_header(header: bytes, path: str) -> None:
    """Validate a columns-file header; raises ``ValueError`` on mismatch."""
    if len(header) < HEADER_SIZE or header[:8] != MAGIC:
        raise ValueError("{} is not a columnar trial file".format(path))
    version, itemsize = struct.unpack("<II", header[8:HEADER_SIZE])
    if version != LAYOUT_VERSION or itemsize != TRIAL_DTYPE.itemsize:
        raise ValueError(
            "unsupported trial column layout in {} (version {}, itemsize {})".format(
                path, version, itemsize))


def encode_payload(record: TrialRecord) -> bytes:
    """The sidecar line of one record: configuration values + failure reason."""
    payload = {"configuration": record.configuration.as_dict(),
               "failure_reason": record.failure_reason}
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def encode_row(record: TrialRecord, payload_offset: int,
               payload_length: int) -> tuple:
    """The fixed-width row of one record, as a ``TRIAL_DTYPE`` value tuple."""
    return (
        record.index,
        float("nan") if record.objective is None else float(record.objective),
        float("nan") if record.metric_value is None else float(record.metric_value),
        float("nan") if record.memory_mb is None else float(record.memory_mb),
        float(record.duration_s),
        float(record.started_at_s),
        payload_offset,
        payload_length,
        int(record.worker),
        record.objective is not None,
        record.metric_value is not None,
        record.memory_mb is not None,
        bool(record.crashed),
        _STAGE_CODES[record.failure_stage],
        bool(record.build_skipped),
    )


def serialize_records(records: Sequence[TrialRecord],
                      payload_offset: int = 0) -> Tuple[bytes, bytes]:
    """Encode *records* as (columns bytes, payload bytes), header excluded.

    *payload_offset* is the sidecar position the first payload line will be
    written at; stored offsets are absolute so rows stay valid however the
    bytes are appended.
    """
    rows = np.empty(len(records), dtype=TRIAL_DTYPE)
    payloads: List[bytes] = []
    offset = payload_offset
    for position, record in enumerate(records):
        line = encode_payload(record)
        rows[position] = encode_row(record, offset, len(line))
        payloads.append(line)
        offset += len(line)
    return rows.tobytes(), b"".join(payloads)


def row_to_dict(row, payload: Dict[str, object]) -> Dict[str, object]:
    """One stored row as a plain dict, shaped exactly like ``record_to_dict``.

    Values are native Python scalars (never numpy types), so the result is
    JSON-clean and bit-identical to what the record originally serialized to.
    """
    return {
        "index": int(row["index"]),
        "configuration": payload["configuration"],
        "objective": float(row["objective"]) if row["has_objective"] else None,
        "crashed": bool(row["crashed"]),
        "failure_stage": FAILURE_STAGES[int(row["failure_stage"])].value,
        "failure_reason": str(payload.get("failure_reason", "")),
        "metric_value": (float(row["metric_value"])
                         if row["has_metric_value"] else None),
        "memory_mb": float(row["memory_mb"]) if row["has_memory_mb"] else None,
        "duration_s": float(row["duration_s"]),
        "started_at_s": float(row["started_at_s"]),
        "build_skipped": bool(row["build_skipped"]),
        "worker": int(row["worker"]),
    }


def open_columns(path: str, count: int) -> np.ndarray:
    """Map the first *count* rows of a columns file read-only (zero copy).

    Raises ``ValueError`` when the header is invalid or the file is shorter
    than *count* rows — i.e. corruption surfaces exactly where the results
    store's fallback machinery expects it.
    """
    with open(path, "rb") as handle:
        check_header(handle.read(HEADER_SIZE), path)
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
    if size < HEADER_SIZE + count * TRIAL_DTYPE.itemsize:
        raise ValueError("{} holds fewer than {} trial rows".format(path, count))
    if count == 0:
        return np.empty(0, dtype=TRIAL_DTYPE)
    columns = np.memmap(path, dtype=TRIAL_DTYPE, mode="r",
                        offset=HEADER_SIZE, shape=(count,))
    return columns


def read_payloads(path: str, columns: np.ndarray) -> List[Dict[str, object]]:
    """Decode the sidecar lines referenced by *columns* (one dict per row)."""
    if len(columns) == 0:
        return []
    end = int(columns["payload_offset"][-1] + columns["payload_length"][-1])
    with open(path, "rb") as handle:
        blob = handle.read(end)
    if len(blob) < end:
        raise ValueError("{} is shorter than its trial rows reference".format(path))
    payloads = []
    for offset, length in zip(columns["payload_offset"], columns["payload_length"]):
        payloads.append(json.loads(blob[int(offset):int(offset + length)]))
    return payloads


def read_record_dicts(columns_path: str, payloads_path: str,
                      count: int) -> List[Dict[str, object]]:
    """Load the first *count* trials as ``record_to_dict``-shaped dicts."""
    columns = open_columns(columns_path, count)
    payloads = read_payloads(payloads_path, columns)
    return [row_to_dict(row, payload) for row, payload in zip(columns, payloads)]


class TrialStoreWriter:
    """Incremental append-only writer over one columns file + sidecar.

    The writer is positioned by :meth:`rewind` — ``rewind(n)`` truncates
    both files to exactly *n* durable rows (dropping any tail a superseded
    checkpoint manifest no longer references) — after which :meth:`append`
    buffers rows and :meth:`flush` writes and fsyncs them.  Call sequence
    per checkpoint: ``append`` the records added since the last save, then
    ``flush``, then write the manifest carrying the new row count; a crash
    at any instant leaves the manifest pointing at a fully durable prefix.
    """

    def __init__(self, columns_path: str, payloads_path: str) -> None:
        self.columns_path = columns_path
        self.payloads_path = payloads_path
        created = not os.path.exists(columns_path)
        self._columns = open(columns_path, "a+b")
        self._payloads = open(payloads_path, "a+b")
        self._columns.seek(0, os.SEEK_END)
        size = self._columns.tell()
        if size < HEADER_SIZE:
            self._columns.truncate(0)
            self._columns.write(make_header())
            self._columns.flush()
            size = HEADER_SIZE
        else:
            self._columns.seek(0)
            check_header(self._columns.read(HEADER_SIZE), columns_path)
        if created:
            _fsync_directory(columns_path)
        # a torn append leaves complete rows then a partial one; the floor
        # division drops the partial tail, and every complete row is durable
        # because payloads flush before their columns do.
        self.count = (size - HEADER_SIZE) // TRIAL_DTYPE.itemsize
        self._payload_offset = self._payload_end(self.count)
        self._pending: List[TrialRecord] = []
        # drop torn tails now: the files are opened in append mode, so every
        # write lands at EOF — EOF must therefore sit exactly after the last
        # complete row / its last referenced payload byte.
        self._columns.truncate(HEADER_SIZE + self.count * TRIAL_DTYPE.itemsize)
        self._payloads.truncate(self._payload_offset)

    def _payload_end(self, count: int) -> int:
        if count == 0:
            return 0
        columns = open_columns(self.columns_path, count)
        last = columns[count - 1]
        return int(last["payload_offset"] + last["payload_length"])

    def rewind(self, count: int) -> None:
        """Truncate both files to exactly *count* rows and position after them."""
        if self._pending:
            raise RuntimeError("cannot rewind with unflushed rows pending")
        if count > self.count:
            raise ValueError(
                "cannot rewind to {} rows: only {} are on disk".format(
                    count, self.count))
        payload_end = self._payload_end(count)
        self._columns.truncate(HEADER_SIZE + count * TRIAL_DTYPE.itemsize)
        self._payloads.truncate(payload_end)
        self._columns.seek(0, os.SEEK_END)
        self._payloads.seek(0, os.SEEK_END)
        self.count = count
        self._payload_offset = payload_end

    def append(self, record: TrialRecord) -> None:
        """Buffer one record for the next :meth:`flush`."""
        self._pending.append(record)

    def extend(self, records: Sequence[TrialRecord]) -> None:
        self._pending.extend(records)

    def flush(self) -> int:
        """Write and fsync all buffered rows; returns the durable row count."""
        if self._pending:
            columns, payloads = serialize_records(self._pending,
                                                  self._payload_offset)
            self._payloads.write(payloads)
            self._payloads.flush()
            os.fsync(self._payloads.fileno())
            self._columns.write(columns)
            self._columns.flush()
            os.fsync(self._columns.fileno())
            self.count += len(self._pending)
            self._payload_offset += len(payloads)
            self._pending = []
        return self.count

    def close(self) -> None:
        self._columns.close()
        self._payloads.close()

    def __enter__(self) -> "TrialStoreWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def record_dicts_to_records(entries: Sequence[Dict[str, object]],
                            space: ConfigSpace) -> List[TrialRecord]:
    """Rebuild :class:`TrialRecord` objects against *space* (values coerced)."""
    # local import: results.py already imports this module's readers.
    from repro.platform.results import record_from_dict

    return [record_from_dict(entry, space) for entry in entries]


def _fsync_directory(path: str) -> None:
    try:
        fd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def training_views(columns: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Zero-copy (objective, crashed) training views over mapped columns.

    ``objective`` is float64 with NaN for trials that have none (crashes),
    ``crashed`` a boolean view — the same contract as
    :meth:`ExplorationHistory.training_arrays`, served straight from the
    mapping without materializing records.
    """
    objective = columns["objective"]
    crashed = columns["crashed"].view(np.bool_)
    return objective, crashed


def payload_files_for(columns_path: str) -> Optional[str]:
    """The conventional sidecar path for *columns_path* (``.bin`` → ``.jsonl``)."""
    if columns_path.endswith(".bin"):
        return columns_path[:-len(".bin")] + ".jsonl"
    return None
