"""Append-only columnar storage for trial records.

JSON-per-record storage is fine at 10² trials and hopeless at the 10⁵–10⁶ a
large campaign grid produces: every checkpoint re-serializes the whole
history, so checkpoint cost grows O(history) and the Figure 7/8 flat-cost
invariant dies in the results layer.  This module stores the fixed-width
numeric measurements of every trial (objective, crash flags, timestamps,
worker attribution) as rows of one packed numpy structured dtype in an
append-only binary file, with a sidecar holding the variable-width payload
(configuration values, failure reason) as one compact JSON line per trial.
Each row carries the byte offset and length of its payload line *in the
uncompressed payload stream*, so both files support random access and
prefix truncation.

The payload sidecar has two on-disk forms:

* **raw** (format v2) — the JSON lines stored verbatim; row offsets are
  file offsets.
* **block-compressed** (format v3) — the same line stream cut at line
  boundaries into zlib-compressed blocks, each framed by a small header
  (:data:`BLOCK_MAGIC`, compressed size, raw size) behind a file-level
  magic header.  Row offsets stay *logical* (uncompressed-stream) offsets;
  the block index maps logical ranges to physical frames.  The index
  travels in the JSON manifest (``payload_blocks``) so readers seek
  without scanning, and is recoverable from the frames alone
  (:func:`scan_payload_blocks`) so the writer needs no manifest.

New sidecars are written block-compressed; an existing raw sidecar keeps
appending raw (the format is sticky per store), so older manifests —
including the rolling ``.prev`` fallback — always reference byte ranges in
the format they were written against.

Two properties carry the crash-safety story:

* **Prefix validity** — both files are append-only, so every prefix written
  by a completed flush stays valid forever.  The JSON manifest (checkpoint
  or history document) is the authority on how many rows are live; a torn
  append past the manifest's count is invisible, and the rolling ``.prev``
  manifest fallback of :class:`~repro.platform.results.ResultsStore` keeps
  working unchanged because an older manifest simply references a shorter
  prefix of the same files — for block-compressed sidecars, a shorter
  prefix of *whole blocks*, because manifests are only ever written at
  block boundaries.
* **Deterministic bytes** — a trial's row and sidecar line are pure
  functions of the record, and the platform's bit-exact resume invariant
  means every worker (re)computes identical records.  A presumed-dead
  writer waking up therefore re-writes the same bytes at the same offsets
  it would have written anyway, never diverging content.

Readers get zero-copy access: :func:`open_columns` maps the binary file
read-only with :func:`numpy.memmap`, and field access on the returned
structured array (``columns["objective"]``) is a view into the mapping, so
training-scale reads never materialize per-record Python objects.
:class:`ColumnarHistoryView` packages that for the analysis tier: lazy
column views over one stored manifest plus an on-demand payload decoder,
so cross-experiment aggregation streams off the mmap and never parses a
payload it does not need.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from bisect import bisect_right
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.space import ConfigSpace
from repro.platform.history import TrialRecord
from repro.vm.failures import FailureStage

#: file magic + on-disk layout version of the columns file header.
MAGIC = b"REPROTRL"
LAYOUT_VERSION = 1
HEADER_SIZE = 16  # magic (8) + version (u4) + itemsize (u4)

#: failure stages by on-disk code (the enum's declaration order).
FAILURE_STAGES = tuple(stage for stage in FailureStage)
_STAGE_CODES = {stage: code for code, stage in enumerate(FAILURE_STAGES)}

#: one trial = one packed row.  Optional floats (objective, metric value,
#: memory) store NaN when absent, with an explicit presence flag so a
#: genuine NaN measurement and "no measurement" stay distinguishable.
TRIAL_DTYPE = np.dtype([
    ("index", "<i8"),
    ("objective", "<f8"),
    ("metric_value", "<f8"),
    ("memory_mb", "<f8"),
    ("duration_s", "<f8"),
    ("started_at_s", "<f8"),
    ("payload_offset", "<i8"),
    ("payload_length", "<i8"),
    ("worker", "<i4"),
    ("has_objective", "u1"),
    ("has_metric_value", "u1"),
    ("has_memory_mb", "u1"),
    ("crashed", "u1"),
    ("failure_stage", "u1"),
    ("build_skipped", "u1"),
])


def make_header() -> bytes:
    return MAGIC + struct.pack("<II", LAYOUT_VERSION, TRIAL_DTYPE.itemsize)


def check_header(header: bytes, path: str) -> None:
    """Validate a columns-file header; raises ``ValueError`` on mismatch."""
    if len(header) < HEADER_SIZE or header[:8] != MAGIC:
        raise ValueError("{} is not a columnar trial file".format(path))
    version, itemsize = struct.unpack("<II", header[8:HEADER_SIZE])
    if version != LAYOUT_VERSION or itemsize != TRIAL_DTYPE.itemsize:
        raise ValueError(
            "unsupported trial column layout in {} (version {}, itemsize {})".format(
                path, version, itemsize))


#: file magic + layout version of a block-compressed payload sidecar.  A raw
#: (format v2) sidecar is a stream of JSON lines and can never start with
#: this magic (lines always start with ``{``), so the first 8 bytes of the
#: file identify its format unambiguously.
PAYLOAD_MAGIC = b"REPROPLZ"
PAYLOAD_LAYOUT_VERSION = 1
PAYLOAD_HEADER_SIZE = 16  # magic (8) + version (u4) + reserved (u4)

#: per-block frame: magic (4) + compressed size (u4) + raw size (u4).
BLOCK_MAGIC = b"RPLB"
BLOCK_HEADER_SIZE = 12

#: target uncompressed bytes per block.  Blocks only split at payload line
#: boundaries, so a block can run past the target by up to one line.
DEFAULT_BLOCK_RAW_BYTES = 1 << 18

#: ``payload_format`` manifest values: raw JSON lines vs. compressed blocks.
PAYLOAD_FORMAT_RAW = 2
PAYLOAD_FORMAT_BLOCKS = 3


def make_payload_header() -> bytes:
    return PAYLOAD_MAGIC + struct.pack("<II", PAYLOAD_LAYOUT_VERSION, 0)


def check_payload_header(header: bytes, path: str) -> None:
    """Validate a compressed-sidecar header; raises ``ValueError`` on mismatch."""
    if len(header) < PAYLOAD_HEADER_SIZE or header[:8] != PAYLOAD_MAGIC:
        raise ValueError(
            "{} is not a block-compressed payload sidecar".format(path))
    version, _reserved = struct.unpack("<II", header[8:PAYLOAD_HEADER_SIZE])
    if version != PAYLOAD_LAYOUT_VERSION:
        raise ValueError(
            "unsupported payload block layout in {} (version {})".format(
                path, version))


def payload_is_blocked(path: str) -> bool:
    """Whether *path* is a block-compressed (format v3) payload sidecar."""
    with open(path, "rb") as handle:
        return handle.read(len(PAYLOAD_MAGIC)) == PAYLOAD_MAGIC


def compress_payload_blocks(
        payload: bytes, raw_offset: int, physical_offset: int,
        block_raw_bytes: int = DEFAULT_BLOCK_RAW_BYTES,
        level: int = 6) -> Tuple[bytes, List[Dict[str, int]]]:
    """Frame *payload* (whole JSON lines) into compressed blocks.

    Returns ``(frames, entries)``: the bytes to append at *physical_offset*
    and the matching index entries (``offset``/``size`` are physical frame
    positions, ``raw_offset``/``raw_size`` the logical uncompressed range
    starting at *raw_offset*).  Blocks split only at line boundaries, so
    every row's payload line decodes from whole blocks.  ``zlib.compress``
    is deterministic, preserving the store's deterministic-bytes invariant.
    """
    frames: List[bytes] = []
    entries: List[Dict[str, int]] = []
    position = 0
    physical = physical_offset
    logical = raw_offset
    total = len(payload)
    while position < total:
        cut = position + block_raw_bytes
        if cut >= total:
            cut = total
        else:
            boundary = payload.find(b"\n", cut - 1)
            cut = total if boundary < 0 else boundary + 1
        chunk = payload[position:cut]
        compressed = zlib.compress(chunk, level)
        frame = BLOCK_MAGIC + struct.pack(
            "<II", len(compressed), len(chunk)) + compressed
        frames.append(frame)
        entries.append({"offset": physical, "size": len(frame),
                        "raw_offset": logical, "raw_size": len(chunk)})
        physical += len(frame)
        logical += len(chunk)
        position = cut
    return b"".join(frames), entries


def decode_payload_block(frame: bytes, path: str) -> bytes:
    """Decompress one framed block; raises ``ValueError`` on any corruption."""
    if len(frame) < BLOCK_HEADER_SIZE or frame[:4] != BLOCK_MAGIC:
        raise ValueError("{} holds a corrupt payload block".format(path))
    compressed_size, raw_size = struct.unpack("<II", frame[4:BLOCK_HEADER_SIZE])
    body = frame[BLOCK_HEADER_SIZE:BLOCK_HEADER_SIZE + compressed_size]
    if len(body) < compressed_size:
        raise ValueError("{} holds a truncated payload block".format(path))
    try:
        raw = zlib.decompress(body)
    except zlib.error as error:
        raise ValueError(
            "{} holds an undecodable payload block: {}".format(path, error))
    if len(raw) != raw_size:
        raise ValueError(
            "{} holds a payload block of unexpected size".format(path))
    return raw


def scan_payload_blocks(path: str) -> List[Dict[str, int]]:
    """Recover the block index of *path* by walking its frames.

    A torn tail (incomplete frame header or body) ends the scan cleanly —
    exactly the prefix-validity rule: complete frames stay valid forever.
    Garbage *within* the walked region raises ``ValueError``.
    """
    blocks: List[Dict[str, int]] = []
    with open(path, "rb") as handle:
        check_payload_header(handle.read(PAYLOAD_HEADER_SIZE), path)
        physical = PAYLOAD_HEADER_SIZE
        raw_offset = 0
        while True:
            frame_header = handle.read(BLOCK_HEADER_SIZE)
            if len(frame_header) < BLOCK_HEADER_SIZE:
                break
            if frame_header[:4] != BLOCK_MAGIC:
                raise ValueError(
                    "{} holds a corrupt payload block at byte {}".format(
                        path, physical))
            compressed_size, raw_size = struct.unpack("<II", frame_header[4:])
            body = handle.read(compressed_size)
            if len(body) < compressed_size:
                break
            size = BLOCK_HEADER_SIZE + compressed_size
            blocks.append({"offset": physical, "size": size,
                           "raw_offset": raw_offset, "raw_size": raw_size})
            physical += size
            raw_offset += raw_size
    return blocks


def encode_payload(record: TrialRecord) -> bytes:
    """The sidecar line of one record: configuration values + failure reason."""
    payload = {"configuration": record.configuration.as_dict(),
               "failure_reason": record.failure_reason}
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def encode_row(record: TrialRecord, payload_offset: int,
               payload_length: int) -> tuple:
    """The fixed-width row of one record, as a ``TRIAL_DTYPE`` value tuple."""
    return (
        record.index,
        float("nan") if record.objective is None else float(record.objective),
        float("nan") if record.metric_value is None else float(record.metric_value),
        float("nan") if record.memory_mb is None else float(record.memory_mb),
        float(record.duration_s),
        float(record.started_at_s),
        payload_offset,
        payload_length,
        int(record.worker),
        record.objective is not None,
        record.metric_value is not None,
        record.memory_mb is not None,
        bool(record.crashed),
        _STAGE_CODES[record.failure_stage],
        bool(record.build_skipped),
    )


def serialize_records(records: Sequence[TrialRecord],
                      payload_offset: int = 0) -> Tuple[bytes, bytes]:
    """Encode *records* as (columns bytes, payload bytes), header excluded.

    *payload_offset* is the sidecar position the first payload line will be
    written at; stored offsets are absolute so rows stay valid however the
    bytes are appended.
    """
    rows = np.empty(len(records), dtype=TRIAL_DTYPE)
    payloads: List[bytes] = []
    offset = payload_offset
    for position, record in enumerate(records):
        line = encode_payload(record)
        rows[position] = encode_row(record, offset, len(line))
        payloads.append(line)
        offset += len(line)
    return rows.tobytes(), b"".join(payloads)


def row_to_dict(row, payload: Dict[str, object]) -> Dict[str, object]:
    """One stored row as a plain dict, shaped exactly like ``record_to_dict``.

    Values are native Python scalars (never numpy types), so the result is
    JSON-clean and bit-identical to what the record originally serialized to.
    """
    return {
        "index": int(row["index"]),
        "configuration": payload["configuration"],
        "objective": float(row["objective"]) if row["has_objective"] else None,
        "crashed": bool(row["crashed"]),
        "failure_stage": FAILURE_STAGES[int(row["failure_stage"])].value,
        "failure_reason": str(payload.get("failure_reason", "")),
        "metric_value": (float(row["metric_value"])
                         if row["has_metric_value"] else None),
        "memory_mb": float(row["memory_mb"]) if row["has_memory_mb"] else None,
        "duration_s": float(row["duration_s"]),
        "started_at_s": float(row["started_at_s"]),
        "build_skipped": bool(row["build_skipped"]),
        "worker": int(row["worker"]),
    }


def open_columns(path: str, count: int) -> np.ndarray:
    """Map the first *count* rows of a columns file read-only (zero copy).

    Raises ``ValueError`` when the header is invalid or the file is shorter
    than *count* rows — i.e. corruption surfaces exactly where the results
    store's fallback machinery expects it.
    """
    with open(path, "rb") as handle:
        check_header(handle.read(HEADER_SIZE), path)
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
    if size < HEADER_SIZE + count * TRIAL_DTYPE.itemsize:
        raise ValueError("{} holds fewer than {} trial rows".format(path, count))
    if count == 0:
        return np.empty(0, dtype=TRIAL_DTYPE)
    columns = np.memmap(path, dtype=TRIAL_DTYPE, mode="r",
                        offset=HEADER_SIZE, shape=(count,))
    return columns


class RawPayloadReader:
    """Random access over a raw (format v2) payload sidecar."""

    def __init__(self, path: str) -> None:
        self._path = path

    def read(self, offset: int, length: int) -> bytes:
        if length == 0:
            return b""
        with open(self._path, "rb") as handle:
            handle.seek(offset)
            blob = handle.read(length)
        if len(blob) < length:
            raise ValueError(
                "{} is shorter than its trial rows reference".format(self._path))
        return blob

    def read_prefix(self, end: int) -> bytes:
        return self.read(0, end)


class BlockPayloadReader:
    """Random access over a block-compressed (format v3) payload sidecar.

    Offsets are logical (uncompressed-stream) positions — the same offsets
    trial rows carry regardless of sidecar format.  A small LRU of
    decompressed blocks makes sequential row iteration decompress each
    block once.
    """

    _CACHE_BLOCKS = 4

    def __init__(self, path: str, blocks: Sequence[Dict[str, int]]) -> None:
        self._path = path
        self._blocks = [dict(block) for block in blocks]
        self._starts = [int(block["raw_offset"]) for block in self._blocks]
        self._cache: "OrderedDict[int, bytes]" = OrderedDict()

    @property
    def coverage(self) -> int:
        """Logical bytes covered by complete blocks."""
        if not self._blocks:
            return 0
        last = self._blocks[-1]
        return int(last["raw_offset"]) + int(last["raw_size"])

    def _load(self, position: int) -> bytes:
        cached = self._cache.get(position)
        if cached is not None:
            self._cache.move_to_end(position)
            return cached
        block = self._blocks[position]
        with open(self._path, "rb") as handle:
            handle.seek(int(block["offset"]))
            frame = handle.read(int(block["size"]))
        raw = decode_payload_block(frame, self._path)
        if len(raw) != int(block["raw_size"]):
            raise ValueError(
                "{} holds a payload block of unexpected size".format(self._path))
        self._cache[position] = raw
        while len(self._cache) > self._CACHE_BLOCKS:
            self._cache.popitem(last=False)
        return raw

    def read(self, offset: int, length: int) -> bytes:
        if length == 0:
            return b""
        end = offset + length
        if offset < 0 or end > self.coverage:
            raise ValueError(
                "{} is shorter than its trial rows reference".format(self._path))
        position = bisect_right(self._starts, offset) - 1
        pieces: List[bytes] = []
        cursor = offset
        while cursor < end:
            block = self._blocks[position]
            raw = self._load(position)
            start = cursor - int(block["raw_offset"])
            take = min(end, int(block["raw_offset"]) + int(block["raw_size"])) - cursor
            pieces.append(raw[start:start + take])
            cursor += take
            position += 1
        return b"".join(pieces)

    def read_prefix(self, end: int) -> bytes:
        return self.read(0, end)


def open_payload_reader(path: str,
                        blocks: Optional[Sequence[Dict[str, int]]] = None):
    """The right payload reader for *path*, sniffed from its first bytes.

    *blocks* is the manifest-carried index for a compressed sidecar; when
    absent it is recovered by :func:`scan_payload_blocks`.  A manifest that
    claims blocks over a raw file is corrupt and raises ``ValueError``.
    """
    if payload_is_blocked(path):
        if blocks is None:
            blocks = scan_payload_blocks(path)
        return BlockPayloadReader(path, blocks)
    if blocks:
        raise ValueError(
            "{} is not a block-compressed payload sidecar but its manifest "
            "carries a block index".format(path))
    return RawPayloadReader(path)


def read_payloads(path: str, columns: np.ndarray,
                  blocks: Optional[Sequence[Dict[str, int]]] = None
                  ) -> List[Dict[str, object]]:
    """Decode the sidecar lines referenced by *columns* (one dict per row)."""
    if len(columns) == 0:
        return []
    end = int(columns["payload_offset"][-1] + columns["payload_length"][-1])
    blob = open_payload_reader(path, blocks).read_prefix(end)
    payloads = []
    for offset, length in zip(columns["payload_offset"], columns["payload_length"]):
        payloads.append(json.loads(blob[int(offset):int(offset + length)]))
    return payloads


def read_record_dicts(columns_path: str, payloads_path: str, count: int,
                      blocks: Optional[Sequence[Dict[str, int]]] = None
                      ) -> List[Dict[str, object]]:
    """Load the first *count* trials as ``record_to_dict``-shaped dicts."""
    columns = open_columns(columns_path, count)
    payloads = read_payloads(payloads_path, columns, blocks)
    return [row_to_dict(row, payload) for row, payload in zip(columns, payloads)]


_STAGE_CODES_BY_VALUE = {stage.value: code
                         for code, stage in enumerate(FAILURE_STAGES)}


def rows_from_record_dicts(entries: Sequence[Dict[str, object]]) -> np.ndarray:
    """Synthesize ``TRIAL_DTYPE`` rows from ``record_to_dict``-shaped dicts.

    This is the compatibility shim that lets :class:`ColumnarHistoryView`
    serve numeric columns over a format-v1 document that inlined its
    records; payload offsets are zeroed because inline records keep their
    payloads in the dicts themselves.
    """
    rows = np.empty(len(entries), dtype=TRIAL_DTYPE)
    nan = float("nan")
    for position, entry in enumerate(entries):
        objective = entry.get("objective")
        metric = entry.get("metric_value")
        memory = entry.get("memory_mb")
        rows[position] = (
            int(entry.get("index", position)),
            nan if objective is None else float(objective),
            nan if metric is None else float(metric),
            nan if memory is None else float(memory),
            float(entry.get("duration_s", 0.0)),
            float(entry.get("started_at_s", 0.0)),
            0,
            0,
            int(entry.get("worker", 0)),
            objective is not None,
            metric is not None,
            memory is not None,
            bool(entry.get("crashed", False)),
            _STAGE_CODES_BY_VALUE.get(str(entry.get("failure_stage", "")), 0),
            bool(entry.get("build_skipped", False)),
        )
    return rows


class ColumnarHistoryView:
    """Lazy zero-copy view over one stored history/checkpoint document.

    The view is the streaming read tier for analysis: numeric aggregation
    (best objective, per-iteration cost, crash counts) runs on mmap-backed
    column views and never opens the payload sidecar; payload access is
    per-row and on-demand through the sidecar's block index, so decoding
    one configuration from a 10⁵-trial store touches one block, not the
    whole file.  Format-v1 documents (inline records) are served through
    synthesized columns, so callers see one interface across all formats.
    """

    def __init__(self, manifest_path: str, document: Dict[str, object]) -> None:
        self._manifest_path = manifest_path
        self._document = document
        self._columns: Optional[np.ndarray] = None
        self._reader = None
        self._inline = "trial_columns" not in document
        if self._inline:
            self._records = list(document.get("records", []))
            self._count = len(self._records)
        else:
            self._records = None
            self._count = int(document.get("trials", 0))

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def document(self) -> Dict[str, object]:
        """The manifest document this view was opened over (records excluded)."""
        return self._document

    def _sidecar_path(self, key: str) -> str:
        name = self._document.get(key)
        if not isinstance(name, str) or not name:
            raise ValueError(
                "{} does not reference its trial sidecar files".format(
                    self._manifest_path))
        directory = os.path.dirname(os.path.abspath(self._manifest_path))
        return os.path.join(directory, os.path.basename(name))

    @property
    def columns(self) -> np.ndarray:
        """The packed ``TRIAL_DTYPE`` rows (zero-copy memmap for v2/v3)."""
        if self._columns is None:
            if self._inline:
                self._columns = rows_from_record_dicts(self._records)
            else:
                self._columns = open_columns(
                    self._sidecar_path("trial_columns"), self._count)
        return self._columns

    @property
    def objective(self) -> np.ndarray:
        """float64 objectives, NaN where absent (zero-copy view)."""
        return self.columns["objective"]

    @property
    def has_objective(self) -> np.ndarray:
        return self.columns["has_objective"].view(np.bool_)

    @property
    def cost(self) -> np.ndarray:
        """Per-trial evaluation cost (``duration_s``), in completion order."""
        return self.columns["duration_s"]

    @property
    def iteration(self) -> np.ndarray:
        """Per-trial iteration index (``index`` column)."""
        return self.columns["index"]

    @property
    def worker(self) -> np.ndarray:
        return self.columns["worker"]

    @property
    def crashed(self) -> np.ndarray:
        return self.columns["crashed"].view(np.bool_)

    def cost_by_iteration(self) -> np.ndarray:
        """Durations reordered by ascending iteration index (stable)."""
        columns = self.columns
        order = np.argsort(columns["index"], kind="stable")
        return columns["duration_s"][order]

    def _payload_reader(self):
        if self._reader is None:
            self._reader = open_payload_reader(
                self._sidecar_path("trial_payloads"),
                self._document.get("payload_blocks"))
        return self._reader

    def payload(self, position: int) -> Dict[str, object]:
        """Decode one row's payload (configuration + failure reason)."""
        if self._inline:
            entry = self._records[position]
            return {"configuration": entry.get("configuration", {}),
                    "failure_reason": entry.get("failure_reason", "")}
        row = self.columns[position]
        line = self._payload_reader().read(
            int(row["payload_offset"]), int(row["payload_length"]))
        return json.loads(line)

    def record_dict(self, position: int) -> Dict[str, object]:
        """One trial as a ``record_to_dict``-shaped dict."""
        if self._inline:
            return self._records[position]
        return row_to_dict(self.columns[position], self.payload(position))

    def record_dicts(self) -> List[Dict[str, object]]:
        """All trials as dicts — the materializing path, for compat readers."""
        if self._inline:
            return list(self._records)
        columns = self.columns
        payloads = read_payloads(
            self._sidecar_path("trial_payloads"), columns,
            self._document.get("payload_blocks"))
        return [row_to_dict(row, payload)
                for row, payload in zip(columns, payloads)]


class TrialStoreWriter:
    """Incremental append-only writer over one columns file + sidecar.

    The writer is positioned by :meth:`rewind` — ``rewind(n)`` truncates
    both files to exactly *n* durable rows (dropping any tail a superseded
    checkpoint manifest no longer references) — after which :meth:`append`
    buffers rows and :meth:`flush` writes and fsyncs them.  Call sequence
    per checkpoint: ``append`` the records added since the last save, then
    ``flush``, then write the manifest carrying the new row count; a crash
    at any instant leaves the manifest pointing at a fully durable prefix.

    The sidecar format is sticky: a fresh (empty) sidecar is written
    block-compressed (format v3) and every flush frames its payload bytes
    into whole zlib blocks; an existing raw sidecar keeps appending raw so
    byte ranges referenced by older manifests — including the rolling
    ``.prev`` fallback — stay valid verbatim.  For a compressed store,
    :attr:`blocks` exposes the durable block index for manifest embedding.
    """

    def __init__(self, columns_path: str, payloads_path: str,
                 block_raw_bytes: int = DEFAULT_BLOCK_RAW_BYTES) -> None:
        self.columns_path = columns_path
        self.payloads_path = payloads_path
        self._block_raw_bytes = int(block_raw_bytes)
        created = not os.path.exists(columns_path)
        self._columns = open(columns_path, "a+b")
        self._payloads = open(payloads_path, "a+b")
        self._columns.seek(0, os.SEEK_END)
        size = self._columns.tell()
        if size < HEADER_SIZE:
            self._columns.truncate(0)
            self._columns.write(make_header())
            self._columns.flush()
            size = HEADER_SIZE
        else:
            self._columns.seek(0)
            check_header(self._columns.read(HEADER_SIZE), columns_path)
        if created:
            _fsync_directory(columns_path)
        # a torn append leaves complete rows then a partial one; the floor
        # division drops the partial tail, and every complete row is durable
        # because payloads flush before their columns do.
        self.count = (size - HEADER_SIZE) // TRIAL_DTYPE.itemsize
        self._pending: List[TrialRecord] = []
        self._payloads.seek(0, os.SEEK_END)
        payload_size = self._payloads.tell()
        self._payloads.seek(0)
        sniff = self._payloads.read(len(PAYLOAD_MAGIC))
        # drop torn tails now: the files are opened in append mode, so every
        # write lands at EOF — EOF must therefore sit exactly after the last
        # complete row / its last referenced payload byte (for a compressed
        # sidecar, after the block holding that byte).
        if payload_size >= PAYLOAD_HEADER_SIZE and sniff == PAYLOAD_MAGIC:
            self._compressed = True
            self._payloads.seek(0)
            check_payload_header(self._payloads.read(PAYLOAD_HEADER_SIZE),
                                 payloads_path)
            self._blocks: List[Dict[str, int]] = scan_payload_blocks(
                payloads_path)
            coverage = 0
            if self._blocks:
                last = self._blocks[-1]
                coverage = int(last["raw_offset"]) + int(last["raw_size"])
            # rows referencing past the complete blocks lost their payload
            # to a torn frame; drop them with it.
            if self.count:
                columns = open_columns(self.columns_path, self.count)
                ends = np.asarray(
                    columns["payload_offset"] + columns["payload_length"],
                    dtype=np.int64)
                self.count = int(np.searchsorted(ends, coverage, side="right"))
            self._columns.truncate(
                HEADER_SIZE + self.count * TRIAL_DTYPE.itemsize)
            self._payload_offset = self._payload_end(self.count)
            self._physical_end = PAYLOAD_HEADER_SIZE
            self._trim_blocks(self._payload_offset)
        elif payload_size == 0 and self.count == 0:
            # a fresh store: block-compressed from byte zero.
            self._compressed = True
            self._blocks = []
            self._columns.truncate(HEADER_SIZE)
            self._payloads.truncate(0)
            self._payloads.write(make_payload_header())
            self._payloads.flush()
            self._payload_offset = 0
            self._physical_end = PAYLOAD_HEADER_SIZE
        else:
            # an existing raw (format v2) sidecar: appends stay raw.
            self._compressed = False
            self._blocks = []
            self._payload_offset = self._payload_end(self.count)
            self._columns.truncate(
                HEADER_SIZE + self.count * TRIAL_DTYPE.itemsize)
            self._payloads.truncate(self._payload_offset)
            self._physical_end = self._payload_offset
        self._columns.seek(0, os.SEEK_END)
        self._payloads.seek(0, os.SEEK_END)

    @property
    def compressed(self) -> bool:
        """Whether the sidecar is block-compressed (format v3)."""
        return self._compressed

    @property
    def blocks(self) -> Optional[List[Dict[str, int]]]:
        """Durable block index copies for manifest embedding (``None`` raw)."""
        if not self._compressed:
            return None
        return [dict(block) for block in self._blocks]

    def _payload_end(self, count: int) -> int:
        if count == 0:
            return 0
        columns = open_columns(self.columns_path, count)
        last = columns[count - 1]
        return int(last["payload_offset"] + last["payload_length"])

    def _trim_blocks(self, target_raw_end: int) -> None:
        """Truncate the compressed sidecar to *target_raw_end* logical bytes.

        Whole blocks past the target are dropped; a block straddling it is
        split — its surviving prefix re-framed as a fresh block — so the
        durable stream ends exactly at the last referenced payload byte,
        mirroring the raw format's truncation semantics.  Only blocks past
        the last manifest write are ever split (manifests land at flush —
        hence block — boundaries), so indexes embedded in older manifests
        keep referencing untouched frames.
        """
        kept: List[Dict[str, int]] = []
        covered = 0
        physical = PAYLOAD_HEADER_SIZE
        straddler: Optional[Dict[str, int]] = None
        for block in self._blocks:
            end = int(block["raw_offset"]) + int(block["raw_size"])
            if end <= target_raw_end:
                kept.append(block)
                covered = end
                physical = int(block["offset"]) + int(block["size"])
            elif int(block["raw_offset"]) < target_raw_end:
                straddler = block
                break
            else:
                break
        prefix = b""
        if straddler is not None:
            # read the straddling block's bytes *before* truncating them away.
            self._payloads.seek(int(straddler["offset"]))
            frame = self._payloads.read(int(straddler["size"]))
            raw = decode_payload_block(frame, self.payloads_path)
            prefix = raw[:target_raw_end - int(straddler["raw_offset"])]
        self._payloads.truncate(physical)
        self._payloads.seek(0, os.SEEK_END)
        if prefix:
            frames, entries = compress_payload_blocks(
                prefix, covered, physical, self._block_raw_bytes)
            self._payloads.write(frames)
            kept.extend(entries)
            physical += len(frames)
        self._payloads.flush()
        os.fsync(self._payloads.fileno())
        self._blocks = kept
        self._physical_end = physical

    def rewind(self, count: int) -> None:
        """Truncate both files to exactly *count* rows and position after them."""
        if self._pending:
            raise RuntimeError("cannot rewind with unflushed rows pending")
        if count > self.count:
            raise ValueError(
                "cannot rewind to {} rows: only {} are on disk".format(
                    count, self.count))
        payload_end = self._payload_end(count)
        self._columns.truncate(HEADER_SIZE + count * TRIAL_DTYPE.itemsize)
        if self._compressed:
            self._trim_blocks(payload_end)
        else:
            self._payloads.truncate(payload_end)
            self._physical_end = payload_end
        self._columns.seek(0, os.SEEK_END)
        self._payloads.seek(0, os.SEEK_END)
        self.count = count
        self._payload_offset = payload_end

    def append(self, record: TrialRecord) -> None:
        """Buffer one record for the next :meth:`flush`."""
        self._pending.append(record)

    def extend(self, records: Sequence[TrialRecord]) -> None:
        self._pending.extend(records)

    def flush(self) -> int:
        """Write and fsync all buffered rows; returns the durable row count."""
        if self._pending:
            columns, payloads = serialize_records(self._pending,
                                                  self._payload_offset)
            if self._compressed:
                frames, entries = compress_payload_blocks(
                    payloads, self._payload_offset, self._physical_end,
                    self._block_raw_bytes)
                self._payloads.write(frames)
                self._payloads.flush()
                os.fsync(self._payloads.fileno())
                self._blocks.extend(entries)
                self._physical_end += len(frames)
            else:
                self._payloads.write(payloads)
                self._payloads.flush()
                os.fsync(self._payloads.fileno())
                self._physical_end += len(payloads)
            self._columns.write(columns)
            self._columns.flush()
            os.fsync(self._columns.fileno())
            self.count += len(self._pending)
            self._payload_offset += len(payloads)
            self._pending = []
        return self.count

    def close(self) -> None:
        self._columns.close()
        self._payloads.close()

    def __enter__(self) -> "TrialStoreWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def record_dicts_to_records(entries: Sequence[Dict[str, object]],
                            space: ConfigSpace) -> List[TrialRecord]:
    """Rebuild :class:`TrialRecord` objects against *space* (values coerced)."""
    # local import: results.py already imports this module's readers.
    from repro.platform.results import record_from_dict

    return [record_from_dict(entry, space) for entry in entries]


def _fsync_directory(path: str) -> None:
    try:
        fd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def training_views(columns: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Zero-copy (objective, crashed) training views over mapped columns.

    ``objective`` is float64 with NaN for trials that have none (crashes),
    ``crashed`` a boolean view — the same contract as
    :meth:`ExplorationHistory.training_arrays`, served straight from the
    mapping without materializing records.
    """
    objective = columns["objective"]
    crashed = columns["crashed"].view(np.bool_)
    return objective, crashed


def payload_files_for(columns_path: str) -> Optional[str]:
    """The conventional sidecar path for *columns_path* (``.bin`` → ``.jsonl``)."""
    if columns_path.endswith(".bin"):
        return columns_path[:-len(".bin")] + ".jsonl"
    return None
