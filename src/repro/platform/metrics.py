"""Target metrics the specialization process can optimize.

A metric extracts a single objective value from an evaluation outcome and
knows its direction (maximize or minimize).  The platform and the search
algorithms only ever deal with the *objective* value, so any quantifiable
measure works — throughput, latency, memory footprint, or the paper's
throughput-minus-memory composite score of §4.4 (eq. 4).
"""

from __future__ import annotations

from typing import Optional

from repro.vm.simulator import EvaluationOutcome


class Metric:
    """Base class for optimization targets."""

    #: registry/reporting name.
    name = "metric"
    #: measurement unit for reports.
    unit = ""
    #: "maximize" or "minimize".
    direction = "maximize"

    def extract(self, outcome: EvaluationOutcome) -> Optional[float]:
        """Return the objective value of *outcome*, or None if it crashed."""
        raise NotImplementedError

    @property
    def maximize(self) -> bool:
        return self.direction == "maximize"

    def is_improvement(self, candidate: float, incumbent: Optional[float]) -> bool:
        """True when *candidate* is strictly better than *incumbent*."""
        if incumbent is None:
            return True
        if self.maximize:
            return candidate > incumbent
        return candidate < incumbent

    def worst_value(self) -> float:
        """A sentinel objective value strictly worse than any real measurement."""
        return float("-inf") if self.maximize else float("inf")

    def __repr__(self) -> str:
        return "{}(direction={})".format(type(self).__name__, self.direction)


class ThroughputMetric(Metric):
    """Maximize the application's measured throughput (req/s, Mop/s, ...)."""

    name = "throughput"
    direction = "maximize"

    def __init__(self, unit: str = "req/s") -> None:
        self.unit = unit

    def extract(self, outcome: EvaluationOutcome) -> Optional[float]:
        return None if outcome.crashed else outcome.metric_value


class LatencyMetric(Metric):
    """Minimize the application's measured per-operation latency."""

    name = "latency"
    direction = "minimize"

    def __init__(self, unit: str = "us/op") -> None:
        self.unit = unit

    def extract(self, outcome: EvaluationOutcome) -> Optional[float]:
        return None if outcome.crashed else outcome.metric_value


class MemoryFootprintMetric(Metric):
    """Minimize the resident memory of the booted image (Figure 10)."""

    name = "memory"
    unit = "MB"
    direction = "minimize"

    def extract(self, outcome: EvaluationOutcome) -> Optional[float]:
        if outcome.crashed or outcome.memory_mb is None:
            return None
        return outcome.memory_mb


class CompositeScoreMetric(Metric):
    """The throughput-memory score of §4.4: s = mXNorm(t) - mXNorm(m).

    Min-max normalization needs a reference range for throughput and memory.
    The ranges grow as the search observes new extremes, exactly like an
    online min-max normalizer; scores are always recomputable from the raw
    outcome series afterwards.
    """

    name = "score"
    unit = ""
    direction = "maximize"

    def __init__(self, throughput_range=(None, None), memory_range=(None, None)) -> None:
        self._t_min, self._t_max = throughput_range
        self._m_min, self._m_max = memory_range

    def _update_range(self, throughput: float, memory: float) -> None:
        self._t_min = throughput if self._t_min is None else min(self._t_min, throughput)
        self._t_max = throughput if self._t_max is None else max(self._t_max, throughput)
        self._m_min = memory if self._m_min is None else min(self._m_min, memory)
        self._m_max = memory if self._m_max is None else max(self._m_max, memory)

    @staticmethod
    def _normalize(value: float, low: Optional[float], high: Optional[float]) -> float:
        if low is None or high is None or high <= low:
            return 0.5
        return (value - low) / (high - low)

    def score(self, throughput: float, memory: float) -> float:
        """Compute the composite score for an explicit (throughput, memory) pair."""
        self._update_range(throughput, memory)
        return (self._normalize(throughput, self._t_min, self._t_max)
                - self._normalize(memory, self._m_min, self._m_max))

    def extract(self, outcome: EvaluationOutcome) -> Optional[float]:
        if outcome.crashed or outcome.metric_value is None or outcome.memory_mb is None:
            return None
        return self.score(outcome.metric_value, outcome.memory_mb)


def metric_for_application(application_name: str) -> Metric:
    """Return the metric the paper optimizes for *application_name*."""
    if application_name == "sqlite":
        return LatencyMetric(unit="us/op")
    if application_name == "npb":
        return ThroughputMetric(unit="Mop/s")
    return ThroughputMetric(unit="req/s")
