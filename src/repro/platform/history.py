"""Exploration history: everything the platform records about past trials.

Search algorithms interact with the platform through the history (§3.1):
which configurations were explored, their objective values, which ones
crashed and at which stage, and how much time each evaluation consumed.  The
history also provides the derived series the evaluation figures plot:
best-so-far curves over virtual time and windowed crash rates.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.config.encoding import ConfigEncoder
from repro.config.space import Configuration
from repro.nn.buffers import ensure_row_capacity
from repro.platform.metrics import Metric
from repro.vm.failures import FailureStage


class TrialRecord:
    """One evaluated configuration and everything measured about it."""

    def __init__(
        self,
        index: int,
        configuration: Configuration,
        objective: Optional[float],
        crashed: bool,
        failure_stage: FailureStage,
        failure_reason: str,
        metric_value: Optional[float],
        memory_mb: Optional[float],
        duration_s: float,
        started_at_s: float,
        build_skipped: bool = False,
        worker: int = 0,
    ) -> None:
        self.index = index
        self.configuration = configuration
        self.objective = objective
        self.crashed = crashed
        self.failure_stage = failure_stage
        self.failure_reason = failure_reason
        self.metric_value = metric_value
        self.memory_mb = memory_mb
        self.duration_s = duration_s
        self.started_at_s = started_at_s
        self.build_skipped = build_skipped
        #: index of the system-under-test worker that ran the trial.
        self.worker = worker

    @property
    def finished_at_s(self) -> float:
        """Virtual timestamp at which this evaluation completed."""
        return self.started_at_s + self.duration_s

    def __repr__(self) -> str:
        if self.crashed:
            return "TrialRecord(#{}, crashed at {})".format(self.index,
                                                            self.failure_stage.value)
        return "TrialRecord(#{}, objective={:.2f})".format(self.index, self.objective)


class ExplorationHistory:
    """Ordered collection of trial records for one search session.

    Membership tests and best-record queries are called once per candidate by
    the search algorithms (192 times per iteration with the default DeepTune
    pool), so both are maintained incrementally: a hash set indexes explored
    configurations and the best successful record is cached as records are
    added, keeping :meth:`contains_configuration` and :meth:`best_record` O(1)
    instead of O(n) scans.  The per-trial objective/crash columns consumed by
    :meth:`training_arrays` live in preallocated arrays grown by amortized
    doubling.
    """

    def __init__(self, metric: Metric) -> None:
        self.metric = metric
        self._records: List[TrialRecord] = []
        self._explored: Set[Configuration] = set()
        self._best: Optional[TrialRecord] = None
        self._crash_count = 0
        self._objective_buffer = np.empty(0, dtype=np.float64)
        self._crash_buffer = np.empty(0, dtype=bool)

    # -- collection protocol -----------------------------------------------------
    def add(self, record: TrialRecord) -> None:
        index = len(self._records)
        self._records.append(record)
        self._explored.add(record.configuration)
        if record.crashed:
            self._crash_count += 1
        elif record.objective is not None and (
                self._best is None
                or self.metric.is_improvement(record.objective, self._best.objective)):
            self._best = record
        self._objective_buffer = ensure_row_capacity(self._objective_buffer, index + 1)
        self._crash_buffer = ensure_row_capacity(self._crash_buffer, index + 1)
        self._objective_buffer[index] = (
            record.objective
            if (not record.crashed and record.objective is not None) else np.nan)
        self._crash_buffer[index] = record.crashed

    def add_batch(self, records: Sequence[TrialRecord]) -> List[TrialRecord]:
        """Ingest one batch of completed trials in virtual-completion-time order.

        Workers finish out of submission order, so the batch is stably sorted
        by :attr:`TrialRecord.finished_at_s` (submission order breaks ties)
        before ingestion and every record's ``index`` is rewritten to its
        session-global position.  This keeps the incumbent cache, the
        best-so-far series, and time-to-best semantics well-defined: a trial
        only becomes the incumbent from the moment it *completed* on the
        virtual time axis.  Returns the records in ingestion order.
        """
        ordered = sorted(records, key=lambda record: record.finished_at_s)
        for record in ordered:
            record.index = len(self._records)
            self.add(record)
        return ordered

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TrialRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TrialRecord:
        return self._records[index]

    @property
    def records(self) -> List[TrialRecord]:
        return list(self._records)

    def records_since(self, count: int) -> List[TrialRecord]:
        """Records appended after the first *count* — the incremental tail
        consumed by O(new trials) checkpoint persistence."""
        return self._records[count:]

    # -- bookkeeping ------------------------------------------------------------------
    def explored_configurations(self) -> List[Configuration]:
        return [record.configuration for record in self._records]

    def contains_configuration(self, configuration: Configuration) -> bool:
        return configuration in self._explored

    def successful_records(self) -> List[TrialRecord]:
        return [r for r in self._records if not r.crashed and r.objective is not None]

    def crashed_records(self) -> List[TrialRecord]:
        return [r for r in self._records if r.crashed]

    def crash_rate(self, window: Optional[int] = None) -> float:
        """Fraction of crashed trials, optionally over the last *window* trials."""
        if window is None:
            if not self._records:
                return 0.0
            return self._crash_count / float(len(self._records))
        records = self._records[-window:]
        if not records:
            return 0.0
        return sum(1 for r in records if r.crashed) / float(len(records))

    def total_elapsed_s(self) -> float:
        if not self._records:
            return 0.0
        return self._records[-1].finished_at_s

    # -- best configuration ---------------------------------------------------------------
    def best_record(self) -> Optional[TrialRecord]:
        """The best successful trial under the session's metric (O(1), cached)."""
        return self._best

    def best_objective(self) -> Optional[float]:
        best = self.best_record()
        return None if best is None else best.objective

    def time_to_best_s(self) -> Optional[float]:
        """Virtual seconds from session start to the completion of the best trial."""
        best = self.best_record()
        return None if best is None else best.finished_at_s

    def best_so_far_series(self) -> List[Tuple[float, float]]:
        """(finished_at_s, best objective so far) pairs over the session."""
        series: List[Tuple[float, float]] = []
        best: Optional[float] = None
        for record in self._records:
            if not record.crashed and record.objective is not None:
                if best is None or self.metric.is_improvement(record.objective, best):
                    best = record.objective
            if best is not None:
                series.append((record.finished_at_s, best))
        return series

    def objective_series(self) -> List[Tuple[float, Optional[float]]]:
        """(finished_at_s, objective or None for crashes) for every trial."""
        return [(r.finished_at_s, r.objective if not r.crashed else None)
                for r in self._records]

    def crash_rate_series(self, window: int = 25) -> List[Tuple[float, float]]:
        """(finished_at_s, windowed crash rate) pairs over the session.

        A rolling crash count replaces per-record ``flags[-window:]``
        re-slicing (which made the series O(n·window)): the flag leaving the
        window is subtracted as each new one arrives, so the whole series
        costs O(n) and produces the identical float divisions.
        """
        series: List[Tuple[float, float]] = []
        rolling = 0
        for position, record in enumerate(self._records):
            rolling += record.crashed
            if position >= window:
                rolling -= self._records[position - window].crashed
            occupied = min(position + 1, window)
            series.append((record.finished_at_s, rolling / float(occupied)))
        return series

    # -- machine-learning views --------------------------------------------------------------
    def training_arrays(self, encoder: ConfigEncoder,
                        normalize: bool = False) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (X, y, crashed) arrays for model training.

        Crashed trials have no objective; their ``y`` entry is NaN so callers
        can mask them out of the regression loss while keeping them for the
        crash-classification loss.

        ``y`` and ``crashed`` are **read-only zero-copy views** of the
        history's internal column buffers — no per-call copy, so the cost of
        assembling training targets stays flat as the history grows.  The
        views are stable: appends write past position ``n`` and buffer
        growth reallocates rather than mutating in place.  Callers needing a
        mutable array must copy explicitly.
        """
        n = len(self._records)
        configurations = [record.configuration for record in self._records]
        matrix = encoder.encode_batch(configurations)
        if normalize:
            matrix = encoder.normalize(matrix)
        objective = self._objective_buffer[:n]
        crashed = self._crash_buffer[:n]
        objective.flags.writeable = False
        crashed.flags.writeable = False
        return matrix, objective, crashed

    def summary(self) -> dict:
        """Aggregate statistics used by reports and tests."""
        best = self.best_record()
        return {
            "trials": len(self._records),
            "crashes": self._crash_count,
            "crash_rate": self.crash_rate(),
            "best_objective": None if best is None else best.objective,
            "best_index": None if best is None else best.index,
            "time_to_best_s": self.time_to_best_s(),
            "total_elapsed_s": self.total_elapsed_s(),
        }
