"""Session lifecycle: pluggable stop conditions and observers.

The search session's run loop used to hard-code two budget checks
(``iterations`` / ``time_budget_s``).  This module turns both into
:class:`StopCondition` objects — plus the incumbent-plateau condition long
sweeps want — and defines the :class:`SessionObserver` callback interface the
session notifies as it progresses.  The CLI uses an observer for its live
progress output, tests use :class:`CallbackObserver` for assertions, and the
checkpointing machinery hangs off ``on_checkpoint``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional


class StopCondition:
    """Decides when a search session is finished.

    Conditions are evaluated at batch boundaries against the *session* (its
    history and its execution backend), so they compose with resumed
    sessions for free: a restored history already counts toward the budget.
    """

    name = "stop"

    def should_stop(self, session) -> bool:
        raise NotImplementedError

    def remaining_trials(self, session) -> Optional[int]:
        """Upper bound on trials still to run (None = no trial-count bound).

        The run loop uses this to trim the final batch so iteration budgets
        are hit exactly even with ragged batch sizes.
        """
        return None

    def describe(self) -> Dict[str, object]:
        return {"condition": self.name}


class IterationBudget(StopCondition):
    """Stop once the history holds *iterations* trials (total, across resumes)."""

    name = "iterations"

    def __init__(self, iterations: int) -> None:
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        self.iterations = int(iterations)

    def should_stop(self, session) -> bool:
        return len(session.history) >= self.iterations

    def remaining_trials(self, session) -> Optional[int]:
        return max(0, self.iterations - len(session.history))

    def describe(self) -> Dict[str, object]:
        return {"condition": self.name, "iterations": self.iterations}


class TimeBudget(StopCondition):
    """Stop once the backend's virtual clock reaches *seconds*.

    Checked at batch boundaries, so a batched session may overshoot by at
    most one batch — with ``batch_size=1`` the historical per-trial check.
    """

    name = "time-budget"

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError("time budget must be positive")
        self.seconds = float(seconds)

    def should_stop(self, session) -> bool:
        return session.backend.now_s >= self.seconds

    def describe(self) -> Dict[str, object]:
        return {"condition": self.name, "seconds": self.seconds}


class IncumbentPlateau(StopCondition):
    """Stop after *patience* trials without a new incumbent.

    Counts completed trials since the best record entered the history (or
    since the session started while no successful trial exists yet).
    """

    name = "incumbent-plateau"

    def __init__(self, patience: int) -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.patience = int(patience)

    def should_stop(self, session) -> bool:
        best = session.history.best_record()
        best_index = -1 if best is None else best.index
        return (len(session.history) - 1 - best_index) >= self.patience

    def describe(self) -> Dict[str, object]:
        return {"condition": self.name, "patience": self.patience}


class SessionObserver:
    """Callback interface notified as a search session progresses.

    Every hook is a no-op by default; subclasses override what they need.
    Observers must not mutate session state — they exist for progress
    reporting, metrics, and tests.
    """

    def on_batch_start(self, session, batch_index: int, planned: int) -> None:
        """A new batch of *planned* proposals is about to be evaluated.

        Batch-mode sessions fire this once per barrier round; async sessions
        have no rounds and fire :meth:`on_dispatch` per proposal instead.
        """

    def on_dispatch(self, session, configuration, worker: int) -> None:
        """*configuration* was dispatched to *worker* (async execution).

        Fires at submission time, before the trial's outcome is known —
        the async counterpart of ``on_batch_start`` at trial granularity.
        """

    def on_trial(self, session, record) -> None:
        """One trial completed and entered the history (completion order)."""

    def on_new_incumbent(self, session, record) -> None:
        """*record* became the best successful trial seen so far."""

    def on_checkpoint(self, session, path: str) -> None:
        """Session state was checkpointed to *path*."""


class CallbackObserver(SessionObserver):
    """Adapter turning plain callables into an observer (handy in tests)."""

    def __init__(self,
                 on_batch_start: Optional[Callable] = None,
                 on_trial: Optional[Callable] = None,
                 on_new_incumbent: Optional[Callable] = None,
                 on_checkpoint: Optional[Callable] = None,
                 on_dispatch: Optional[Callable] = None) -> None:
        self._on_batch_start = on_batch_start
        self._on_trial = on_trial
        self._on_new_incumbent = on_new_incumbent
        self._on_checkpoint = on_checkpoint
        self._on_dispatch = on_dispatch

    def on_batch_start(self, session, batch_index, planned):
        if self._on_batch_start:
            self._on_batch_start(session, batch_index, planned)

    def on_dispatch(self, session, configuration, worker):
        if self._on_dispatch:
            self._on_dispatch(session, configuration, worker)

    def on_trial(self, session, record):
        if self._on_trial:
            self._on_trial(session, record)

    def on_new_incumbent(self, session, record):
        if self._on_new_incumbent:
            self._on_new_incumbent(session, record)

    def on_checkpoint(self, session, path):
        if self._on_checkpoint:
            self._on_checkpoint(session, path)
