"""The Wayfinder benchmarking platform.

The platform automates the core loop of §3.1: pick a configuration, build and
boot an image for it, benchmark the application, record the result, and ask
the search algorithm for the next configuration.  It also implements the
skip-build optimization (reuse the running image when only runtime parameters
changed), tracks a virtual wall clock so time budgets behave like the paper's
multi-hour sessions without actually waiting, and exposes the exploration
history that the search algorithms and the analysis code consume.
"""

from repro.platform.executor import (
    ExecutionBackend,
    SerialBackend,
    WorkerPoolBackend,
    make_backend,
)
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.platform.metrics import (
    CompositeScoreMetric,
    LatencyMetric,
    MemoryFootprintMetric,
    Metric,
    ThroughputMetric,
    metric_for_application,
)
from repro.platform.pipeline import BenchmarkingPipeline, VirtualClock
from repro.platform.runner import SearchSession, SessionResult

__all__ = [
    "TrialRecord",
    "ExplorationHistory",
    "Metric",
    "ThroughputMetric",
    "LatencyMetric",
    "MemoryFootprintMetric",
    "CompositeScoreMetric",
    "metric_for_application",
    "VirtualClock",
    "BenchmarkingPipeline",
    "ExecutionBackend",
    "SerialBackend",
    "WorkerPoolBackend",
    "make_backend",
    "SearchSession",
    "SessionResult",
]
