"""The build/boot/benchmark pipeline with its virtual wall clock.

For every configuration selected by the search algorithm the platform creates
a build task and a test task (§3.1).  The pipeline below runs both against
the simulated system under test, applies the skip-build optimization (if the
new configuration differs from the previously evaluated one only in runtime
parameters, the running image is reused), rejects configurations that violate
declared constraints without spending build time on them, and advances a
virtual clock so multi-hour search sessions complete in milliseconds of real
time while preserving the paper's time axis.
"""

from __future__ import annotations

from typing import Optional

from repro.config.space import Configuration
from repro.platform.history import TrialRecord
from repro.platform.metrics import Metric
from repro.vm.failures import FailureStage
from repro.vm.simulator import EvaluationOutcome, SystemSimulator


class VirtualClock:
    """A monotonically advancing simulated wall clock (seconds)."""

    def __init__(self, start_s: float = 0.0) -> None:
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        return self._now_s

    def advance(self, seconds: float) -> float:
        """Advance the clock by *seconds* and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now_s += seconds
        return self._now_s

    def restore(self, now_s: float) -> None:
        """Set the clock to an absolute time (checkpoint restoration only)."""
        self._now_s = float(now_s)


class BenchmarkingPipeline:
    """Evaluates configurations through the simulated system under test."""

    #: simulated seconds spent rejecting a constraint-violating configuration
    #: (the configuration tool refuses it almost immediately).
    CONSTRAINT_REJECT_S = 5.0

    def __init__(self, simulator: SystemSimulator, metric: Metric,
                 clock: Optional[VirtualClock] = None,
                 enable_skip_build: bool = True) -> None:
        self.simulator = simulator
        self.metric = metric
        self.clock = clock or VirtualClock()
        self.enable_skip_build = enable_skip_build
        self._last_running_configuration: Optional[Configuration] = None
        self._trial_count = 0
        self._builds_skipped = 0

    # -- introspection ------------------------------------------------------------
    @property
    def space(self):
        return self.simulator.os_model.space

    @property
    def trials_run(self) -> int:
        return self._trial_count

    @property
    def builds_skipped(self) -> int:
        return self._builds_skipped

    # -- checkpointing ------------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the pipeline's mutable state (clock, counters, image reuse)."""
        last = self._last_running_configuration
        return {
            "clock_now_s": self.clock.now_s,
            "trial_count": self._trial_count,
            "builds_skipped": self._builds_skipped,
            "last_running_configuration": None if last is None else last.as_dict(),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self.clock.restore(state["clock_now_s"])
        self._trial_count = int(state["trial_count"])
        self._builds_skipped = int(state["builds_skipped"])
        last = state.get("last_running_configuration")
        self._last_running_configuration = (
            None if last is None else Configuration(self.space, last))

    # -- evaluation ------------------------------------------------------------------
    def _can_reuse_image(self, configuration: Configuration) -> bool:
        if not self.enable_skip_build or self._last_running_configuration is None:
            return False
        return configuration.only_runtime_differs(self._last_running_configuration)

    def evaluate(self, configuration: Configuration) -> TrialRecord:
        """Run the build+test tasks for *configuration* and record the trial."""
        started_at = self.clock.now_s
        index = self._trial_count
        self._trial_count += 1

        violations = self.space.violations(configuration)
        if violations:
            duration = self.CONSTRAINT_REJECT_S
            self.clock.advance(duration)
            return TrialRecord(
                index=index,
                configuration=configuration,
                objective=None,
                crashed=True,
                failure_stage=FailureStage.BUILD,
                failure_reason="constraint violation: " + violations[0].message,
                metric_value=None,
                memory_mb=None,
                duration_s=duration,
                started_at_s=started_at,
            )

        reuse = self._can_reuse_image(configuration)
        outcome = self.simulator.evaluate(configuration, reuse_image=reuse)
        if reuse:
            self._builds_skipped += 1
        self.clock.advance(outcome.total_duration_s)

        if not outcome.crashed:
            # The image that is now up and running becomes the reuse baseline.
            self._last_running_configuration = configuration
        elif not reuse:
            # A fresh build/boot that failed leaves no image to reuse.
            self._last_running_configuration = None

        return self._record_from_outcome(index, configuration, outcome, started_at, reuse)

    def _record_from_outcome(self, index: int, configuration: Configuration,
                             outcome: EvaluationOutcome, started_at: float,
                             build_skipped: bool) -> TrialRecord:
        objective = self.metric.extract(outcome)
        return TrialRecord(
            index=index,
            configuration=configuration,
            objective=objective,
            crashed=outcome.crashed,
            failure_stage=outcome.failure_stage,
            failure_reason=outcome.failure_reason,
            metric_value=outcome.metric_value,
            memory_mb=outcome.memory_mb,
            duration_s=outcome.total_duration_s,
            started_at_s=started_at,
            build_skipped=build_skipped,
        )
