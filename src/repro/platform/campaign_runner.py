"""Fault-tolerant multi-process execution of experiment campaigns.

A :class:`CampaignRunner` takes a :class:`~repro.core.campaign.CampaignSpec`
and drives its expanded experiments to completion on a pool of OS processes
(``procs``), the way artifact-evaluation harnesses drive a paper's full
result matrix.  Each worker process wires its experiment with
:meth:`Wayfinder.from_spec`, checkpoints periodically through a shared
:class:`~repro.platform.results.ResultsStore` in the campaign directory,
and persists the finished exploration history there.

The campaign directory is the unit of fault tolerance.  A *manifest*
(``campaign.json``) records the campaign spec and the status of every
experiment, rewritten atomically as experiments finish, so a killed
campaign is resumable: :meth:`CampaignRunner.run` with ``resume=True``
skips experiments whose results are already on disk, re-enters experiments
that left a mid-run checkpoint through the bit-exact
:meth:`Wayfinder.resume` path, and starts the rest fresh.  Because every
experiment is a deterministic function of its spec, the per-experiment
records and summaries are byte-identical whatever the process count and
whether or not the campaign was interrupted — the property
``tests/test_campaign.py`` pins.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import traceback
from typing import Any, Callable, Dict, List, Optional

from repro.core.campaign import CampaignSpec
from repro.core.spec import ExperimentSpec
from repro.core.wayfinder import Wayfinder
from repro.platform.results import ResultsStore

MANIFEST_NAME = "campaign.json"
MANIFEST_FORMAT_VERSION = 1

#: terminal experiment status: results are on disk and will not be re-run.
STATUS_COMPLETE = "complete"
#: the experiment has not produced a stored history yet (it may have left a
#: checkpoint to resume from).
STATUS_PENDING = "pending"
#: the experiment raised; resume retries it.
STATUS_FAILED = "failed"


def _manifest_path(directory: str) -> str:
    return os.path.join(directory, MANIFEST_NAME)


def load_manifest(directory: str) -> Dict[str, Any]:
    """Load and validate the campaign manifest stored in *directory*."""
    path = _manifest_path(directory)
    with open(path) as handle:
        document = json.load(handle)
    if document.get("kind") != "campaign":
        raise ValueError("{} is not a campaign manifest".format(path))
    if document.get("format_version") != MANIFEST_FORMAT_VERSION:
        raise ValueError("unsupported campaign manifest version: {!r}".format(
            document.get("format_version")))
    return document


def _write_manifest(directory: str, document: Dict[str, Any]) -> str:
    """Atomically rewrite the manifest (tmp file + rename, like checkpoints)."""
    path = _manifest_path(directory)
    staging = path + ".tmp"
    with open(staging, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    os.replace(staging, path)
    return path


def _execute_experiment(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one experiment to completion inside a worker process.

    Resumes from the experiment's checkpoint when one exists (the bit-exact
    :meth:`Wayfinder.resume` path), otherwise starts fresh; either way the
    run checkpoints every ``checkpoint_every`` batches and finishes by
    persisting the exploration history.  Exceptions are captured and
    returned as a ``failed`` outcome so one broken grid point cannot take
    down the campaign.
    """
    spec_data = payload["spec"]
    try:
        spec = ExperimentSpec.from_dict(spec_data)
        store = ResultsStore(payload["directory"])
        checkpoint_path = store.checkpoint_path(spec.name)
        if os.path.exists(checkpoint_path):
            wayfinder = Wayfinder.resume(checkpoint_path)
        else:
            wayfinder = Wayfinder.from_spec(spec)
        wayfinder.enable_checkpointing(store, name=spec.name,
                                       every=payload["checkpoint_every"])
        result = wayfinder.specialize()
        summary = result.summary()
        # wall-clock overhead is the one nondeterministic field; dropping it
        # keeps stored results byte-identical across process counts/resumes.
        summary.pop("search_overhead_s", None)
        store.save_history(spec.name, result.history, metadata={
            "campaign": payload["campaign"],
            "experiment": spec.name,
            "application": spec.application,
            "algorithm": spec.algorithm,
            "seed": spec.seed,
            "favor": spec.favor,
            "metric": summary.get("metric"),
            "workers": spec.workers,
            "batch_size": spec.batch_size,
            "execution": spec.execution,
            "stop_reason": summary.get("stop_reason"),
        })
        return {"name": spec.name, "status": STATUS_COMPLETE,
                "summary": summary, "error": None}
    except Exception:
        return {"name": spec_data.get("name", "<unnamed>"),
                "status": STATUS_FAILED, "summary": None,
                "error": traceback.format_exc()}


class CampaignResult:
    """Final state of one :meth:`CampaignRunner.run` invocation."""

    def __init__(self, directory: str, manifest: Dict[str, Any]) -> None:
        self.directory = directory
        self.manifest = manifest

    @property
    def experiments(self) -> List[Dict[str, Any]]:
        return list(self.manifest["experiments"])

    def _by_status(self, status: str) -> List[Dict[str, Any]]:
        return [entry for entry in self.manifest["experiments"]
                if entry["status"] == status]

    @property
    def completed(self) -> List[Dict[str, Any]]:
        return self._by_status(STATUS_COMPLETE)

    @property
    def failed(self) -> List[Dict[str, Any]]:
        return self._by_status(STATUS_FAILED)

    @property
    def pending(self) -> List[Dict[str, Any]]:
        return self._by_status(STATUS_PENDING)

    @property
    def ok(self) -> bool:
        """True when every experiment of the grid completed."""
        return len(self.completed) == len(self.manifest["experiments"])

    def __repr__(self) -> str:
        return "CampaignResult(dir={!r}, complete={}, failed={}, pending={})".format(
            self.directory, len(self.completed), len(self.failed),
            len(self.pending))


class CampaignRunner:
    """Executes a campaign's experiment grid on a multiprocessing pool."""

    def __init__(self, campaign: CampaignSpec, directory: str, procs: int = 1,
                 checkpoint_every: int = 1) -> None:
        if procs < 1:
            raise ValueError("procs must be at least 1")
        if checkpoint_every < 1:
            raise ValueError("checkpoint cadence must be at least 1 batch")
        self.campaign = campaign
        self.directory = directory
        self.procs = procs
        self.checkpoint_every = checkpoint_every

    @classmethod
    def open(cls, directory: str, procs: int = 1,
             checkpoint_every: Optional[int] = None) -> "CampaignRunner":
        """Reattach to an existing campaign directory (for ``--resume``).

        The campaign spec and checkpoint cadence are read back from the
        manifest, so resuming needs nothing but the directory.
        """
        manifest = load_manifest(directory)
        campaign = CampaignSpec.from_dict(manifest["campaign"])
        if checkpoint_every is None:
            checkpoint_every = int(manifest.get("checkpoint_every", 1))
        return cls(campaign, directory, procs=procs,
                   checkpoint_every=checkpoint_every)

    # -- manifest handling -------------------------------------------------------
    def _fresh_manifest(self) -> Dict[str, Any]:
        return {
            "format_version": MANIFEST_FORMAT_VERSION,
            "kind": "campaign",
            "campaign": self.campaign.to_dict(),
            "checkpoint_every": self.checkpoint_every,
            "experiments": [
                {"name": spec.name, "spec": spec.to_dict(),
                 "status": STATUS_PENDING, "summary": None, "error": None}
                for spec in self.campaign.expand()
            ],
        }

    def _reconcile_manifest(self) -> Dict[str, Any]:
        """Merge the stored manifest into a fresh one for a resumed run.

        Completed experiments keep their status only while their stored
        history is actually present — a half-written campaign directory
        degrades to re-running, never to silently missing results.  Failed
        experiments are retried.
        """
        stored = load_manifest(self.directory)
        if stored["campaign"] != self.campaign.to_dict():
            raise ValueError(
                "campaign spec does not match the one stored in {}; resume "
                "the original campaign or use a fresh directory".format(
                    self.directory))
        previous = {entry["name"]: entry for entry in stored["experiments"]}
        store = ResultsStore(self.directory)
        manifest = self._fresh_manifest()
        for entry in manifest["experiments"]:
            old = previous.get(entry["name"])
            if old is None:
                continue
            if (old["status"] == STATUS_COMPLETE
                    and os.path.exists(store.history_path(entry["name"]))):
                entry.update(status=STATUS_COMPLETE,
                             summary=old.get("summary"), error=None)
        return manifest

    # -- running -----------------------------------------------------------------
    def run(self, resume: bool = False,
            max_experiments: Optional[int] = None,
            progress: Optional[Callable[[Dict[str, Any], int, int], None]] = None,
            ) -> CampaignResult:
        """Run (or continue) the campaign; returns its final state.

        With ``resume=True`` the manifest in the campaign directory decides
        what is left to do; without it the directory must not already hold a
        campaign.  *max_experiments* caps how many experiments this
        invocation executes (useful for smoke runs and for testing the
        resume path); the manifest keeps the rest ``pending``.  *progress*
        is called after each experiment with ``(outcome, done, total)``.
        """
        os.makedirs(self.directory, exist_ok=True)
        if resume and os.path.exists(_manifest_path(self.directory)):
            manifest = self._reconcile_manifest()
        elif os.path.exists(_manifest_path(self.directory)):
            raise ValueError(
                "{} already holds a campaign; pass resume=True to continue "
                "it or choose a fresh directory".format(self.directory))
        else:
            manifest = self._fresh_manifest()
        _write_manifest(self.directory, manifest)

        entries = {entry["name"]: entry for entry in manifest["experiments"]}
        todo = [entry for entry in manifest["experiments"]
                if entry["status"] != STATUS_COMPLETE]
        if max_experiments is not None:
            todo = todo[:max_experiments]
        payloads = [
            {"spec": entry["spec"], "directory": self.directory,
             "checkpoint_every": self.checkpoint_every,
             "campaign": self.campaign.name}
            for entry in todo
        ]

        done = 0
        total = len(payloads)

        def ingest(outcome: Dict[str, Any]) -> None:
            nonlocal done
            entry = entries[outcome["name"]]
            entry["status"] = outcome["status"]
            entry["summary"] = outcome["summary"]
            entry["error"] = outcome["error"]
            _write_manifest(self.directory, manifest)
            done += 1
            if progress is not None:
                progress(outcome, done, total)

        if self.procs == 1 or total <= 1:
            for payload in payloads:
                ingest(_execute_experiment(payload))
        else:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            with context.Pool(processes=min(self.procs, total)) as pool:
                for outcome in pool.imap_unordered(_execute_experiment,
                                                   payloads):
                    ingest(outcome)
        return CampaignResult(self.directory, manifest)
