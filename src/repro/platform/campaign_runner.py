"""Elastic, fault-tolerant execution of experiment campaigns.

A :class:`CampaignRunner` takes a :class:`~repro.core.campaign.CampaignSpec`
and drives its expanded experiments to completion the way artifact-evaluation
harnesses drive a paper's full result matrix — but with a *pull-based*
worker fabric instead of a push-based pool.  The campaign manifest
(``campaign.json``, atomically rewritten under a directory-wide lock) is the
single source of truth: workers **claim** experiments from it by taking a
*lease* with a deadline, renew the lease by heartbeat as the experiment
progresses (trial completions and checkpoint saves), and complete it with
an atomic manifest transition.  Nothing is ever assigned to a worker, so:

* a killed, preempted, or hung worker simply stops renewing its lease; any
  surviving worker reclaims the experiment once the deadline passes and
  resumes it bit-exactly from its last checkpoint;
* fleets are elastic — ``--procs`` may differ between invocations and even
  while a campaign is running (a second ``campaign run --resume`` on the
  same directory adds workers that claim from the same manifest);
* a failed experiment is retried with the campaign's
  :class:`~repro.platform.faults.RetryPolicy` (capped exponential backoff,
  deterministic jitter) and quarantined to ``failed-permanent`` after
  ``max_attempts`` failures, so one poisoned grid point degrades the report
  gracefully instead of aborting the grid.

Because every experiment is a deterministic function of its spec and
checkpoints restore bit-exactly, the per-experiment records and summaries
are byte-identical whatever the process count, interruption pattern, or
injected fault schedule — the property ``tests/test_campaign.py`` and
``tests/test_chaos.py`` pin.  Chaos mode (a ``chaos:`` block on the
campaign spec or ``--chaos-*`` CLI flags) wires a seeded
:class:`~repro.platform.faults.FaultInjector` into every worker to prove it.

Worker mutual exclusion uses an advisory ``flock`` on a lock file next to
the manifest, so the fabric assumes a shared (local) campaign directory; on
platforms without ``fcntl`` the lock degrades to a no-op and only
single-worker campaigns are safe.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.campaign import CampaignSpec
from repro.core.spec import ExperimentSpec
from repro.core.wayfinder import Wayfinder
from repro.platform.faults import (FaultInjector, RetryPolicy, WorkerKilled,
                                   validate_chaos)
from repro.platform.lifecycle import SessionObserver
from repro.platform.results import ResultsStore, atomic_write_text

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

MANIFEST_NAME = "campaign.json"
LOCK_NAME = ".campaign.lock"
MANIFEST_FORMAT_VERSION = 2

#: terminal experiment status: results are on disk and will not be re-run.
STATUS_COMPLETE = "complete"
#: the experiment has not produced a stored history yet (it may have left a
#: checkpoint to resume from).
STATUS_PENDING = "pending"
#: a worker holds a live lease on the experiment.
STATUS_LEASED = "leased"
#: the experiment raised; it is retried once its backoff delay passes.
STATUS_FAILED = "failed"
#: the experiment exhausted its retry budget and is quarantined.
STATUS_FAILED_PERMANENT = "failed-permanent"

TERMINAL_STATUSES = (STATUS_COMPLETE, STATUS_FAILED_PERMANENT)

#: default lease duration; heartbeats renew well inside it.
DEFAULT_LEASE_S = 30.0

#: idle worker poll interval while waiting on leases/backoffs.
_POLL_S = 0.05


def _manifest_path(directory: str) -> str:
    return os.path.join(directory, MANIFEST_NAME)


def _migrate_v1(document: Dict[str, Any]) -> Dict[str, Any]:
    """Upgrade a PR 4-era (version 1) manifest to the fabric layout."""
    for entry in document.get("experiments", []):
        entry.setdefault("attempts", 0)
        entry.setdefault("claims", 0)
        entry.setdefault("lease", None)
        entry.setdefault("retry_at", None)
    document["format_version"] = MANIFEST_FORMAT_VERSION
    document.setdefault("invocation", None)
    document.setdefault("state", "complete" if all(
        entry["status"] in TERMINAL_STATUSES
        for entry in document.get("experiments", [])) else "running")
    return document


def load_manifest(directory: str) -> Dict[str, Any]:
    """Load and validate the campaign manifest stored in *directory*."""
    path = _manifest_path(directory)
    with open(path) as handle:
        document = json.load(handle)
    if document.get("kind") != "campaign":
        raise ValueError("{} is not a campaign manifest".format(path))
    version = document.get("format_version")
    if version == 1:
        return _migrate_v1(document)
    if version != MANIFEST_FORMAT_VERSION:
        raise ValueError("unsupported campaign manifest version: {!r}".format(
            version))
    return document


def _write_manifest(directory: str, document: Dict[str, Any]) -> str:
    """Atomically (staged + fsync + rename) rewrite the manifest."""
    text = json.dumps(document, indent=2) + "\n"
    return atomic_write_text(_manifest_path(directory), text)


class LeaseLost(BaseException):
    """This worker's lease was reclaimed by another worker.

    Raised by the heartbeat when the manifest no longer carries this
    worker's fencing token — the worker was presumed dead (e.g. it hung
    past its lease deadline) and must abandon the experiment without
    touching the manifest.  Derives from :class:`BaseException` so the
    experiment's ``except Exception`` guard cannot convert it into a
    ``failed`` outcome.
    """


class _ManifestLock:
    """Advisory inter-process lock serializing manifest mutations."""

    def __init__(self, directory: str) -> None:
        self.path = os.path.join(directory, LOCK_NAME)
        self._handle = None

    def __enter__(self) -> "_ManifestLock":
        self._handle = open(self.path, "a+")
        if fcntl is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._handle is not None:
            if fcntl is not None:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None


def _invocation(manifest: Dict[str, Any]) -> Dict[str, Any]:
    return manifest.get("invocation") or {"budget": None, "started": []}


def _within_budget(entry: Dict[str, Any], invocation: Dict[str, Any]) -> bool:
    budget = invocation.get("budget")
    started = invocation.get("started") or []
    return (budget is None or entry["name"] in started
            or len(started) < budget)


def _open_work(manifest: Dict[str, Any], now: float) -> bool:
    """True while this invocation still has (or is waiting on) work.

    Open work is any non-terminal experiment that is either claimable
    within the invocation's budget (now, or after a lease/backoff expires)
    or leased with an unexpired deadline (someone is presumed working it).
    """
    invocation = _invocation(manifest)
    for entry in manifest["experiments"]:
        if entry["status"] in TERMINAL_STATUSES:
            continue
        if entry["status"] == STATUS_LEASED:
            lease = entry.get("lease") or {}
            if float(lease.get("deadline_s", 0.0)) > now:
                return True
        if _within_budget(entry, invocation):
            return True
    return False


def _claim_next(directory: str, lock: _ManifestLock, incarnation: int,
                lease_s: float) -> Tuple[Optional[Dict[str, Any]],
                                         Optional[float]]:
    """Atomically claim the next runnable experiment.

    Returns ``(claim, None)`` on success — *claim* carries the manifest
    entry plus the fencing ``token`` the claimant must present on every
    lease renewal and on completion.  Returns ``(None, wait_s)`` when work
    exists but is gated behind a live lease or a retry backoff, and
    ``(None, None)`` when this invocation has nothing left to do.
    """
    with lock:
        manifest = load_manifest(directory)
        invocation = _invocation(manifest)
        now = time.time()
        wait_until: Optional[float] = None
        for entry in manifest["experiments"]:
            if entry["status"] in TERMINAL_STATUSES:
                continue
            if entry["status"] == STATUS_LEASED:
                lease = entry.get("lease") or {}
                deadline = float(lease.get("deadline_s", 0.0))
                if deadline > now:
                    wait_until = deadline if wait_until is None else min(
                        wait_until, deadline)
                    continue
                # stale lease: the holder is dead or hung — reclaimable.
            if not _within_budget(entry, invocation):
                continue
            if entry["status"] == STATUS_FAILED:
                retry_at = entry.get("retry_at")
                if retry_at is not None and float(retry_at) > now:
                    wait_until = float(retry_at) if wait_until is None else min(
                        wait_until, float(retry_at))
                    continue
            entry["claims"] = int(entry.get("claims", 0)) + 1
            token = "{}:{}".format(incarnation, entry["claims"])
            entry["status"] = STATUS_LEASED
            entry["lease"] = {"worker": incarnation, "token": token,
                              "deadline_s": now + lease_s}
            started = list(invocation.get("started") or [])
            if entry["name"] not in started:
                started.append(entry["name"])
            if manifest.get("invocation") is not None:
                manifest["invocation"] = {
                    "budget": invocation.get("budget"), "started": started}
            _write_manifest(directory, manifest)
            return dict(entry, token=token), None
        if wait_until is None:
            return None, None
        return None, max(0.0, wait_until - now)


def _renew_lease(directory: str, lock: _ManifestLock, name: str, token: str,
                 lease_s: float) -> None:
    """Extend the lease deadline; raises :class:`LeaseLost` when fenced off."""
    with lock:
        manifest = load_manifest(directory)
        for entry in manifest["experiments"]:
            if entry["name"] != name:
                continue
            lease = entry.get("lease") or {}
            if entry["status"] != STATUS_LEASED or lease.get("token") != token:
                raise LeaseLost(name)
            lease["deadline_s"] = time.time() + lease_s
            entry["lease"] = lease
            _write_manifest(directory, manifest)
            return
    raise LeaseLost(name)


def _finish(directory: str, lock: _ManifestLock, name: str, token: str,
            outcome: Dict[str, Any],
            policy: RetryPolicy) -> Optional[Dict[str, Any]]:
    """Atomically transition a leased experiment to its outcome status.

    A completion becomes ``complete``; a failure increments the attempt
    counter and either schedules a retry (``failed`` + ``retry_at``) or
    quarantines the experiment (``failed-permanent``).  When the presented
    fencing *token* no longer matches the lease the result is discarded
    (another worker owns the experiment now) and ``None`` is returned.
    The write that makes the last experiment terminal also flips the
    manifest ``state`` to ``complete`` — campaign completion is a single
    atomic transition.
    """
    with lock:
        manifest = load_manifest(directory)
        for entry in manifest["experiments"]:
            if entry["name"] != name:
                continue
            lease = entry.get("lease") or {}
            if entry["status"] != STATUS_LEASED or lease.get("token") != token:
                return None
            entry["lease"] = None
            if outcome["status"] == STATUS_COMPLETE:
                entry.update(status=STATUS_COMPLETE,
                             summary=outcome["summary"], error=None,
                             retry_at=None)
            else:
                entry["attempts"] = int(entry.get("attempts", 0)) + 1
                entry["error"] = outcome["error"]
                entry["summary"] = None
                if policy.exhausted(entry["attempts"]):
                    entry["status"] = STATUS_FAILED_PERMANENT
                    entry["retry_at"] = None
                else:
                    entry["status"] = STATUS_FAILED
                    entry["retry_at"] = time.time() + policy.delay_s(
                        name, entry["attempts"])
            if all(e["status"] in TERMINAL_STATUSES
                   for e in manifest["experiments"]):
                manifest["state"] = "complete"
            _write_manifest(directory, manifest)
            return {"name": name, "status": entry["status"],
                    "summary": entry["summary"], "error": entry["error"]}
    return None


class _LeaseHeartbeat(SessionObserver):
    """Renews the worker's lease as the experiment progresses.

    Trial completions and checkpoint saves are the completion events of the
    fabric: each renews the lease (rate-limited to a third of the lease
    duration so the manifest is not rewritten per trial on fast spaces),
    and checkpoint saves double as the chaos injector's kill sites — a kill
    only ever fires *after* state was durably saved, so chaos runs always
    make forward progress.
    """

    def __init__(self, directory: str, lock: _ManifestLock, name: str,
                 token: str, lease_s: float,
                 injector: Optional[FaultInjector]) -> None:
        self.directory = directory
        self.lock = lock
        self.name = name
        self.token = token
        self.lease_s = lease_s
        self.injector = injector
        self._last_renewal = time.time()

    def _renew(self) -> None:
        now = time.time()
        if now - self._last_renewal < self.lease_s / 3.0:
            return
        _renew_lease(self.directory, self.lock, self.name, self.token,
                     self.lease_s)
        self._last_renewal = now

    def on_trial(self, session, record) -> None:
        self._renew()

    def on_checkpoint(self, session, path) -> None:
        self._renew()
        if self.injector is not None:
            self.injector.maybe_kill()


def _publish_to_zoo(directory: str, lock: _ManifestLock,
                    wayfinder: Wayfinder, spec: ExperimentSpec,
                    campaign_name: str, result) -> None:
    """Persist a completed experiment's trained surrogate into the zoo.

    Only DeepTune experiments publish (the model is the search's own
    surrogate); the entry — model weights plus the Figure 5 parameter-
    importance vector of the run's history — goes to ``<directory>/zoo/``
    keyed by (application, space fingerprint), read-modify-written under
    the manifest lock so concurrent workers cannot interleave index
    updates.  Publication is strictly best-effort: a zoo failure must
    never turn a completed experiment into a failed one, so every error
    is swallowed here.
    """
    try:
        from repro.deeptune.importance import parameter_importance
        from repro.deeptune.transfer import ZOO_DIR_NAME, publish_zoo_entry

        encoder = getattr(wayfinder.algorithm, "encoder", None)
        model = wayfinder.trained_model()
        if encoder is None or model is None or spec.algorithm != "deeptune":
            return
        features, objectives, _ = result.history.training_arrays(encoder)
        importance = parameter_importance(encoder, features, objectives)
        with lock:
            publish_zoo_entry(
                os.path.join(directory, ZOO_DIR_NAME), spec.application,
                encoder, model, importance, metadata={
                    "experiment": spec.name,
                    "campaign": campaign_name,
                    "algorithm": spec.algorithm,
                    "seed": spec.seed,
                })
    except Exception:  # noqa: BLE001 - zoo writes are best-effort
        pass


def _run_claimed(directory: str, lock: _ManifestLock, claim: Dict[str, Any],
                 checkpoint_every: int, campaign_name: str, lease_s: float,
                 injector: Optional[FaultInjector],
                 observer_factory: Optional[Callable[[Dict[str, Any]],
                                                     Any]] = None,
                 ) -> Dict[str, Any]:
    """Run one claimed experiment to completion inside the claiming worker.

    Resumes from the experiment's newest *valid* checkpoint when one exists
    (a torn/corrupted checkpoint falls back to the previous good one, or to
    a fresh start), checkpoints every ``checkpoint_every`` batches, and
    finishes by persisting the exploration history.  Exceptions are
    captured and returned as a ``failed`` outcome so one broken grid point
    cannot take down the campaign; injected deaths and lost leases are
    :class:`BaseException`\\ s and propagate to the worker loop.

    *observer_factory*, when given, is called with the manifest *claim*
    and returns extra :class:`SessionObserver` instances attached next to
    the lease heartbeat — the hook the tuning service uses to bridge
    session events onto its per-job subscription queues without the
    engine knowing the service exists.
    """
    spec_data = claim["spec"]
    name = spec_data.get("name", "<unnamed>")
    try:
        if injector is not None:
            injector.maybe_fail_startup(name)
        spec = ExperimentSpec.from_dict(spec_data)
        store = ResultsStore(directory, fault_injector=injector)
        checkpoint_path = store.latest_valid_checkpoint(spec.name)
        if checkpoint_path is not None:
            wayfinder = Wayfinder.resume(checkpoint_path)
        else:
            wayfinder = Wayfinder.from_spec(spec)
        wayfinder.enable_checkpointing(store, name=spec.name,
                                       every=checkpoint_every)
        wayfinder.add_observer(_LeaseHeartbeat(
            directory, lock, spec.name, claim["token"], lease_s, injector))
        if observer_factory is not None:
            for observer in observer_factory(claim) or ():
                wayfinder.add_observer(observer)
        result = wayfinder.specialize()
        summary = result.summary()
        # wall-clock overhead is the one nondeterministic field; dropping it
        # keeps stored results byte-identical across process counts/resumes.
        summary.pop("search_overhead_s", None)
        # donor provenance is deterministic (a function of the spec and the
        # external zoo bytes) and survives resume via the algorithm state,
        # so it is safe inside the byte-equality-pinned summary.
        provenance = getattr(wayfinder.algorithm, "provenance", None)
        if provenance is not None:
            summary["warm_start"] = provenance
        store.save_history(spec.name, result.history, metadata={
            "campaign": campaign_name,
            "experiment": spec.name,
            "application": spec.application,
            "algorithm": spec.algorithm,
            "seed": spec.seed,
            "favor": spec.favor,
            "metric": summary.get("metric"),
            "workers": spec.workers,
            "batch_size": spec.batch_size,
            "execution": spec.execution,
            "stop_reason": summary.get("stop_reason"),
        })
        _publish_to_zoo(directory, lock, wayfinder, spec, campaign_name,
                        result)
        return {"name": spec.name, "status": STATUS_COMPLETE,
                "summary": summary, "error": None}
    except Exception:
        return {"name": name, "status": STATUS_FAILED, "summary": None,
                "error": traceback.format_exc()}


def _worker_loop(payload: Dict[str, Any],
                 on_outcome: Optional[Callable[[Dict[str, Any]], None]] = None,
                 observer_factory: Optional[Callable[[Dict[str, Any]],
                                                     Any]] = None,
                 ) -> None:
    """The pull loop one worker runs until the invocation has no open work.

    This is *the* claim/execute loop of the fabric — the CLI's campaign
    workers (inline and subprocess) and the tuning service's job executor
    all drive campaigns through it, so lease, retry, and chaos semantics
    cannot drift between front-ends.

    Claims experiments from the manifest, runs them under a heartbeat, and
    transitions them to their outcome.  An injected death in a subprocess
    worker ``os._exit``\\ s from inside the injector; in an in-process
    worker it surfaces here as :class:`WorkerKilled` and is treated exactly
    like a process death — the lease is abandoned to expire, and the loop
    continues as a fresh worker incarnation (the "replacement" worker).
    """
    directory = payload["directory"]
    lease_s = payload["lease_s"]
    policy = RetryPolicy.from_dict(payload["retry"])
    incarnation = payload["incarnation"]
    inline = payload.get("inline", False)
    injector = FaultInjector.from_config(payload.get("chaos"),
                                         incarnation=incarnation)
    if injector is not None and not inline:
        injector.hard_exit = True
    lock = _ManifestLock(directory)
    while True:
        claim, wait_s = _claim_next(directory, lock, incarnation, lease_s)
        if claim is None:
            if wait_s is None:
                return
            time.sleep(min(max(wait_s, 0.0), _POLL_S) or _POLL_S)
            continue
        try:
            outcome = _run_claimed(
                directory, lock, claim, payload["checkpoint_every"],
                payload["campaign"], lease_s, injector,
                observer_factory=observer_factory)
            recorded = _finish(directory, lock, claim["name"], claim["token"],
                               outcome, policy)
            if recorded is not None and on_outcome is not None:
                on_outcome(recorded)
            if injector is not None:
                # an experiment transition is a completion event too
                injector.maybe_kill()
        except LeaseLost:
            continue  # fenced off: another worker owns the experiment now
        except WorkerKilled:
            # simulated kill -9 (in-process worker): abandon the lease and
            # come back as the next incarnation, like a respawned process.
            incarnation += 1
            injector = FaultInjector.from_config(payload.get("chaos"),
                                                 incarnation=incarnation)


def _worker_main(payload: Dict[str, Any]) -> None:
    """Subprocess entry point (top-level so it survives spawn pickling)."""
    _worker_loop(payload)


class CampaignResult:
    """Final state of one :meth:`CampaignRunner.run` invocation."""

    def __init__(self, directory: str, manifest: Dict[str, Any]) -> None:
        self.directory = directory
        self.manifest = manifest

    @property
    def experiments(self) -> List[Dict[str, Any]]:
        return list(self.manifest["experiments"])

    def _by_status(self, *statuses: str) -> List[Dict[str, Any]]:
        return [entry for entry in self.manifest["experiments"]
                if entry["status"] in statuses]

    @property
    def completed(self) -> List[Dict[str, Any]]:
        return self._by_status(STATUS_COMPLETE)

    @property
    def failed(self) -> List[Dict[str, Any]]:
        """Experiments whose last attempt failed (quarantined ones included)."""
        return self._by_status(STATUS_FAILED, STATUS_FAILED_PERMANENT)

    @property
    def quarantined(self) -> List[Dict[str, Any]]:
        """Experiments that exhausted their retry budget."""
        return self._by_status(STATUS_FAILED_PERMANENT)

    @property
    def pending(self) -> List[Dict[str, Any]]:
        return self._by_status(STATUS_PENDING)

    @property
    def ok(self) -> bool:
        """True when every experiment of the grid completed."""
        return len(self.completed) == len(self.manifest["experiments"])

    def __repr__(self) -> str:
        return "CampaignResult(dir={!r}, complete={}, failed={}, pending={})".format(
            self.directory, len(self.completed), len(self.failed),
            len(self.pending))


class CampaignRunner:
    """Executes a campaign's grid on an elastic pull-based worker fabric."""

    def __init__(self, campaign: CampaignSpec, directory: str, procs: int = 1,
                 checkpoint_every: int = 1, lease_s: float = DEFAULT_LEASE_S,
                 retry: Optional[RetryPolicy] = None,
                 chaos: Optional[Dict[str, Any]] = None) -> None:
        if procs < 1:
            raise ValueError("procs must be at least 1")
        if checkpoint_every < 1:
            raise ValueError("checkpoint cadence must be at least 1 batch")
        if lease_s <= 0:
            raise ValueError("lease duration must be positive")
        self.campaign = campaign
        self.directory = directory
        self.procs = procs
        self.checkpoint_every = checkpoint_every
        self.lease_s = float(lease_s)
        self.retry = retry if retry is not None else RetryPolicy()
        # the spec's chaos block is the baseline; an explicit chaos argument
        # (the CLI's --chaos-* flags) patches over it for this runner only.
        merged = dict(campaign.chaos or {})
        merged.update(chaos or {})
        self.chaos = validate_chaos(merged) if merged else None

    @classmethod
    def open(cls, directory: str, procs: int = 1,
             checkpoint_every: Optional[int] = None,
             lease_s: Optional[float] = None,
             retry: Optional[RetryPolicy] = None,
             chaos: Optional[Dict[str, Any]] = None) -> "CampaignRunner":
        """Reattach to an existing campaign directory (for ``--resume``).

        The campaign spec and checkpoint cadence are read back from the
        manifest, so resuming needs nothing but the directory — and the
        worker count may freely differ from the previous invocation's.
        """
        manifest = load_manifest(directory)
        campaign = CampaignSpec.from_dict(manifest["campaign"])
        if checkpoint_every is None:
            checkpoint_every = int(manifest.get("checkpoint_every", 1))
        return cls(campaign, directory, procs=procs,
                   checkpoint_every=checkpoint_every,
                   lease_s=DEFAULT_LEASE_S if lease_s is None else lease_s,
                   retry=retry, chaos=chaos)

    # -- manifest handling -------------------------------------------------------
    def _fresh_entry(self, spec: ExperimentSpec) -> Dict[str, Any]:
        return {"name": spec.name, "spec": spec.to_dict(),
                "status": STATUS_PENDING, "summary": None, "error": None,
                "attempts": 0, "claims": 0, "lease": None, "retry_at": None}

    def _fresh_manifest(self) -> Dict[str, Any]:
        return {
            "format_version": MANIFEST_FORMAT_VERSION,
            "kind": "campaign",
            "campaign": self.campaign.to_dict(),
            "checkpoint_every": self.checkpoint_every,
            "state": "running",
            "invocation": None,
            "experiments": [self._fresh_entry(spec)
                            for spec in self.campaign.expand()],
        }

    @staticmethod
    def _campaign_identity(data: Dict[str, Any]) -> Dict[str, Any]:
        # the chaos block configures fault injection, not the grid: resuming
        # with different chaos settings is legitimate (e.g. a clean rerun of
        # a chaos campaign), so it is excluded from the identity check.
        return {key: value for key, value in data.items() if key != "chaos"}

    def _reconcile_manifest(self) -> Dict[str, Any]:
        """Merge the stored manifest into a fresh one for a resumed run.

        Completed experiments keep their status only while their stored
        history is actually present — a half-written campaign directory
        degrades to re-running, never to silently missing results.  Live
        leases are preserved (a concurrent invocation may be working them);
        expired ones are cleared.  Failed experiments keep their attempt
        counters and backoff; quarantined ones get a fresh retry budget —
        an explicit resume is the operator asking for another try.
        """
        stored = load_manifest(self.directory)
        if (self._campaign_identity(stored["campaign"])
                != self._campaign_identity(self.campaign.to_dict())):
            raise ValueError(
                "campaign spec does not match the one stored in {}; resume "
                "the original campaign or use a fresh directory".format(
                    self.directory))
        previous = {entry["name"]: entry for entry in stored["experiments"]}
        store = ResultsStore(self.directory)
        manifest = self._fresh_manifest()
        now = time.time()
        for entry in manifest["experiments"]:
            old = previous.get(entry["name"])
            if old is None:
                continue
            status = old["status"]
            entry["attempts"] = int(old.get("attempts", 0))
            entry["claims"] = int(old.get("claims", 0))
            if (status == STATUS_COMPLETE
                    and os.path.exists(store.history_path(entry["name"]))):
                entry.update(status=STATUS_COMPLETE,
                             summary=old.get("summary"), error=None)
            elif status == STATUS_LEASED:
                lease = old.get("lease") or {}
                if float(lease.get("deadline_s", 0.0)) > now:
                    entry.update(status=STATUS_LEASED, lease=lease,
                                 error=old.get("error"))
            elif status == STATUS_FAILED:
                entry.update(status=STATUS_FAILED, error=old.get("error"),
                             retry_at=old.get("retry_at"))
            elif status == STATUS_FAILED_PERMANENT:
                entry.update(error=old.get("error"), attempts=0)
        return manifest

    # -- running -----------------------------------------------------------------
    def _prepare_manifest(self, resume: bool,
                          max_experiments: Optional[int]) -> Dict[str, Any]:
        if resume and os.path.exists(_manifest_path(self.directory)):
            manifest = self._reconcile_manifest()
        elif os.path.exists(_manifest_path(self.directory)):
            raise ValueError(
                "{} already holds a campaign; pass resume=True to continue "
                "it or choose a fresh directory".format(self.directory))
        else:
            manifest = self._fresh_manifest()
        manifest["state"] = "complete" if all(
            entry["status"] in TERMINAL_STATUSES
            for entry in manifest["experiments"]) else "running"
        manifest["invocation"] = {"budget": max_experiments, "started": []}
        _write_manifest(self.directory, manifest)
        return manifest

    def _worker_payload(self, incarnation: int, inline: bool) -> Dict[str, Any]:
        return {"directory": self.directory, "incarnation": incarnation,
                "lease_s": self.lease_s, "retry": self.retry.to_dict(),
                "chaos": self.chaos, "checkpoint_every": self.checkpoint_every,
                "campaign": self.campaign.name, "inline": inline}

    def _finalize(self) -> Dict[str, Any]:
        with _ManifestLock(self.directory):
            manifest = load_manifest(self.directory)
            manifest["invocation"] = None
            manifest["state"] = "complete" if all(
                entry["status"] in TERMINAL_STATUSES
                for entry in manifest["experiments"]) else "running"
            _write_manifest(self.directory, manifest)
        return manifest

    def prepare(self, resume: bool = False,
                max_experiments: Optional[int] = None) -> Dict[str, Any]:
        """Materialize (or reconcile) the campaign manifest without running.

        This is the first half of :meth:`run`, exposed so a front-end can
        make a campaign durable *before* any worker touches it — the tuning
        service writes the manifest at submission time, which is what makes
        a queued-but-not-yet-started job recoverable from disk alone after
        a server crash.  Safe to call again later with ``resume=True``.
        """
        os.makedirs(self.directory, exist_ok=True)
        with _ManifestLock(self.directory):
            return self._prepare_manifest(resume, max_experiments)

    def run(self, resume: bool = False,
            max_experiments: Optional[int] = None,
            progress: Optional[Callable[[Dict[str, Any], int, int], None]] = None,
            observer_factory: Optional[Callable[[Dict[str, Any]],
                                                Any]] = None,
            ) -> CampaignResult:
        """Run (or continue) the campaign; returns its final state.

        With ``resume=True`` the manifest in the campaign directory decides
        what is left to do; without it the directory must not already hold a
        campaign.  *max_experiments* caps how many distinct experiments this
        invocation claims (useful for smoke runs and for testing the resume
        path); the manifest keeps the rest ``pending``.  *progress* is
        called after each experiment reaches a terminal or retryable state
        with ``(outcome, done, total)``.  *observer_factory* (inline
        fleets only: observers cannot cross a process boundary) is called
        with each manifest claim and returns extra session observers to
        attach — the tuning service's event bridge.
        """
        if observer_factory is not None and self.procs != 1:
            raise ValueError(
                "observer_factory requires an inline fleet (procs=1): "
                "observers cannot be sent to subprocess workers")
        manifest = self.prepare(resume, max_experiments)

        todo = [entry for entry in manifest["experiments"]
                if entry["status"] not in TERMINAL_STATUSES]
        total = len(todo) if max_experiments is None else min(
            len(todo), max_experiments)
        done = 0

        def report(outcome: Dict[str, Any]) -> None:
            nonlocal done
            if outcome["status"] in TERMINAL_STATUSES:
                done += 1
            if progress is not None:
                progress(outcome, done, total)

        if self.procs == 1:
            _worker_loop(self._worker_payload(incarnation=0, inline=True),
                         on_outcome=report,
                         observer_factory=observer_factory)
        else:
            self._run_fleet(report)
        return CampaignResult(self.directory, self._finalize())

    def _run_fleet(self, report: Callable[[Dict[str, Any]], None]) -> None:
        """Spawn, monitor, and replace subprocess workers until drained.

        Workers exit on their own once the invocation has no open work; the
        parent's only jobs are respawning replacements for dead workers
        while open work remains (so a chaos kill or preemption never
        strands the campaign) and folding manifest transitions into the
        *report* callback.
        """
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        incarnation = 0
        workers: List[multiprocessing.Process] = []
        reported: Dict[str, str] = {}

        def spawn() -> None:
            nonlocal incarnation
            process = context.Process(
                target=_worker_main,
                args=(self._worker_payload(incarnation, inline=False),))
            process.daemon = True
            process.start()
            incarnation += 1
            workers.append(process)

        def scan() -> bool:
            manifest = load_manifest(self.directory)
            for entry in manifest["experiments"]:
                status = entry["status"]
                if status in (STATUS_PENDING, STATUS_LEASED):
                    continue
                marker = "{}:{}".format(status, entry.get("attempts", 0))
                if reported.get(entry["name"]) != marker:
                    reported[entry["name"]] = marker
                    report({"name": entry["name"], "status": status,
                            "summary": entry["summary"],
                            "error": entry["error"]})
            return _open_work(manifest, time.time())

        manifest = load_manifest(self.directory)
        # seed the reported map so resumed campaigns do not re-announce
        # experiments finished by previous invocations
        for entry in manifest["experiments"]:
            if entry["status"] not in (STATUS_PENDING, STATUS_LEASED):
                reported[entry["name"]] = "{}:{}".format(
                    entry["status"], entry.get("attempts", 0))
        for _ in range(min(self.procs,
                           max(1, sum(1 for e in manifest["experiments"]
                                      if e["status"] not in TERMINAL_STATUSES)))):
            spawn()
        while True:
            open_work = scan()
            workers[:] = [w for w in workers if w.is_alive()]
            if not open_work and not workers:
                break
            if open_work:
                while len(workers) < self.procs:
                    spawn()
            time.sleep(_POLL_S)
        scan()
