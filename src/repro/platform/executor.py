"""Execution backends: how proposed configurations are evaluated.

The search session talks to an :class:`ExecutionBackend` through a
*completion-event* interface — :meth:`ExecutionBackend.submit` dispatches one
configuration to an idle system-under-test worker and
:meth:`ExecutionBackend.next_completion` returns the earliest-finishing
in-flight trial — and both execution modes are driven through it:

* **batch** mode (:meth:`run_batch`) keeps the historical barrier semantics:
  a whole batch is dispatched by greedy list scheduling, every worker clock
  is advanced to the session clock at the batch start, and the batch's
  records are returned together in submission order.  The implementation
  sits on top of submit/next_completion but is bit-identical to the
  pre-event-loop engine (same dispatch order, same RNG consumption, same
  timestamps).
* **async** mode never forms a barrier: the session submits one proposal per
  idle worker and pops completions one at a time, so per-worker clocks
  advance independently and a fast worker never idles behind a straggler.

Two backends are provided:

* :class:`SerialBackend` drives a single
  :class:`~repro.platform.pipeline.BenchmarkingPipeline` one configuration at
  a time — the platform's historical behaviour, kept bit-identical so that a
  ``workers=1, batch_size=1`` session reproduces the sequential loop trial
  for trial.
* :class:`WorkerPoolBackend` models a fleet of N system-under-test machines.
  Each worker owns a full :class:`BenchmarkingPipeline` — its own virtual
  clock and its own skip-build state (a worker can only reuse an image *it*
  has booted) — while all workers share one
  :class:`~repro.vm.simulator.SystemSimulator`.  Sharing the simulator means
  the measurement-noise RNG stream is consumed in dispatch order, so with
  ``enable_skip_build=False`` the *outcome* of evaluating a given dispatch
  sequence does not depend on how many workers it was spread across; only
  the time axis does.  With skip-build enabled (the default), image reuse
  is inherently per-worker state — a variant the serial pipeline would have
  reused may be cold-built on a different worker — so durations and the
  build/boot failure masking of reused images can legitimately differ
  between worker counts.

Because the system under test is simulated, a trial's outcome is computed
eagerly at :meth:`submit` time (consuming the shared noise RNG in dispatch
order and advancing the worker's clock past the trial); ``next_completion``
only decides *when* the session learns the outcome and when the worker
becomes free again.  In-flight trials are therefore first-class checkpoint
state: :meth:`export_state` snapshots them so a checkpoint taken at any
completion event resumes record-for-record identically.

Clock-merge semantics: a trial's timestamps come from the clock of the worker
it ran on, and the session-level clock is the maximum over all worker clocks.
In batch mode every worker clock is advanced to the session clock at the
start of a batch (workers idle at the barrier); per-worker busy virtual time
is tracked so the idle share of every worker's timeline — and the
``worker_utilization`` the session reports — is well-defined in both modes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config.space import Configuration
from repro.platform.history import TrialRecord
from repro.platform.metrics import Metric
from repro.platform.pipeline import BenchmarkingPipeline, VirtualClock
from repro.vm.simulator import SystemSimulator

#: the scheduling policies the execution stack implements — the canonical
#: list; the session, the experiment spec, the campaign axis, and the CLI
#: all validate against this tuple.
EXECUTION_MODES = ("batch", "async")


class ExecutionBackend:
    """Evaluates configurations for a search session via completion events."""

    name = "backend"

    #: number of system-under-test workers the backend models.
    workers = 1

    @property
    def space(self):
        """The configuration space of the system under test."""
        raise NotImplementedError

    @property
    def metric(self) -> Metric:
        raise NotImplementedError

    @property
    def now_s(self) -> float:
        """Session-level virtual time (seconds)."""
        raise NotImplementedError

    @property
    def trials_run(self) -> int:
        raise NotImplementedError

    @property
    def builds_skipped(self) -> int:
        raise NotImplementedError

    # -- completion-event interface ---------------------------------------------
    def idle_workers(self) -> List[int]:
        """Indices of workers with no trial in flight, ascending."""
        raise NotImplementedError

    def has_idle_worker(self) -> bool:
        return bool(self.idle_workers())

    @property
    def in_flight(self) -> int:
        """Number of submitted trials whose completion has not been popped."""
        raise NotImplementedError

    def pending_configurations(self) -> List[Configuration]:
        """Configurations of the in-flight trials, in submission order.

        The session passes these to the algorithm's pending-aware
        ``propose`` so async proposals dedupe against work already running.
        """
        raise NotImplementedError

    def submit(self, configuration: Configuration) -> int:
        """Dispatch *configuration* to the earliest-clock idle worker.

        Returns the worker index.  Raises :class:`RuntimeError` when no
        worker is idle — the session must pop a completion first.
        """
        raise NotImplementedError

    def next_completion(self) -> TrialRecord:
        """Pop and return the earliest-finishing in-flight trial.

        Ties on the virtual finish time break toward the lower worker index,
        matching the greedy list scheduler's tie-breaking so batch mode can
        be driven through the same interface bit-identically.
        """
        raise NotImplementedError

    # -- batch driver -------------------------------------------------------------
    def run_batch(self, configurations: Sequence[Configuration]) -> List[TrialRecord]:
        """Evaluate *configurations* as one barrier batch; records in submission order.

        Submission order (not completion order) keeps the observation stream
        seen by the search algorithm independent of the worker count; the
        history re-orders by virtual completion time on ingestion
        (:meth:`ExplorationHistory.add_batch`).
        """
        raise NotImplementedError

    # -- accounting ---------------------------------------------------------------
    @property
    def worker_busy_s(self) -> List[float]:
        """Virtual seconds each worker spent evaluating (idle time excluded)."""
        raise NotImplementedError

    @property
    def worker_utilization(self) -> List[float]:
        """Busy fraction of each worker's session timeline (virtual time).

        Deterministic — it is derived entirely from virtual clocks — so it is
        safe to store in byte-equality-pinned summaries.  An empty session
        reports full utilization (no timeline to have idled on).
        """
        elapsed = self.now_s
        if elapsed <= 0.0:
            return [1.0] * self.workers
        return [busy / elapsed for busy in self.worker_busy_s]

    def export_state(self) -> dict:
        """Snapshot worker clocks, skip-build state, in-flight trials, and the
        simulator RNG."""
        raise NotImplementedError

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        raise NotImplementedError


def _record_to_dict(record: TrialRecord) -> dict:
    # Imported here to keep the module importable without the results layer
    # (which imports nothing from this module, so no cycle either way).
    from repro.platform.results import record_to_dict

    return record_to_dict(record)


def _record_from_dict(entry: dict, space) -> TrialRecord:
    from repro.platform.results import record_from_dict

    return record_from_dict(entry, space)


class SerialBackend(ExecutionBackend):
    """One system under test, evaluated strictly sequentially."""

    name = "serial"
    workers = 1

    def __init__(self, pipeline: BenchmarkingPipeline) -> None:
        self.pipeline = pipeline
        self._in_flight: List[TrialRecord] = []
        self._busy_s = 0.0

    @property
    def space(self):
        return self.pipeline.space

    @property
    def metric(self) -> Metric:
        return self.pipeline.metric

    @property
    def now_s(self) -> float:
        return self.pipeline.clock.now_s

    @property
    def trials_run(self) -> int:
        return self.pipeline.trials_run

    @property
    def builds_skipped(self) -> int:
        return self.pipeline.builds_skipped

    # -- completion events -------------------------------------------------------
    def idle_workers(self) -> List[int]:
        return [] if self._in_flight else [0]

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    def pending_configurations(self) -> List[Configuration]:
        return [record.configuration for record in self._in_flight]

    def submit(self, configuration: Configuration) -> int:
        if self._in_flight:
            raise RuntimeError("the serial backend already has a trial in flight")
        record = self.pipeline.evaluate(configuration)
        self._busy_s += record.duration_s
        self._in_flight.append(record)
        return 0

    def next_completion(self) -> TrialRecord:
        if not self._in_flight:
            raise RuntimeError("no trial in flight")
        return self._in_flight.pop(0)

    def run_batch(self, configurations: Sequence[Configuration]) -> List[TrialRecord]:
        records = []
        for configuration in configurations:
            self.submit(configuration)
            records.append(self.next_completion())
        return records

    # -- accounting / checkpointing ----------------------------------------------
    @property
    def worker_busy_s(self) -> List[float]:
        return [self._busy_s]

    def export_state(self) -> dict:
        return {
            "kind": self.name,
            "simulator": self.pipeline.simulator.export_state(),
            "pipelines": [self.pipeline.export_state()],
            "busy_s": [self._busy_s],
            "in_flight": [_record_to_dict(record) for record in self._in_flight],
        }

    def import_state(self, state: dict) -> None:
        if state.get("kind") != self.name or len(state["pipelines"]) != 1:
            raise ValueError("checkpoint backend state does not match a serial backend")
        self.pipeline.simulator.import_state(state["simulator"])
        self.pipeline.import_state(state["pipelines"][0])
        self._busy_s = float(state.get("busy_s", [0.0])[0])
        self._in_flight = [_record_from_dict(entry, self.space)
                           for entry in state.get("in_flight", [])]


class WorkerPoolBackend(ExecutionBackend):
    """A pool of N simulated system-under-test machines.

    Dispatch is greedy: a submitted configuration goes to the idle worker
    whose clock is earliest, ties broken by worker id, and completions pop
    in virtual-finish-time order with the same tie-breaking.  Driving a
    whole batch through submit/next_completion (after the barrier clock
    sync) therefore reproduces classical greedy list scheduling exactly,
    while the async session skips the barrier and keeps every worker busy —
    which is the entire point: the fleet compresses wall-clock time-to-best
    without touching per-trial durations.
    """

    name = "worker-pool"

    def __init__(self, simulator: SystemSimulator, metric: Metric,
                 workers: int = 2, enable_skip_build: bool = True) -> None:
        if workers < 1:
            raise ValueError("a worker pool needs at least one worker")
        self.simulator = simulator
        self._metric = metric
        self.workers = workers
        self.pipelines = [
            BenchmarkingPipeline(simulator, metric, clock=VirtualClock(),
                                 enable_skip_build=enable_skip_build)
            for _ in range(workers)
        ]
        #: worker index each trial ran on, parallel to dispatch order.
        self.assignments: List[int] = []
        #: in-flight trial per busy worker, in submission order (dict order).
        self._in_flight: Dict[int, TrialRecord] = {}
        self._busy_s: List[float] = [0.0] * workers
        #: virtual time of the latest popped completion event.  A proposal is
        #: made in reaction to a completion, so a trial dispatched after that
        #: event cannot start before it: submit advances the assigned
        #: worker's clock to this horizon, preserving causality on the
        #: virtual time axis without a fleet-wide barrier.  (Completion pops
        #: are monotone in finish time, so the horizon never moves backward.)
        self._horizon_s = 0.0

    @property
    def space(self):
        return self.pipelines[0].space

    @property
    def metric(self) -> Metric:
        return self._metric

    @property
    def now_s(self) -> float:
        return max(pipeline.clock.now_s for pipeline in self.pipelines)

    @property
    def worker_clocks_s(self) -> List[float]:
        return [pipeline.clock.now_s for pipeline in self.pipelines]

    @property
    def trials_run(self) -> int:
        return sum(pipeline.trials_run for pipeline in self.pipelines)

    @property
    def builds_skipped(self) -> int:
        return sum(pipeline.builds_skipped for pipeline in self.pipelines)

    def _sync_to_barrier(self) -> None:
        """Advance every worker clock to the session clock (idle at barrier)."""
        session_now = self.now_s
        for pipeline in self.pipelines:
            behind = session_now - pipeline.clock.now_s
            if behind > 0:
                pipeline.clock.advance(behind)

    # -- completion events -------------------------------------------------------
    def idle_workers(self) -> List[int]:
        return [index for index in range(self.workers)
                if index not in self._in_flight]

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    def pending_configurations(self) -> List[Configuration]:
        return [record.configuration for record in self._in_flight.values()]

    def submit(self, configuration: Configuration) -> int:
        idle = self.idle_workers()
        if not idle:
            raise RuntimeError("all workers are busy; pop a completion first")

        def start_time(index: int) -> float:
            return max(self.pipelines[index].clock.now_s, self._horizon_s)

        worker = min(idle, key=lambda index: (start_time(index), index))
        behind = self._horizon_s - self.pipelines[worker].clock.now_s
        if behind > 0:
            self.pipelines[worker].clock.advance(behind)
        record = self.pipelines[worker].evaluate(configuration)
        record.worker = worker
        self.assignments.append(worker)
        self._busy_s[worker] += record.duration_s
        self._in_flight[worker] = record
        return worker

    def next_completion(self) -> TrialRecord:
        if not self._in_flight:
            raise RuntimeError("no trial in flight")
        worker = min(self._in_flight,
                     key=lambda index: (self._in_flight[index].finished_at_s,
                                        index))
        record = self._in_flight.pop(worker)
        self._horizon_s = max(self._horizon_s, record.finished_at_s)
        return record

    # -- batch driver -------------------------------------------------------------
    def run_batch(self, configurations: Sequence[Configuration]) -> List[TrialRecord]:
        if self._in_flight:
            raise RuntimeError("cannot form a barrier batch with trials in flight")
        self._sync_to_barrier()
        records: List[TrialRecord] = []
        for configuration in configurations:
            if not self.has_idle_worker():
                # Free the earliest-finishing worker; its clock is the
                # minimum over the pool, so submitting to it reproduces the
                # historical greedy earliest-clock assignment.
                self.next_completion()
            worker = self.submit(configuration)
            records.append(self._in_flight[worker])
        while self._in_flight:
            self.next_completion()
        return records

    # -- accounting / checkpointing ----------------------------------------------
    @property
    def worker_busy_s(self) -> List[float]:
        return list(self._busy_s)

    def export_state(self) -> dict:
        return {
            "kind": self.name,
            "simulator": self.simulator.export_state(),
            "pipelines": [pipeline.export_state() for pipeline in self.pipelines],
            "assignments": list(self.assignments),
            "busy_s": list(self._busy_s),
            "horizon_s": self._horizon_s,
            "in_flight": [_record_to_dict(record)
                          for record in self._in_flight.values()],
        }

    def import_state(self, state: dict) -> None:
        if state.get("kind") != self.name:
            raise ValueError("checkpoint backend state does not match a worker pool")
        if len(state["pipelines"]) != len(self.pipelines):
            raise ValueError(
                "checkpoint was taken with {} workers, backend has {}".format(
                    len(state["pipelines"]), len(self.pipelines)))
        self.simulator.import_state(state["simulator"])
        for pipeline, pipeline_state in zip(self.pipelines, state["pipelines"]):
            pipeline.import_state(pipeline_state)
        self.assignments = [int(worker) for worker in state.get("assignments", [])]
        self._busy_s = [float(busy) for busy in
                        state.get("busy_s", [0.0] * self.workers)]
        self._horizon_s = float(state.get("horizon_s", self.now_s))
        self._in_flight = {}
        for entry in state.get("in_flight", []):
            # record_to_dict carries the worker assignment, so the record's
            # own field keys the busy-worker map on restore.
            record = _record_from_dict(entry, self.space)
            self._in_flight[record.worker] = record


def make_backend(simulator: SystemSimulator, metric: Metric, workers: int = 1,
                 enable_skip_build: bool = True,
                 clock: Optional[VirtualClock] = None) -> ExecutionBackend:
    """Build the appropriate backend for *workers* simulated SUT machines."""
    if workers <= 1:
        pipeline = BenchmarkingPipeline(simulator, metric,
                                        clock=clock or VirtualClock(),
                                        enable_skip_build=enable_skip_build)
        return SerialBackend(pipeline)
    return WorkerPoolBackend(simulator, metric, workers=workers,
                             enable_skip_build=enable_skip_build)
