"""Execution backends: how a batch of proposed configurations is evaluated.

The search session hands every proposed batch to an :class:`ExecutionBackend`
and gets completed :class:`~repro.platform.history.TrialRecord` objects back.
Two backends are provided:

* :class:`SerialBackend` drives a single
  :class:`~repro.platform.pipeline.BenchmarkingPipeline` one configuration at
  a time — the platform's historical behaviour, kept bit-identical so that a
  ``workers=1, batch_size=1`` session reproduces the sequential loop trial
  for trial.
* :class:`WorkerPoolBackend` models a fleet of N system-under-test machines.
  Each worker owns a full :class:`BenchmarkingPipeline` — its own virtual
  clock and its own skip-build state (a worker can only reuse an image *it*
  has booted) — while all workers share one
  :class:`~repro.vm.simulator.SystemSimulator`.  Sharing the simulator means
  the measurement-noise RNG stream is consumed in dispatch order, so with
  ``enable_skip_build=False`` the *outcome* of evaluating a given dispatch
  sequence does not depend on how many workers it was spread across; only
  the time axis does.  With skip-build enabled (the default), image reuse
  is inherently per-worker state — a variant the serial pipeline would have
  reused may be cold-built on a different worker — so durations and the
  build/boot failure masking of reused images can legitimately differ
  between worker counts.

Clock-merge semantics: a trial's timestamps come from the clock of the worker
it ran on, and the session-level clock is the maximum over all worker clocks.
Because a batch is only proposed once every observation of the previous batch
is in (the propose→evaluate→observe barrier), every worker clock is advanced
to the session clock at the start of a batch — workers idle at the barrier.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config.space import Configuration
from repro.platform.history import TrialRecord
from repro.platform.metrics import Metric
from repro.platform.pipeline import BenchmarkingPipeline, VirtualClock
from repro.vm.simulator import SystemSimulator


class ExecutionBackend:
    """Evaluates batches of configurations for a search session."""

    name = "backend"

    #: number of system-under-test workers the backend models.
    workers = 1

    @property
    def space(self):
        """The configuration space of the system under test."""
        raise NotImplementedError

    @property
    def metric(self) -> Metric:
        raise NotImplementedError

    @property
    def now_s(self) -> float:
        """Session-level virtual time (seconds)."""
        raise NotImplementedError

    @property
    def trials_run(self) -> int:
        raise NotImplementedError

    @property
    def builds_skipped(self) -> int:
        raise NotImplementedError

    def run_batch(self, configurations: Sequence[Configuration]) -> List[TrialRecord]:
        """Evaluate *configurations* and return their records in submission order.

        Submission order (not completion order) keeps the observation stream
        seen by the search algorithm independent of the worker count; the
        history re-orders by virtual completion time on ingestion
        (:meth:`ExplorationHistory.add_batch`).
        """
        raise NotImplementedError

    def export_state(self) -> dict:
        """Snapshot worker clocks, skip-build state, and the simulator RNG."""
        raise NotImplementedError

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """One system under test, evaluated strictly sequentially."""

    name = "serial"
    workers = 1

    def __init__(self, pipeline: BenchmarkingPipeline) -> None:
        self.pipeline = pipeline

    @property
    def space(self):
        return self.pipeline.space

    @property
    def metric(self) -> Metric:
        return self.pipeline.metric

    @property
    def now_s(self) -> float:
        return self.pipeline.clock.now_s

    @property
    def trials_run(self) -> int:
        return self.pipeline.trials_run

    @property
    def builds_skipped(self) -> int:
        return self.pipeline.builds_skipped

    def run_batch(self, configurations: Sequence[Configuration]) -> List[TrialRecord]:
        return [self.pipeline.evaluate(configuration)
                for configuration in configurations]

    def export_state(self) -> dict:
        return {
            "kind": self.name,
            "simulator": self.pipeline.simulator.export_state(),
            "pipelines": [self.pipeline.export_state()],
        }

    def import_state(self, state: dict) -> None:
        if state.get("kind") != self.name or len(state["pipelines"]) != 1:
            raise ValueError("checkpoint backend state does not match a serial backend")
        self.pipeline.simulator.import_state(state["simulator"])
        self.pipeline.import_state(state["pipelines"][0])


class WorkerPoolBackend(ExecutionBackend):
    """A pool of N simulated system-under-test machines.

    Dispatch is greedy list scheduling: each configuration of a batch (in
    proposal order) goes to the worker whose clock is earliest, ties broken
    by worker id.  Trial timestamps are the assigned worker's clock, so
    trials of one batch overlap in virtual time — which is the entire point:
    the fleet compresses wall-clock time-to-best without touching per-trial
    durations.
    """

    name = "worker-pool"

    def __init__(self, simulator: SystemSimulator, metric: Metric,
                 workers: int = 2, enable_skip_build: bool = True) -> None:
        if workers < 1:
            raise ValueError("a worker pool needs at least one worker")
        self.simulator = simulator
        self._metric = metric
        self.workers = workers
        self.pipelines = [
            BenchmarkingPipeline(simulator, metric, clock=VirtualClock(),
                                 enable_skip_build=enable_skip_build)
            for _ in range(workers)
        ]
        #: worker index each trial ran on, parallel to dispatch order.
        self.assignments: List[int] = []

    @property
    def space(self):
        return self.pipelines[0].space

    @property
    def metric(self) -> Metric:
        return self._metric

    @property
    def now_s(self) -> float:
        return max(pipeline.clock.now_s for pipeline in self.pipelines)

    @property
    def worker_clocks_s(self) -> List[float]:
        return [pipeline.clock.now_s for pipeline in self.pipelines]

    @property
    def trials_run(self) -> int:
        return sum(pipeline.trials_run for pipeline in self.pipelines)

    @property
    def builds_skipped(self) -> int:
        return sum(pipeline.builds_skipped for pipeline in self.pipelines)

    def _sync_to_barrier(self) -> None:
        """Advance every worker clock to the session clock (idle at barrier)."""
        session_now = self.now_s
        for pipeline in self.pipelines:
            behind = session_now - pipeline.clock.now_s
            if behind > 0:
                pipeline.clock.advance(behind)

    def export_state(self) -> dict:
        return {
            "kind": self.name,
            "simulator": self.simulator.export_state(),
            "pipelines": [pipeline.export_state() for pipeline in self.pipelines],
            "assignments": list(self.assignments),
        }

    def import_state(self, state: dict) -> None:
        if state.get("kind") != self.name:
            raise ValueError("checkpoint backend state does not match a worker pool")
        if len(state["pipelines"]) != len(self.pipelines):
            raise ValueError(
                "checkpoint was taken with {} workers, backend has {}".format(
                    len(state["pipelines"]), len(self.pipelines)))
        self.simulator.import_state(state["simulator"])
        for pipeline, pipeline_state in zip(self.pipelines, state["pipelines"]):
            pipeline.import_state(pipeline_state)
        self.assignments = [int(worker) for worker in state.get("assignments", [])]

    def run_batch(self, configurations: Sequence[Configuration]) -> List[TrialRecord]:
        self._sync_to_barrier()
        records: List[TrialRecord] = []
        for configuration in configurations:
            worker = min(range(self.workers),
                         key=lambda index: (self.pipelines[index].clock.now_s, index))
            record = self.pipelines[worker].evaluate(configuration)
            record.worker = worker
            self.assignments.append(worker)
            records.append(record)
        return records


def make_backend(simulator: SystemSimulator, metric: Metric, workers: int = 1,
                 enable_skip_build: bool = True,
                 clock: Optional[VirtualClock] = None) -> ExecutionBackend:
    """Build the appropriate backend for *workers* simulated SUT machines."""
    if workers <= 1:
        pipeline = BenchmarkingPipeline(simulator, metric,
                                        clock=clock or VirtualClock(),
                                        enable_skip_build=enable_skip_build)
        return SerialBackend(pipeline)
    return WorkerPoolBackend(simulator, metric, workers=workers,
                             enable_skip_build=enable_skip_build)
