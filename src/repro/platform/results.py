"""Persistence of exploration results.

The original platform stores every explored configuration and its measurements
in off-the-shelf databases so runs can be resumed, audited, and re-plotted
long after the fact.  This module provides the equivalent for the
reproduction: a JSON results store that round-trips an entire exploration
history — configurations, objectives, crash outcomes, timings — plus helpers
to resume a search session from a stored history (useful when a long sweep is
interrupted) and to export flat CSV rows for external analysis.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Iterable, List, Optional

from repro.config.space import Configuration, ConfigSpace
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.platform.metrics import (
    CompositeScoreMetric,
    LatencyMetric,
    MemoryFootprintMetric,
    Metric,
    ThroughputMetric,
)
from repro.vm.failures import FailureStage

_METRIC_CLASSES = {
    "throughput": ThroughputMetric,
    "latency": LatencyMetric,
    "memory": MemoryFootprintMetric,
    "score": CompositeScoreMetric,
}


def record_to_dict(record: TrialRecord) -> Dict[str, object]:
    """Serialize one trial record (configuration values included)."""
    return {
        "index": record.index,
        "configuration": record.configuration.as_dict(),
        "objective": record.objective,
        "crashed": record.crashed,
        "failure_stage": record.failure_stage.value,
        "failure_reason": record.failure_reason,
        "metric_value": record.metric_value,
        "memory_mb": record.memory_mb,
        "duration_s": record.duration_s,
        "started_at_s": record.started_at_s,
        "build_skipped": record.build_skipped,
        "worker": record.worker,
    }


def record_from_dict(data: Dict[str, object], space: ConfigSpace) -> TrialRecord:
    """Rebuild a trial record against *space* (values are clipped on load)."""
    configuration = space.coerce(data["configuration"])
    return TrialRecord(
        index=int(data["index"]),
        configuration=configuration,
        objective=data.get("objective"),
        crashed=bool(data.get("crashed", False)),
        failure_stage=FailureStage(data.get("failure_stage", "none")),
        failure_reason=str(data.get("failure_reason", "")),
        metric_value=data.get("metric_value"),
        memory_mb=data.get("memory_mb"),
        duration_s=float(data.get("duration_s", 0.0)),
        started_at_s=float(data.get("started_at_s", 0.0)),
        build_skipped=bool(data.get("build_skipped", False)),
        worker=int(data.get("worker", 0)),
    )


class ResultsStore:
    """Save and load exploration histories as JSON documents."""

    FORMAT_VERSION = 1

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name + ".json")

    # -- writing ---------------------------------------------------------------
    def save_history(self, name: str, history: ExplorationHistory,
                     metadata: Optional[Dict[str, object]] = None) -> str:
        """Persist *history* under *name*; returns the file path."""
        document = {
            "format_version": self.FORMAT_VERSION,
            "metric": history.metric.name,
            "metadata": dict(metadata or {}),
            "summary": history.summary(),
            "records": [record_to_dict(record) for record in history],
        }
        path = self._path(name)
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        return path

    # -- reading -----------------------------------------------------------------
    def list_histories(self) -> List[str]:
        """Names of every stored history, sorted."""
        names = []
        for entry in os.listdir(self.directory):
            if entry.endswith(".json"):
                names.append(entry[:-5])
        return sorted(names)

    def load_history(self, name: str, space: ConfigSpace,
                     metric: Optional[Metric] = None) -> ExplorationHistory:
        """Load the history stored under *name*, bound to *space*."""
        path = self._path(name)
        with open(path) as handle:
            document = json.load(handle)
        if document.get("format_version") != self.FORMAT_VERSION:
            raise ValueError("unsupported results format version: {!r}".format(
                document.get("format_version")))
        if metric is None:
            metric_cls = _METRIC_CLASSES.get(document.get("metric", "throughput"),
                                             ThroughputMetric)
            metric = metric_cls()
        history = ExplorationHistory(metric)
        for entry in document.get("records", []):
            history.add(record_from_dict(entry, space))
        return history

    def load_metadata(self, name: str) -> Dict[str, object]:
        """Load only the metadata and summary blocks of a stored history."""
        with open(self._path(name)) as handle:
            document = json.load(handle)
        return {"metadata": document.get("metadata", {}),
                "summary": document.get("summary", {})}

    # -- exports ---------------------------------------------------------------------
    def export_csv(self, name: str, path: str,
                   parameters: Optional[Iterable[str]] = None) -> str:
        """Export a stored history as flat CSV rows (one per trial).

        *parameters* optionally restricts the configuration columns; by
        default only the measurement columns are exported, which keeps the
        file small for spaces with hundreds of parameters.
        """
        with open(self._path(name)) as handle:
            document = json.load(handle)
        parameter_names = list(parameters or [])
        fieldnames = ["index", "objective", "crashed", "failure_stage",
                      "metric_value", "memory_mb", "duration_s", "started_at_s",
                      "build_skipped", "worker"] + parameter_names
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for record in document.get("records", []):
                row = {key: record.get(key) for key in fieldnames
                       if key not in parameter_names}
                for parameter in parameter_names:
                    row[parameter] = record.get("configuration", {}).get(parameter)
                writer.writerow(row)
        return path


def resume_session(history: ExplorationHistory, algorithm) -> None:
    """Replay a stored history into a search algorithm's observation stream.

    After replaying, the algorithm proposes configurations as if it had run
    the stored trials itself, which is how an interrupted sweep is resumed.
    """
    for record in history:
        algorithm.observe(record)
