"""Persistence of exploration results and session checkpoints.

The original platform stores every explored configuration and its measurements
in off-the-shelf databases so runs can be resumed, audited, and re-plotted
long after the fact.  This module provides the equivalent for the
reproduction: a JSON results store that round-trips an entire exploration
history — configurations, objectives, crash outcomes, timings — plus
first-class *checkpoints*.  A checkpoint embeds the experiment spec, the
completed trial records, and an opaque state blob covering the search
algorithm (RNG streams, model weights, replay buffers), the execution
backend (worker clocks, skip-build image state), and the simulator's
measurement-noise RNG — everything needed for
:meth:`Wayfinder.resume` to continue an interrupted run *bit-identically*
to the uninterrupted one.  Flat CSV export for external analysis rounds the
module off.
"""

from __future__ import annotations

import base64
import csv
import errno
import json
import os
import pickle
from typing import Dict, Iterable, List, Optional

from repro.config.space import ConfigSpace
from repro.platform import trialstore
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.platform.metrics import (
    CompositeScoreMetric,
    LatencyMetric,
    MemoryFootprintMetric,
    Metric,
    ThroughputMetric,
)
from repro.vm.failures import FailureStage

_METRIC_CLASSES = {
    "throughput": ThroughputMetric,
    "latency": LatencyMetric,
    "memory": MemoryFootprintMetric,
    "score": CompositeScoreMetric,
}


def record_to_dict(record: TrialRecord) -> Dict[str, object]:
    """Serialize one trial record (configuration values included)."""
    return {
        "index": record.index,
        "configuration": record.configuration.as_dict(),
        "objective": record.objective,
        "crashed": record.crashed,
        "failure_stage": record.failure_stage.value,
        "failure_reason": record.failure_reason,
        "metric_value": record.metric_value,
        "memory_mb": record.memory_mb,
        "duration_s": record.duration_s,
        "started_at_s": record.started_at_s,
        "build_skipped": record.build_skipped,
        "worker": record.worker,
    }


def record_from_dict(data: Dict[str, object], space: ConfigSpace) -> TrialRecord:
    """Rebuild a trial record against *space* (values are clipped on load)."""
    configuration = space.coerce(data["configuration"])
    return TrialRecord(
        index=int(data["index"]),
        configuration=configuration,
        objective=data.get("objective"),
        crashed=bool(data.get("crashed", False)),
        failure_stage=FailureStage(data.get("failure_stage", "none")),
        failure_reason=str(data.get("failure_reason", "")),
        metric_value=data.get("metric_value"),
        memory_mb=data.get("memory_mb"),
        duration_s=float(data.get("duration_s", 0.0)),
        started_at_s=float(data.get("started_at_s", 0.0)),
        build_skipped=bool(data.get("build_skipped", False)),
        worker=int(data.get("worker", 0)),
    )


def encode_state(payload: object) -> str:
    """Pickle *payload* and encode it for embedding in a JSON document.

    Checkpoint state (RNG streams, model weights, replay buffers) must
    round-trip *exactly* — a single flipped mantissa bit would make a resumed
    run diverge — so it is serialized with pickle rather than re-encoded as
    JSON numbers, and carried as base64 text inside the document.
    """
    return base64.b64encode(pickle.dumps(payload)).decode("ascii")


def decode_state(text: str) -> object:
    """Inverse of :func:`encode_state`.

    .. warning::
        This unpickles the blob, which can execute arbitrary code — only
        resume checkpoints you (or a process you trust) wrote, exactly like
        any other pickle-bearing artifact.
    """
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def _fsync_directory(path: str) -> None:
    """Best-effort fsync of the directory holding *path* (durable renames)."""
    try:
        fd = os.open(os.path.dirname(os.path.abspath(path)) or ".",
                     os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str) -> str:
    """Crash-safely replace *path* with *text*.

    The write goes to a per-process staging file (``<path>.<pid>.tmp``, so
    concurrent writers never clobber each other's staging), is fsynced
    before the ``os.replace``, and the directory entry is fsynced after it
    — a crash at any instant leaves either the complete old file or the
    complete new file, never a torn one.
    """
    staging = "{}.{}.tmp".format(path, os.getpid())
    with open(staging, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(staging, path)
    _fsync_directory(path)
    return path


def atomic_write_bytes(path: str, data: bytes) -> str:
    """Binary sibling of :func:`atomic_write_text` (same staging protocol)."""
    staging = "{}.{}.tmp".format(path, os.getpid())
    with open(staging, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(staging, path)
    _fsync_directory(path)
    return path


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError as error:
        # EPERM: the pid exists but belongs to another user — still alive.
        return error.errno == errno.EPERM
    return True


def cleanup_stale_tmp_files(directory: str) -> List[str]:
    """Remove orphaned ``*.tmp`` staging files left behind by crashed writers.

    Staging names carry the writer's pid; a tmp file whose pid is no longer
    running (or a legacy ``.tmp`` without one) is a crash leftover and is
    deleted.  Live writers' staging files are never touched, so concurrent
    campaign workers can open stores on the same directory safely.
    """
    removed = []
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".tmp"):
            continue
        stem = entry[:-len(".tmp")]
        pid_text = stem.rsplit(".", 1)[-1] if "." in stem else ""
        if pid_text.isdigit() and _pid_alive(int(pid_text)):
            continue
        try:
            os.remove(os.path.join(directory, entry))
            removed.append(entry)
        except OSError:
            pass
    return removed


class ResultsStore:
    """Save and load exploration histories and checkpoints as JSON documents."""

    FORMAT_VERSION = 3
    CHECKPOINT_FORMAT_VERSION = 3
    CHECKPOINT_SUFFIX = ".checkpoint.json"
    #: columnar sidecars holding the trial rows a manifest references (see
    #: :mod:`repro.platform.trialstore`): fixed-width numeric columns in
    #: ``.trials.bin``, variable-width configuration payloads in
    #: ``.trials.jsonl``.  Manifests carry only metadata, summaries, and a
    #: ``trials`` row count; format version 3 adds a block-compressed
    #: payload sidecar whose index travels as ``payload_blocks`` (with
    #: ``payload_format`` naming the sidecar's on-disk form, so a legacy
    #: raw sidecar keeps resuming unconverted).  Version-2 manifests (raw
    #: sidecars) and version-1 documents with inline records are still
    #: loadable.
    TRIAL_COLUMNS_SUFFIX = ".trials.bin"
    TRIAL_PAYLOADS_SUFFIX = ".trials.jsonl"
    #: rolling backup of the previous checkpoint: the fallback when the
    #: current one turns out torn/corrupted.
    CHECKPOINT_BACKUP_SUFFIX = CHECKPOINT_SUFFIX + ".prev"
    #: corrupted checkpoints are set aside under this suffix (forensics),
    #: never silently deleted.
    CHECKPOINT_CORRUPT_SUFFIX = CHECKPOINT_SUFFIX + ".corrupt"

    def __init__(self, directory: str, fault_injector=None) -> None:
        self.directory = directory
        #: optional chaos hook (:class:`repro.platform.faults.FaultInjector`)
        #: that can tear checkpoint writes; ``None`` outside chaos runs.
        self.fault_injector = fault_injector
        os.makedirs(directory, exist_ok=True)
        # crash leftovers from dead writers are swept on open so a campaign
        # directory never accumulates orphaned staging files.
        cleanup_stale_tmp_files(directory)

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name + ".json")

    def history_path(self, name: str) -> str:
        """Filesystem path of the history stored under *name*."""
        return self._path(name)

    def history_trial_paths(self, name: str) -> tuple:
        """(columns, payloads) sidecar paths of the history under *name*."""
        return (os.path.join(self.directory, name + self.TRIAL_COLUMNS_SUFFIX),
                os.path.join(self.directory, name + self.TRIAL_PAYLOADS_SUFFIX))

    def checkpoint_trial_paths(self, name: str) -> tuple:
        """(columns, payloads) sidecar paths of the checkpoint under *name*."""
        return (os.path.join(self.directory,
                             name + ".checkpoint" + self.TRIAL_COLUMNS_SUFFIX),
                os.path.join(self.directory,
                             name + ".checkpoint" + self.TRIAL_PAYLOADS_SUFFIX))

    # -- writing ---------------------------------------------------------------
    def save_history(self, name: str, history: ExplorationHistory,
                     metadata: Optional[Dict[str, object]] = None) -> str:
        """Persist *history* under *name*; returns the manifest file path.

        Trial rows go to the columnar sidecars first, then the JSON manifest
        referencing them is renamed into place — the manifest is the
        authority on the live row count, so a crash between the two writes
        leaves the previous manifest pointing at a still-valid prefix.
        """
        columns_path, payloads_path = self.history_trial_paths(name)
        records = history.records_since(0)
        columns, payloads = trialstore.serialize_records(records)
        frames, blocks = trialstore.compress_payload_blocks(
            payloads, 0, trialstore.PAYLOAD_HEADER_SIZE)
        atomic_write_bytes(columns_path, trialstore.make_header() + columns)
        atomic_write_bytes(payloads_path,
                           trialstore.make_payload_header() + frames)
        document = {
            "format_version": self.FORMAT_VERSION,
            "metric": history.metric.name,
            "metadata": dict(metadata or {}),
            "summary": history.summary(),
            "trials": len(records),
            "trial_columns": os.path.basename(columns_path),
            "trial_payloads": os.path.basename(payloads_path),
            "payload_format": trialstore.PAYLOAD_FORMAT_BLOCKS,
            "payload_blocks": blocks,
        }
        text = json.dumps(document, indent=2) + "\n"
        return atomic_write_text(self._path(name), text)

    # -- reading -----------------------------------------------------------------
    def list_histories(self) -> List[str]:
        """Names of every stored history, sorted (checkpoints excluded)."""
        names = []
        for entry in os.listdir(self.directory):
            if entry.endswith(".json") and not entry.endswith(self.CHECKPOINT_SUFFIX):
                names.append(entry[:-5])
        return sorted(names)

    def load_history(self, name: str, space: ConfigSpace,
                     metric: Optional[Metric] = None) -> ExplorationHistory:
        """Load the history stored under *name*, bound to *space*."""
        document = load_history_document(self._path(name))
        if metric is None:
            metric_cls = _METRIC_CLASSES.get(document.get("metric", "throughput"),
                                             ThroughputMetric)
            metric = metric_cls()
        history = ExplorationHistory(metric)
        for entry in document.get("records", []):
            history.add(record_from_dict(entry, space))
        return history

    def load_metadata(self, name: str) -> Dict[str, object]:
        """Load only the metadata and summary blocks of a stored history."""
        with open(self._path(name)) as handle:
            document = json.load(handle)
        return {"metadata": document.get("metadata", {}),
                "summary": document.get("summary", {})}

    # -- checkpoints -----------------------------------------------------------------
    def checkpoint_path(self, name: str) -> str:
        """Filesystem path of the checkpoint stored under *name*."""
        return os.path.join(self.directory, name + self.CHECKPOINT_SUFFIX)

    def list_checkpoints(self) -> List[str]:
        """Names of every stored checkpoint, sorted."""
        names = []
        for entry in os.listdir(self.directory):
            if entry.endswith(self.CHECKPOINT_SUFFIX):
                names.append(entry[:-len(self.CHECKPOINT_SUFFIX)])
        return sorted(names)

    def checkpoint_backup_path(self, name: str) -> str:
        """Path of the rolling previous-checkpoint backup for *name*."""
        return os.path.join(self.directory, name + self.CHECKPOINT_BACKUP_SUFFIX)

    def save_checkpoint(self, name: str, document: Dict[str, object]) -> str:
        """Crash-safely persist a checkpoint *document* under *name*.

        The write is staged, fsynced, and renamed into place so an
        interruption mid-write never corrupts the previous checkpoint — the
        entire point of checkpointing long sweeps.  The superseded
        checkpoint is kept as a rolling ``.prev`` backup: if the current
        file is ever found torn (filesystem corruption, or the chaos
        injector simulating it), :meth:`latest_valid_checkpoint` falls back
        to it instead of losing the run.
        """
        path = self.checkpoint_path(name)
        backup = self.checkpoint_backup_path(name)
        text = json.dumps(document, indent=2) + "\n"
        if self.fault_injector is not None:
            torn = self.fault_injector.tear(text)
            if torn is not None:
                # simulate a crash mid-write on a non-atomic path: the final
                # file holds a truncated document and the worker dies.  The
                # previous checkpoint survives as the backup.
                if os.path.exists(path):
                    os.replace(path, backup)
                with open(path, "w") as handle:
                    handle.write(torn)
                self.fault_injector.die()
        staging = "{}.{}.tmp".format(path, os.getpid())
        with open(staging, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        if os.path.exists(path):
            os.replace(path, backup)
        os.replace(staging, path)
        _fsync_directory(path)
        return path

    def load_checkpoint(self, name: str) -> Dict[str, object]:
        """Load the checkpoint document stored under *name*."""
        return load_checkpoint_file(self.checkpoint_path(name))

    def latest_valid_checkpoint(self, name: str) -> Optional[str]:
        """Path of the newest loadable checkpoint for *name*, or ``None``.

        A corrupted or truncated current checkpoint is set aside under
        ``.corrupt`` and the rolling ``.prev`` backup is promoted in its
        place, so the caller resumes from the last good state; with neither
        file loadable the experiment simply starts fresh — corruption makes
        it *retryable*, never an exception.
        """
        path = self.checkpoint_path(name)
        backup = self.checkpoint_backup_path(name)
        for candidate in (path, backup):
            if not os.path.exists(candidate):
                continue
            try:
                load_checkpoint_file(candidate)
            except (ValueError, KeyError, OSError):
                os.replace(candidate,
                           os.path.join(self.directory,
                                        name + self.CHECKPOINT_CORRUPT_SUFFIX))
                continue
            if candidate is not path:
                os.replace(candidate, path)
            return path
        return None

    # -- exports ---------------------------------------------------------------------
    def export_csv(self, name: str, path: str,
                   parameters: Optional[Iterable[str]] = None) -> str:
        """Export a stored history as flat CSV rows (one per trial).

        *parameters* optionally restricts the configuration columns; by
        default only the measurement columns are exported, which keeps the
        file small for spaces with hundreds of parameters.
        """
        document = load_history_document(self._path(name))
        parameter_names = list(parameters or [])
        fieldnames = ["index", "objective", "crashed", "failure_stage",
                      "metric_value", "memory_mb", "duration_s", "started_at_s",
                      "build_skipped", "worker"] + parameter_names
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for record in document.get("records", []):
                row = {key: record.get(key) for key in fieldnames
                       if key not in parameter_names}
                for parameter in parameter_names:
                    row[parameter] = record.get("configuration", {}).get(parameter)
                writer.writerow(row)
        return path


def _sidecar_paths(manifest_path: str, document: Dict[str, object]) -> tuple:
    """Resolve a manifest's sidecar references next to the manifest itself.

    Manifests carry sidecar *basenames*, so a results directory (or an
    archived copy of a manifest inside it) stays relocatable as a unit.
    """
    columns = document.get("trial_columns")
    payloads = document.get("trial_payloads")
    if not columns or not payloads:
        raise ValueError(
            "{} does not reference its trial sidecar files".format(manifest_path))
    directory = os.path.dirname(os.path.abspath(manifest_path))
    return os.path.join(directory, str(columns)), os.path.join(directory,
                                                               str(payloads))


def load_history_document(path: str) -> Dict[str, object]:
    """Load a stored history manifest with its records attached.

    Version-2/3 manifests hold no inline records; this reads the referenced
    prefix of the columnar sidecars and attaches it under ``"records"`` —
    shaped exactly like the version-1 inline documents — so analysis code
    keeps a single document shape.  Corrupt or short sidecars raise
    ``ValueError`` just like a corrupt manifest would.

    This is the materializing reader; aggregation that only needs numeric
    columns should use :func:`open_history_view` instead, which never
    parses payloads it is not asked for.
    """
    with open(path) as handle:
        document = json.load(handle)
    version = document.get("format_version")
    if version == 1:
        return document
    if version not in (2, ResultsStore.FORMAT_VERSION):
        raise ValueError("unsupported results format version: {!r}".format(version))
    columns_path, payloads_path = _sidecar_paths(path, document)
    document["records"] = trialstore.read_record_dicts(
        columns_path, payloads_path, int(document.get("trials", 0)),
        document.get("payload_blocks"))
    return document


def open_history_view(path: str) -> trialstore.ColumnarHistoryView:
    """Open a stored history/checkpoint manifest as a lazy columnar view.

    Unlike :func:`load_history_document`, no records are materialized:
    numeric columns come straight off the mmap and payloads decode on
    demand through the sidecar's block index.  Version-1 documents (inline
    records) are wrapped behind the same interface.
    """
    with open(path) as handle:
        document = json.load(handle)
    version = document.get("format_version")
    if version not in (1, 2, ResultsStore.FORMAT_VERSION):
        raise ValueError("unsupported results format version: {!r}".format(version))
    return trialstore.ColumnarHistoryView(path, document)


class SessionCheckpointer:
    """Serializes a search session's full state through a :class:`ResultsStore`.

    Attach an instance to :attr:`SearchSession.checkpointer` (or call
    :meth:`Wayfinder.enable_checkpointing`) and the session will persist a
    resumable checkpoint every ``checkpoint_every`` batches, plus one at the
    final state.  The checkpoint embeds the experiment spec, so
    :meth:`Wayfinder.resume` can rebuild the entire experiment from the file
    alone.

    Trial rows live in the columnar sidecars and are persisted
    *incrementally*: each save appends (and fsyncs) only the records added
    since the previous save, then rewrites the small JSON manifest — so
    checkpoint cost is O(new trials since the last checkpoint), not
    O(history).  The checkpointer remembers how many rows the manifest it
    inherited referenced and truncates any sidecar tail beyond it on first
    use, which both sweeps stale leftovers on fresh runs and drops
    now-unreferenced rows when resuming from a rolled-back ``.prev``
    manifest.
    """

    def __init__(self, store: ResultsStore, name: str, spec, session) -> None:
        self.store = store
        self.name = name
        self.spec = spec
        self.session = session
        #: rows the current manifest (if any) references: the session history
        #: is pre-populated by ``restore_search_session`` before
        #: checkpointing is enabled, and empty on fresh runs.
        self._persisted = len(session.history)
        self._writer: Optional[trialstore.TrialStoreWriter] = None

    def _trial_writer(self) -> trialstore.TrialStoreWriter:
        if self._writer is None:
            columns_path, payloads_path = self.store.checkpoint_trial_paths(
                self.name)
            writer = trialstore.TrialStoreWriter(columns_path, payloads_path)
            writer.rewind(min(self._persisted, writer.count))
            # with fewer durable rows than restored records (recovered from
            # an older backup manifest), the gap is simply re-appended below:
            # resume is bit-exact, so the rows are identical anyway.
            self._persisted = writer.count
            self._writer = writer
        return self._writer

    def build_document(self) -> Dict[str, object]:
        session = self.session
        columns_path, payloads_path = self.store.checkpoint_trial_paths(self.name)
        writer = self._trial_writer()
        state = {
            "algorithm": session.algorithm.export_state(),
            "backend": session.backend.export_state(),
            "search_overhead_s": session.search_overhead_s,
            "batches_run": session.batches_run,
        }
        document = {
            "format_version": ResultsStore.CHECKPOINT_FORMAT_VERSION,
            "kind": "checkpoint",
            "spec": self.spec.to_dict(),
            "checkpoint_every": session.checkpoint_every,
            "metric": session.history.metric.name,
            "summary": session.history.summary(),
            "trials": len(session.history),
            "trial_columns": os.path.basename(columns_path),
            "trial_payloads": os.path.basename(payloads_path),
            "state": encode_state(state),
        }
        if writer.compressed:
            document["payload_format"] = trialstore.PAYLOAD_FORMAT_BLOCKS
            document["payload_blocks"] = writer.blocks
        else:
            # a store resumed from a raw (pre-v3) sidecar keeps appending raw.
            document["payload_format"] = trialstore.PAYLOAD_FORMAT_RAW
        return document

    def save(self) -> str:
        writer = self._trial_writer()
        writer.extend(self.session.history.records_since(self._persisted))
        self._persisted = writer.flush()
        return self.store.save_checkpoint(self.name, self.build_document())

    def close(self) -> None:
        """Release the sidecar file handles (superseded checkpointers)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None


def load_checkpoint_file(path: str) -> Dict[str, object]:
    """Load and validate a checkpoint document from *path*.

    For sidecar-backed checkpoints the referenced trial-row prefix is read
    and attached under ``"records"`` (the version-1 inline shape), so
    corruption anywhere — manifest *or* sidecars — surfaces as the
    ``ValueError`` the store's ``.prev`` fallback machinery expects.
    """
    with open(path) as handle:
        document = json.load(handle)
    if document.get("kind") != "checkpoint":
        raise ValueError("{} is not a session checkpoint".format(path))
    version = document.get("format_version")
    if version == 1:
        return document
    if version not in (2, ResultsStore.CHECKPOINT_FORMAT_VERSION):
        raise ValueError("unsupported checkpoint format version: {!r}".format(
            version))
    columns_path, payloads_path = _sidecar_paths(path, document)
    document["records"] = trialstore.read_record_dicts(
        columns_path, payloads_path, int(document.get("trials", 0)),
        document.get("payload_blocks"))
    return document


def restore_search_session(document: Dict[str, object], session) -> None:
    """Load a checkpoint *document* into a freshly wired search session.

    The session must have been built from the same :class:`ExperimentSpec`
    the checkpoint embeds (which is what :meth:`Wayfinder.resume` does); the
    restore then replays the stored records into the history index and hands
    the opaque state blob back to the algorithm, the execution backend, and
    the simulator, after which the run loop continues exactly where the
    checkpointed run left off.
    """
    if session.history:
        raise ValueError("can only restore a checkpoint into a fresh session")
    space = session.backend.space
    for entry in document.get("records", []):
        session.history.add(record_from_dict(entry, space))
    state = decode_state(document["state"])
    session.algorithm.import_state(state["algorithm"])
    session.backend.import_state(state["backend"])
    session.search_overhead_s = float(state["search_overhead_s"])
    session.batches_run = int(state["batches_run"])
    # carry the original checkpoint cadence, so re-enabling checkpointing on
    # the resumed session defaults to the same rhythm.
    session.checkpoint_every = int(document.get("checkpoint_every", 1))
