"""The search session: the lifecycle engine of the platform.

A session iterates "select configuration(s) → evaluate → record" until a
:class:`~repro.platform.lifecycle.StopCondition` fires, then reports the best
configuration found, how long it took to find it, and the full exploration
history used by the evaluation figures.

The loop is batch-oriented: each round asks the algorithm for up to
``batch_size`` configurations (:meth:`SearchAlgorithm.propose_batch`) and
hands them to an :class:`~repro.platform.executor.ExecutionBackend`, which
may spread them over several simulated system-under-test workers.  With
``workers=1, batch_size=1`` the loop reproduces the strictly sequential
propose→evaluate→observe loop trial for trial — same proposals, same RNG
consumption, same timestamps — which is asserted by
``tests/test_batch_execution.py``.

Around that core the session exposes a lifecycle:

* **stop conditions** — iteration budgets, virtual-time budgets, and
  incumbent plateaus are pluggable :class:`StopCondition` objects; budgets
  count the whole history, so resumed sessions continue toward the original
  budget rather than restarting it;
* **observers** — :class:`SessionObserver` callbacks (``on_batch_start``,
  ``on_trial``, ``on_new_incumbent``, ``on_checkpoint``) fire as the run
  progresses; the CLI renders its live progress from them;
* **checkpointing** — when a checkpointer is attached (see
  :class:`repro.platform.results.SessionCheckpointer`), full session state is
  persisted every ``checkpoint_every`` batches, making the run resumable via
  :meth:`Wayfinder.resume`.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.config.space import Configuration
from repro.platform.executor import ExecutionBackend, SerialBackend
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.platform.lifecycle import (
    IterationBudget,
    SessionObserver,
    StopCondition,
    TimeBudget,
)
from repro.platform.metrics import Metric
from repro.platform.pipeline import BenchmarkingPipeline
from repro.search.base import SearchAlgorithm


class SessionResult:
    """Outcome of one complete search session."""

    def __init__(self, history: ExplorationHistory, algorithm_name: str,
                 search_overhead_s: float, builds_skipped: int,
                 workers: int = 1, batch_size: int = 1,
                 time_budget_s: Optional[float] = None,
                 favor: Optional[str] = None,
                 stop_reason: Optional[str] = None) -> None:
        self.history = history
        self.algorithm_name = algorithm_name
        self.search_overhead_s = search_overhead_s
        self.builds_skipped = builds_skipped
        self.workers = workers
        self.batch_size = batch_size
        self.time_budget_s = time_budget_s
        self.favor = favor
        self.stop_reason = stop_reason

    @property
    def best_record(self) -> Optional[TrialRecord]:
        return self.history.best_record()

    @property
    def best_configuration(self) -> Optional[Configuration]:
        best = self.best_record
        return None if best is None else best.configuration

    @property
    def best_objective(self) -> Optional[float]:
        return self.history.best_objective()

    @property
    def crash_rate(self) -> float:
        return self.history.crash_rate()

    @property
    def time_to_best_s(self) -> Optional[float]:
        return self.history.time_to_best_s()

    @property
    def iterations(self) -> int:
        return len(self.history)

    def summary(self) -> dict:
        data = self.history.summary()
        data.update({
            "algorithm": self.algorithm_name,
            "search_overhead_s": self.search_overhead_s,
            "builds_skipped": self.builds_skipped,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "time_budget_s": self.time_budget_s,
            "favor": self.favor,
            "stop_reason": self.stop_reason,
        })
        return data

    def __repr__(self) -> str:
        return "SessionResult(algorithm={}, iterations={}, best={!r})".format(
            self.algorithm_name, self.iterations, self.best_objective
        )


class SearchSession:
    """Runs one specialization search with a given algorithm and budget."""

    def __init__(self, pipeline: Optional[BenchmarkingPipeline] = None,
                 algorithm: SearchAlgorithm = None,
                 metric: Optional[Metric] = None,
                 evaluate_default_first: bool = False,
                 backend: Optional[ExecutionBackend] = None,
                 batch_size: int = 1,
                 observers: Optional[Sequence[SessionObserver]] = None,
                 favor: Optional[str] = None) -> None:
        if backend is None:
            if pipeline is None:
                raise ValueError("a session needs a pipeline or an execution backend")
            backend = SerialBackend(pipeline)
        if algorithm is None:
            raise ValueError("a session needs a search algorithm")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.backend = backend
        self.pipeline = pipeline if pipeline is not None else getattr(backend, "pipeline", None)
        self.algorithm = algorithm
        self.metric = metric or backend.metric
        self.batch_size = batch_size
        self.history = ExplorationHistory(self.metric)
        #: when set, the very first trial benchmarks the default configuration
        #: so the incumbent baseline is always part of the explored set (and
        #: of the model's training data).  It always runs first *and alone*,
        #: even in batched sessions: the baseline must not share a batch with
        #: configurations proposed without any observation to learn from.
        #: A resumed session skips it — the restored history already holds it.
        self.evaluate_default_first = evaluate_default_first
        self.observers: List[SessionObserver] = list(observers or [])
        #: favor preset recorded in the session result (purely descriptive;
        #: the favored kinds themselves live inside the algorithm's sampler).
        self.favor = favor
        #: optional :class:`repro.platform.results.SessionCheckpointer`; when
        #: set, full session state is persisted every ``checkpoint_every``
        #: batches and observers are notified via ``on_checkpoint``.
        self.checkpointer = None
        self.checkpoint_every = 1
        self._last_checkpoint_batch: Optional[int] = None
        #: cumulative wall-clock seconds spent proposing/observing, carried
        #: across checkpoint/resume so overhead accounting stays complete.
        self.search_overhead_s = 0.0
        #: batches completed so far (the default-configuration trial is
        #: batch 0); restored on resume so checkpoint cadence is stable.
        self.batches_run = 0

    # -- lifecycle plumbing ------------------------------------------------------
    def add_observer(self, observer: SessionObserver) -> SessionObserver:
        self.observers.append(observer)
        return observer

    def _notify(self, hook: str, *args) -> None:
        for observer in self.observers:
            getattr(observer, hook)(self, *args)

    def _ingest_batch(self, records: Sequence[TrialRecord]) -> None:
        """History ingestion + observer notifications for one completed batch."""
        previous_best = self.history.best_record()
        ordered = self.history.add_batch(records)
        incumbent = previous_best
        for record in ordered:
            self._notify("on_trial", record)
            if record.crashed or record.objective is None:
                continue
            if incumbent is None or self.metric.is_improvement(
                    record.objective, incumbent.objective):
                incumbent = record
                self._notify("on_new_incumbent", record)

    def _checkpoint(self, force: bool = False) -> None:
        if self.checkpointer is None:
            return
        if not force and self.batches_run % max(1, self.checkpoint_every) != 0:
            return
        if self._last_checkpoint_batch == self.batches_run:
            return
        path = self.checkpointer.save()
        self._last_checkpoint_batch = self.batches_run
        self._notify("on_checkpoint", path)

    def _build_conditions(self, iterations: Optional[int],
                          time_budget_s: Optional[float],
                          stop: Optional[Sequence[StopCondition]]) -> List[StopCondition]:
        conditions: List[StopCondition] = list(stop or [])
        if iterations is not None:
            conditions.append(IterationBudget(iterations))
        if time_budget_s is not None:
            conditions.append(TimeBudget(time_budget_s))
        if not conditions:
            raise ValueError("a session needs an iteration, time, or custom stop budget")
        return conditions

    def _stopped_by(self, conditions: Sequence[StopCondition]) -> Optional[StopCondition]:
        for condition in conditions:
            if condition.should_stop(self):
                return condition
        return None

    # -- the run loop ------------------------------------------------------------
    def run(self, iterations: Optional[int] = None,
            time_budget_s: Optional[float] = None,
            batch_size: Optional[int] = None,
            stop: Optional[Sequence[StopCondition]] = None) -> SessionResult:
        """Run the exploration loop until a stop condition fires.

        *iterations* and *time_budget_s* are conveniences wrapping the
        :class:`IterationBudget` / :class:`TimeBudget` stop conditions;
        arbitrary conditions (e.g. :class:`IncumbentPlateau`) are passed via
        *stop*.  Budgets count the whole history, so a session resumed from a
        checkpoint continues toward the original budget.  *time_budget_s* is
        measured on the platform's virtual clock, i.e. in simulated
        benchmarking time, matching how the paper expresses budgets.

        *batch_size* overrides the session-level batch size for this run.
        Each round proposes up to ``batch_size`` configurations; completed
        trials enter the history in virtual-completion-time order while the
        algorithm observes them in submission order, keeping its training
        stream independent of how many workers evaluated the batch.
        """
        conditions = self._build_conditions(iterations, time_budget_s, stop)
        batch_size = self.batch_size if batch_size is None else batch_size
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        stopped_by: Optional[StopCondition] = None
        if self.evaluate_default_first and not self.history:
            self._notify("on_batch_start", self.batches_run, 1)
            records = self.backend.run_batch(
                [self.backend.space.default_configuration()])
            self._ingest_batch(records)
            for record in records:
                self.algorithm.observe(record)
            self.batches_run += 1
            self._checkpoint()
        while True:
            stopped_by = self._stopped_by(conditions)
            if stopped_by is not None:
                break
            k = batch_size
            for condition in conditions:
                remaining = condition.remaining_trials(self)
                if remaining is not None:
                    k = min(k, remaining)
            self._notify("on_batch_start", self.batches_run, k)

            proposal_started = time.perf_counter()
            batch = self.algorithm.propose_batch(self.history, k)
            self.search_overhead_s += time.perf_counter() - proposal_started

            records = self.backend.run_batch(batch)
            self._ingest_batch(records)

            observe_started = time.perf_counter()
            for record in records:
                self.algorithm.observe(record)
            self.search_overhead_s += time.perf_counter() - observe_started
            self.batches_run += 1
            self._checkpoint()
        # Always leave a final checkpoint at the finished state so a stored
        # run can be extended later with a larger budget.
        self._checkpoint(force=True)
        time_budgets = [c.seconds for c in conditions if isinstance(c, TimeBudget)]
        return SessionResult(
            history=self.history,
            algorithm_name=self.algorithm.name,
            search_overhead_s=self.search_overhead_s,
            builds_skipped=self.backend.builds_skipped,
            workers=self.backend.workers,
            batch_size=batch_size,
            time_budget_s=time_budgets[0] if time_budgets else None,
            favor=self.favor,
            stop_reason=stopped_by.name if stopped_by is not None else None,
        )
