"""The search session: the core exploration loop of the platform.

A session iterates "select configuration(s) → evaluate → record" until the
iteration or (virtual) time budget is exhausted, then reports the best
configuration found, how long it took to find it, and the full exploration
history used by the evaluation figures.

The loop is batch-oriented: each round asks the algorithm for up to
``batch_size`` configurations (:meth:`SearchAlgorithm.propose_batch`) and
hands them to an :class:`~repro.platform.executor.ExecutionBackend`, which
may spread them over several simulated system-under-test workers.  With
``workers=1, batch_size=1`` the loop reproduces the strictly sequential
propose→evaluate→observe loop trial for trial — same proposals, same RNG
consumption, same timestamps — which is asserted by
``tests/test_batch_execution.py``.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.config.space import Configuration
from repro.platform.executor import ExecutionBackend, SerialBackend
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.platform.metrics import Metric
from repro.platform.pipeline import BenchmarkingPipeline
from repro.search.base import SearchAlgorithm


class SessionResult:
    """Outcome of one complete search session."""

    def __init__(self, history: ExplorationHistory, algorithm_name: str,
                 search_overhead_s: float, builds_skipped: int,
                 workers: int = 1, batch_size: int = 1) -> None:
        self.history = history
        self.algorithm_name = algorithm_name
        self.search_overhead_s = search_overhead_s
        self.builds_skipped = builds_skipped
        self.workers = workers
        self.batch_size = batch_size

    @property
    def best_record(self) -> Optional[TrialRecord]:
        return self.history.best_record()

    @property
    def best_configuration(self) -> Optional[Configuration]:
        best = self.best_record
        return None if best is None else best.configuration

    @property
    def best_objective(self) -> Optional[float]:
        return self.history.best_objective()

    @property
    def crash_rate(self) -> float:
        return self.history.crash_rate()

    @property
    def time_to_best_s(self) -> Optional[float]:
        return self.history.time_to_best_s()

    @property
    def iterations(self) -> int:
        return len(self.history)

    def summary(self) -> dict:
        data = self.history.summary()
        data.update({
            "algorithm": self.algorithm_name,
            "search_overhead_s": self.search_overhead_s,
            "builds_skipped": self.builds_skipped,
            "workers": self.workers,
            "batch_size": self.batch_size,
        })
        return data

    def __repr__(self) -> str:
        return "SessionResult(algorithm={}, iterations={}, best={!r})".format(
            self.algorithm_name, self.iterations, self.best_objective
        )


class SearchSession:
    """Runs one specialization search with a given algorithm and budget."""

    def __init__(self, pipeline: Optional[BenchmarkingPipeline] = None,
                 algorithm: SearchAlgorithm = None,
                 metric: Optional[Metric] = None,
                 evaluate_default_first: bool = False,
                 backend: Optional[ExecutionBackend] = None,
                 batch_size: int = 1) -> None:
        if backend is None:
            if pipeline is None:
                raise ValueError("a session needs a pipeline or an execution backend")
            backend = SerialBackend(pipeline)
        if algorithm is None:
            raise ValueError("a session needs a search algorithm")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.backend = backend
        self.pipeline = pipeline if pipeline is not None else getattr(backend, "pipeline", None)
        self.algorithm = algorithm
        self.metric = metric or backend.metric
        self.batch_size = batch_size
        self.history = ExplorationHistory(self.metric)
        #: when set, the very first trial benchmarks the default configuration
        #: so the incumbent baseline is always part of the explored set (and
        #: of the model's training data).  It always runs first *and alone*,
        #: even in batched sessions: the baseline must not share a batch with
        #: configurations proposed without any observation to learn from.
        self.evaluate_default_first = evaluate_default_first

    def run(self, iterations: Optional[int] = None,
            time_budget_s: Optional[float] = None,
            batch_size: Optional[int] = None) -> SessionResult:
        """Run the exploration loop until the iteration or time budget is spent.

        *time_budget_s* is measured on the platform's virtual clock, i.e. in
        simulated benchmarking time, matching how the paper expresses budgets
        (e.g. "a time budget of 3 hours").  The budget is checked at batch
        boundaries, so a batched session may overshoot it by at most one
        batch — with ``batch_size=1`` the historical per-trial check.

        *batch_size* overrides the session-level batch size for this run.
        Each round proposes up to ``batch_size`` configurations; completed
        trials enter the history in virtual-completion-time order while the
        algorithm observes them in submission order, keeping its training
        stream independent of how many workers evaluated the batch.
        """
        if iterations is None and time_budget_s is None:
            raise ValueError("a session needs an iteration or time budget")
        batch_size = self.batch_size if batch_size is None else batch_size
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        search_overhead = 0.0
        completed = 0
        if self.evaluate_default_first and not self.history:
            records = self.backend.run_batch(
                [self.backend.space.default_configuration()])
            self.history.add_batch(records)
            for record in records:
                self.algorithm.observe(record)
            completed += len(records)
        while True:
            if iterations is not None and completed >= iterations:
                break
            if time_budget_s is not None and self.backend.now_s >= time_budget_s:
                break
            k = batch_size
            if iterations is not None:
                k = min(k, iterations - completed)
            proposal_started = time.perf_counter()
            batch = self.algorithm.propose_batch(self.history, k)
            search_overhead += time.perf_counter() - proposal_started

            records = self.backend.run_batch(batch)
            self.history.add_batch(records)

            observe_started = time.perf_counter()
            for record in records:
                self.algorithm.observe(record)
            search_overhead += time.perf_counter() - observe_started
            completed += len(records)
        return SessionResult(
            history=self.history,
            algorithm_name=self.algorithm.name,
            search_overhead_s=search_overhead,
            builds_skipped=self.backend.builds_skipped,
            workers=self.backend.workers,
            batch_size=batch_size,
        )
