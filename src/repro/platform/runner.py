"""The search session: the lifecycle engine of the platform.

A session iterates "select configuration(s) → evaluate → record" until a
:class:`~repro.platform.lifecycle.StopCondition` fires, then reports the best
configuration found, how long it took to find it, and the full exploration
history used by the evaluation figures.

The loop is event-driven on top of the backend's completion-event interface
(:meth:`ExecutionBackend.submit` / :meth:`ExecutionBackend.next_completion`)
and supports two execution modes:

* ``batch`` (the default) keeps the historical barrier semantics: each round
  asks the algorithm for up to ``batch_size`` configurations
  (:meth:`SearchAlgorithm.propose_batch`), dispatches them as one barrier
  batch, ingests the whole batch, and evaluates stop conditions at the batch
  boundary.  With ``workers=1, batch_size=1`` this reproduces the strictly
  sequential propose→evaluate→observe loop trial for trial — same proposals,
  same RNG consumption, same timestamps — asserted by
  ``tests/test_batch_execution.py``.
* ``async`` never forms a barrier: every idle worker immediately receives the
  next proposal (:meth:`SearchAlgorithm.propose` with the in-flight
  configurations passed as ``pending``), completions are ingested one event
  at a time, and stop conditions, observers, and checkpoints all operate at
  trial granularity.  With ``workers=1`` the async loop also reproduces the
  sequential loop exactly (there is never a pending trial at proposal time);
  asserted by ``tests/test_async_execution.py``.

Around that core the session exposes a lifecycle:

* **stop conditions** — iteration budgets, virtual-time budgets, and
  incumbent plateaus are pluggable :class:`StopCondition` objects; budgets
  count the whole history, so resumed sessions continue toward the original
  budget;
* **observers** — :class:`SessionObserver` callbacks (``on_batch_start``,
  ``on_dispatch``, ``on_trial``, ``on_new_incumbent``, ``on_checkpoint``)
  fire as the run progresses; the CLI renders its live progress from them;
* **checkpointing** — when a checkpointer is attached (see
  :class:`repro.platform.results.SessionCheckpointer`), full session state —
  including any in-flight async trials — is persisted every
  ``checkpoint_every`` batches (batch mode) or completion events (async
  mode), making the run resumable via :meth:`Wayfinder.resume`.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.config.space import Configuration
from repro.platform.executor import (
    EXECUTION_MODES,
    ExecutionBackend,
    SerialBackend,
)
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.platform.lifecycle import (
    IterationBudget,
    SessionObserver,
    StopCondition,
    TimeBudget,
)
from repro.platform.metrics import Metric
from repro.platform.pipeline import BenchmarkingPipeline
from repro.search.base import SearchAlgorithm


class SessionResult:
    """Outcome of one complete search session."""

    def __init__(self, history: ExplorationHistory, algorithm_name: str,
                 search_overhead_s: float, builds_skipped: int,
                 workers: int = 1, batch_size: int = 1,
                 time_budget_s: Optional[float] = None,
                 favor: Optional[str] = None,
                 stop_reason: Optional[str] = None,
                 execution: str = "batch",
                 worker_utilization: Optional[List[float]] = None) -> None:
        self.history = history
        self.algorithm_name = algorithm_name
        self.search_overhead_s = search_overhead_s
        self.builds_skipped = builds_skipped
        self.workers = workers
        self.batch_size = batch_size
        self.time_budget_s = time_budget_s
        self.favor = favor
        self.stop_reason = stop_reason
        self.execution = execution
        #: per-worker busy fraction of the session's virtual timeline;
        #: deterministic (virtual-clock-derived), so it is stored in
        #: byte-equality-pinned summaries.
        self.worker_utilization = list(worker_utilization or [])

    @property
    def best_record(self) -> Optional[TrialRecord]:
        return self.history.best_record()

    @property
    def best_configuration(self) -> Optional[Configuration]:
        best = self.best_record
        return None if best is None else best.configuration

    @property
    def best_objective(self) -> Optional[float]:
        return self.history.best_objective()

    @property
    def crash_rate(self) -> float:
        return self.history.crash_rate()

    @property
    def time_to_best_s(self) -> Optional[float]:
        return self.history.time_to_best_s()

    @property
    def iterations(self) -> int:
        return len(self.history)

    def summary(self) -> dict:
        data = self.history.summary()
        data.update({
            "algorithm": self.algorithm_name,
            "search_overhead_s": self.search_overhead_s,
            "builds_skipped": self.builds_skipped,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "time_budget_s": self.time_budget_s,
            "favor": self.favor,
            "stop_reason": self.stop_reason,
            "execution": self.execution,
            "worker_utilization": list(self.worker_utilization),
        })
        return data

    def __repr__(self) -> str:
        return "SessionResult(algorithm={}, iterations={}, best={!r})".format(
            self.algorithm_name, self.iterations, self.best_objective
        )


class SearchSession:
    """Runs one specialization search with a given algorithm and budget."""

    def __init__(self, pipeline: Optional[BenchmarkingPipeline] = None,
                 algorithm: SearchAlgorithm = None,
                 metric: Optional[Metric] = None,
                 evaluate_default_first: bool = False,
                 backend: Optional[ExecutionBackend] = None,
                 batch_size: int = 1,
                 observers: Optional[Sequence[SessionObserver]] = None,
                 favor: Optional[str] = None,
                 execution: str = "batch") -> None:
        if backend is None:
            if pipeline is None:
                raise ValueError("a session needs a pipeline or an execution backend")
            backend = SerialBackend(pipeline)
        if algorithm is None:
            raise ValueError("a session needs a search algorithm")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if execution not in EXECUTION_MODES:
            raise ValueError("unknown execution mode {!r}; expected one of {}".format(
                execution, ", ".join(EXECUTION_MODES)))
        self.backend = backend
        self.pipeline = pipeline if pipeline is not None else getattr(backend, "pipeline", None)
        self.algorithm = algorithm
        self.metric = metric or backend.metric
        self.batch_size = batch_size
        #: scheduling policy the run loop drives: ``batch`` (barrier rounds)
        #: or ``async`` (completion-driven, no barrier).
        self.execution = execution
        self.history = ExplorationHistory(self.metric)
        #: when set, the very first trial benchmarks the default configuration
        #: so the incumbent baseline is always part of the explored set (and
        #: of the model's training data).  It always runs first *and alone*,
        #: even in batched/async sessions: the baseline must not share the
        #: fleet with configurations proposed without any observation to
        #: learn from.  A resumed session skips it — the restored history
        #: already holds it.
        self.evaluate_default_first = evaluate_default_first
        self.observers: List[SessionObserver] = list(observers or [])
        #: favor preset recorded in the session result (purely descriptive;
        #: the favored kinds themselves live inside the algorithm's sampler).
        self.favor = favor
        #: optional :class:`repro.platform.results.SessionCheckpointer`; when
        #: set, full session state is persisted every ``checkpoint_every``
        #: batches (batch mode) / completion events (async mode) and
        #: observers are notified via ``on_checkpoint``.
        self.checkpointer = None
        self.checkpoint_every = 1
        self._last_checkpoint_batch: Optional[int] = None
        #: cumulative wall-clock seconds spent proposing/observing, carried
        #: across checkpoint/resume so overhead accounting stays complete.
        self.search_overhead_s = 0.0
        #: checkpoint-cadence events completed so far: barrier batches in
        #: batch mode (the default-configuration trial is batch 0),
        #: completion events in async mode; restored on resume so checkpoint
        #: cadence is stable.
        self.batches_run = 0

    # -- lifecycle plumbing ------------------------------------------------------
    def add_observer(self, observer: SessionObserver) -> SessionObserver:
        self.observers.append(observer)
        return observer

    def _notify(self, hook: str, *args) -> None:
        for observer in self.observers:
            getattr(observer, hook)(self, *args)

    def _ingest_batch(self, records: Sequence[TrialRecord]) -> None:
        """History ingestion + observer notifications for completed trials."""
        previous_best = self.history.best_record()
        ordered = self.history.add_batch(records)
        incumbent = previous_best
        for record in ordered:
            self._notify("on_trial", record)
            if record.crashed or record.objective is None:
                continue
            if incumbent is None or self.metric.is_improvement(
                    record.objective, incumbent.objective):
                incumbent = record
                self._notify("on_new_incumbent", record)

    def _checkpoint(self, force: bool = False) -> None:
        if self.checkpointer is None:
            return
        if not force and self.batches_run % max(1, self.checkpoint_every) != 0:
            return
        if self._last_checkpoint_batch == self.batches_run:
            return
        path = self.checkpointer.save()
        self._last_checkpoint_batch = self.batches_run
        self._notify("on_checkpoint", path)

    def _build_conditions(self, iterations: Optional[int],
                          time_budget_s: Optional[float],
                          stop: Optional[Sequence[StopCondition]]) -> List[StopCondition]:
        conditions: List[StopCondition] = list(stop or [])
        if iterations is not None:
            conditions.append(IterationBudget(iterations))
        if time_budget_s is not None:
            conditions.append(TimeBudget(time_budget_s))
        if not conditions:
            raise ValueError("a session needs an iteration, time, or custom stop budget")
        return conditions

    def _stopped_by(self, conditions: Sequence[StopCondition]) -> Optional[StopCondition]:
        for condition in conditions:
            if condition.should_stop(self):
                return condition
        return None

    def _observe(self, records: Sequence[TrialRecord]) -> None:
        """Feed completed trials to the algorithm, timing the overhead."""
        observe_started = time.perf_counter()
        for record in records:
            self.algorithm.observe(record)
        self.search_overhead_s += time.perf_counter() - observe_started

    def _run_default_first(self, dispatch_event: bool) -> None:
        """Benchmark the default configuration first and alone (fresh runs)."""
        self._notify("on_batch_start", self.batches_run, 1)
        default = self.backend.space.default_configuration()
        if dispatch_event:
            worker = self.backend.submit(default)
            self._notify("on_dispatch", default, worker)
            records = [self.backend.next_completion()]
        else:
            records = self.backend.run_batch([default])
        self._ingest_batch(records)
        self._observe(records)
        self.batches_run += 1
        self._checkpoint()

    # -- the run loop ------------------------------------------------------------
    def run(self, iterations: Optional[int] = None,
            time_budget_s: Optional[float] = None,
            batch_size: Optional[int] = None,
            stop: Optional[Sequence[StopCondition]] = None) -> SessionResult:
        """Run the exploration loop until a stop condition fires.

        *iterations* and *time_budget_s* are conveniences wrapping the
        :class:`IterationBudget` / :class:`TimeBudget` stop conditions;
        arbitrary conditions (e.g. :class:`IncumbentPlateau`) are passed via
        *stop*.  Budgets count the whole history, so a session resumed from a
        checkpoint continues toward the original budget.  *time_budget_s* is
        measured on the platform's virtual clock, i.e. in simulated
        benchmarking time, matching how the paper expresses budgets.

        *batch_size* overrides the session-level batch size for this run
        (batch mode only; async sessions dispatch one proposal per idle
        worker).  In batch mode each round proposes up to ``batch_size``
        configurations; completed trials enter the history in
        virtual-completion-time order while the algorithm observes them in
        submission order, keeping its training stream independent of how
        many workers evaluated the batch.  In async mode trials are ingested
        and observed one completion event at a time — observation order *is*
        completion order — and stop conditions are evaluated per event.
        """
        conditions = self._build_conditions(iterations, time_budget_s, stop)
        batch_size = self.batch_size if batch_size is None else batch_size
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.execution == "async":
            stopped_by = self._drive_async(conditions)
        else:
            stopped_by = self._drive_batch(conditions, batch_size)
        # Always leave a final checkpoint at the finished state so a stored
        # run can be extended later with a larger budget.
        self._checkpoint(force=True)
        time_budgets = [c.seconds for c in conditions if isinstance(c, TimeBudget)]
        return SessionResult(
            history=self.history,
            algorithm_name=self.algorithm.name,
            search_overhead_s=self.search_overhead_s,
            builds_skipped=self.backend.builds_skipped,
            workers=self.backend.workers,
            batch_size=batch_size,
            time_budget_s=time_budgets[0] if time_budgets else None,
            favor=self.favor,
            stop_reason=stopped_by.name if stopped_by is not None else None,
            execution=self.execution,
            worker_utilization=self.backend.worker_utilization,
        )

    def _drive_batch(self, conditions: Sequence[StopCondition],
                     batch_size: int) -> Optional[StopCondition]:
        """Barrier rounds: propose a batch, evaluate it, observe it, repeat."""
        stopped_by: Optional[StopCondition] = None
        if self.evaluate_default_first and not self.history:
            self._run_default_first(dispatch_event=False)
        while True:
            stopped_by = self._stopped_by(conditions)
            if stopped_by is not None:
                break
            k = batch_size
            for condition in conditions:
                remaining = condition.remaining_trials(self)
                if remaining is not None:
                    k = min(k, remaining)
            self._notify("on_batch_start", self.batches_run, k)

            proposal_started = time.perf_counter()
            batch = self.algorithm.propose_batch(self.history, k)
            self.search_overhead_s += time.perf_counter() - proposal_started

            records = self.backend.run_batch(batch)
            self._ingest_batch(records)
            self._observe(records)
            self.batches_run += 1
            self._checkpoint()
        return stopped_by

    def _dispatch_async(self, conditions: Sequence[StopCondition]) -> None:
        """Hand every idle worker its next proposal (budget permitting).

        Trial-count budgets gate dispatch so in-flight work never exceeds
        the remaining budget — an async session hits iteration budgets
        exactly, with no dispatched-but-wasted trials.
        """
        while self.backend.has_idle_worker():
            allowed: Optional[int] = None
            for condition in conditions:
                remaining = condition.remaining_trials(self)
                if remaining is not None:
                    headroom = remaining - self.backend.in_flight
                    allowed = headroom if allowed is None else min(allowed, headroom)
            if allowed is not None and allowed <= 0:
                break
            proposal_started = time.perf_counter()
            configuration = self.algorithm.propose(
                self.history, pending=self.backend.pending_configurations())
            self.search_overhead_s += time.perf_counter() - proposal_started
            worker = self.backend.submit(configuration)
            self._notify("on_dispatch", configuration, worker)

    def _drive_async(self, conditions: Sequence[StopCondition]) -> Optional[StopCondition]:
        """Completion-driven loop: no barrier, no worker clock sync.

        Each iteration tops up every idle worker with a pending-aware
        proposal, then pops exactly one completion event: the record is
        ingested, observed, and counted toward the checkpoint cadence, and
        stop conditions are re-evaluated — all at trial granularity.  While
        a condition fires, dispatching pauses and in-flight trials drain
        into the history (they started before the budget expired, matching
        the batch engine's at-most-one-batch overshoot).  Conditions are
        judged against the whole history after every ingested trial, so a
        non-monotone condition (e.g. an incumbent plateau reset by a drained
        trial) can un-fire and resume dispatching — exactly as a new
        incumbent inside a batch resets the plateau at the next barrier.
        """
        stopped_by: Optional[StopCondition] = None
        if self.evaluate_default_first and not self.history:
            self._run_default_first(dispatch_event=True)
        while True:
            stopped_by = self._stopped_by(conditions)
            if stopped_by is not None:
                if self.backend.in_flight == 0:
                    break
            else:
                self._dispatch_async(conditions)
                if self.backend.in_flight == 0:
                    # Budgets gated dispatch to zero with nothing running:
                    # the next condition check is definitive.
                    stopped_by = self._stopped_by(conditions)
                    break
            record = self.backend.next_completion()
            self._ingest_batch([record])
            self._observe([record])
            self.batches_run += 1
            self._checkpoint()
        return stopped_by
