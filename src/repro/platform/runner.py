"""The search session: the core exploration loop of the platform.

A session iterates "select configuration → evaluate → record" until the
iteration or (virtual) time budget is exhausted, then reports the best
configuration found, how long it took to find it, and the full exploration
history used by the evaluation figures.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.config.space import Configuration
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.platform.metrics import Metric
from repro.platform.pipeline import BenchmarkingPipeline
from repro.search.base import SearchAlgorithm


class SessionResult:
    """Outcome of one complete search session."""

    def __init__(self, history: ExplorationHistory, algorithm_name: str,
                 search_overhead_s: float, builds_skipped: int) -> None:
        self.history = history
        self.algorithm_name = algorithm_name
        self.search_overhead_s = search_overhead_s
        self.builds_skipped = builds_skipped

    @property
    def best_record(self) -> Optional[TrialRecord]:
        return self.history.best_record()

    @property
    def best_configuration(self) -> Optional[Configuration]:
        best = self.best_record
        return None if best is None else best.configuration

    @property
    def best_objective(self) -> Optional[float]:
        return self.history.best_objective()

    @property
    def crash_rate(self) -> float:
        return self.history.crash_rate()

    @property
    def time_to_best_s(self) -> Optional[float]:
        return self.history.time_to_best_s()

    @property
    def iterations(self) -> int:
        return len(self.history)

    def summary(self) -> dict:
        data = self.history.summary()
        data.update({
            "algorithm": self.algorithm_name,
            "search_overhead_s": self.search_overhead_s,
            "builds_skipped": self.builds_skipped,
        })
        return data

    def __repr__(self) -> str:
        return "SessionResult(algorithm={}, iterations={}, best={!r})".format(
            self.algorithm_name, self.iterations, self.best_objective
        )


class SearchSession:
    """Runs one specialization search with a given algorithm and budget."""

    def __init__(self, pipeline: BenchmarkingPipeline, algorithm: SearchAlgorithm,
                 metric: Optional[Metric] = None,
                 evaluate_default_first: bool = False) -> None:
        self.pipeline = pipeline
        self.algorithm = algorithm
        self.metric = metric or pipeline.metric
        self.history = ExplorationHistory(self.metric)
        #: when set, the very first trial benchmarks the default configuration
        #: so the incumbent baseline is always part of the explored set (and
        #: of the model's training data).
        self.evaluate_default_first = evaluate_default_first

    def run(self, iterations: Optional[int] = None,
            time_budget_s: Optional[float] = None) -> SessionResult:
        """Run the exploration loop until the iteration or time budget is spent.

        *time_budget_s* is measured on the platform's virtual clock, i.e. in
        simulated benchmarking time, matching how the paper expresses budgets
        (e.g. "a time budget of 3 hours").
        """
        if iterations is None and time_budget_s is None:
            raise ValueError("a session needs an iteration or time budget")
        search_overhead = 0.0
        completed = 0
        if self.evaluate_default_first and not self.history:
            record = self.pipeline.evaluate(self.pipeline.space.default_configuration())
            self.history.add(record)
            self.algorithm.observe(record)
            completed += 1
        while True:
            if iterations is not None and completed >= iterations:
                break
            if time_budget_s is not None and self.pipeline.clock.now_s >= time_budget_s:
                break
            proposal_started = time.perf_counter()
            configuration = self.algorithm.propose(self.history)
            search_overhead += time.perf_counter() - proposal_started

            record = self.pipeline.evaluate(configuration)
            self.history.add(record)

            observe_started = time.perf_counter()
            self.algorithm.observe(record)
            search_overhead += time.perf_counter() - observe_started
            completed += 1
        return SessionResult(
            history=self.history,
            algorithm_name=self.algorithm.name,
            search_overhead_s=search_overhead,
            builds_skipped=self.pipeline.builds_skipped,
        )
