"""Cross-application similarity of configuration-parameter importance.

Figure 5 of the paper compares the parameter-importance vectors of the four
applications: a value close to 1 at the intersection of two applications
means their performance is impacted by similar parameters (Nginx, Redis and
SQLite cluster together; NPB stands apart).  The similarity of two importance
vectors is their cosine similarity, which is 1 on the diagonal by
construction and decreases as the sets of influential parameters diverge.

This module is also the donor-selection layer of the **surrogate model
zoo** (see :mod:`repro.deeptune.transfer` for the on-disk format):
:func:`select_donor` ranks zoo entries against a target experiment's
importance vector with exactly the Figure 5 machinery
(:func:`cross_similarity_matrix` over the sorted union of parameter
names) and applies the compatibility rules —

* the donor's space fingerprint must equal the target's (same encoded
  geometry; cross-space transfer is refused, not attempted);
* the donor must come from a *different* application (warm-starting an
  application from its own surrogate is resuming, not transfer);
* the donor must have trained on at least one observation;
* the best similarity score must clear ``min_similarity``, otherwise the
  experiment cold-starts.

Selection is deterministic: ties break toward the lexicographically
smallest entry id, so every worker that reads the same zoo picks the same
donor — a requirement of the campaign fabric's byte-determinism
invariants.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

Array = np.ndarray

#: below this cosine similarity a donor is considered unrelated (the
#: Figure 5 off-cluster cells sit well under it) and cold start wins.
DEFAULT_MIN_SIMILARITY = 0.2


def _as_matrix(importances: Dict[str, Dict[str, float]],
               applications: Sequence[str]) -> Tuple[Array, List[str]]:
    """Stack per-application importance dicts into an aligned matrix."""
    parameter_names = sorted({name for app in applications
                              for name in importances[app]})
    matrix = np.zeros((len(applications), len(parameter_names)))
    for row, app in enumerate(applications):
        for column, name in enumerate(parameter_names):
            matrix[row, column] = importances[app].get(name, 0.0)
    return matrix, parameter_names


def cosine_similarity(first: Array, second: Array) -> float:
    """Cosine similarity of two non-negative importance vectors."""
    first = np.asarray(first, dtype=np.float64).reshape(-1)
    second = np.asarray(second, dtype=np.float64).reshape(-1)
    norm = np.linalg.norm(first) * np.linalg.norm(second)
    if norm < 1e-12:
        return 0.0
    return float(np.dot(first, second) / norm)


def cross_similarity_matrix(importances: Dict[str, Dict[str, float]],
                            applications: Sequence[str]) -> Array:
    """Return the (len(applications) x len(applications)) similarity matrix."""
    matrix, _ = _as_matrix(importances, applications)
    n = len(applications)
    result = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            result[i, j] = cosine_similarity(matrix[i], matrix[j])
    return result


def select_donor(entries: Sequence[Dict[str, Any]], target_application: str,
                 target_fingerprint: str,
                 target_importance: Dict[str, float],
                 min_similarity: float = DEFAULT_MIN_SIMILARITY,
                 donor: Optional[str] = None,
                 ) -> Optional[Tuple[Dict[str, Any], float]]:
    """Pick the nearest-neighbour zoo entry for a warm start, or ``None``.

    *entries* are zoo index records (see :mod:`repro.deeptune.transfer`);
    the winner is the compatible entry whose importance vector has the
    highest cosine similarity to *target_importance* (ties toward the
    smaller entry id).  *donor*, when given, restricts candidates to that
    application — an explicit donor still has to pass the fingerprint and
    ``min_similarity`` gates.  Returns ``(entry, similarity)``.
    """
    candidates = [
        entry for entry in entries
        if entry.get("fingerprint") == target_fingerprint
        and entry.get("application") != target_application
        and int(entry.get("observations", 0)) > 0
        and isinstance(entry.get("importance"), dict)
        and (donor is None or entry.get("application") == donor)
    ]
    if not candidates:
        return None
    candidates.sort(key=lambda entry: str(entry.get("id")))
    labels = ["__target__"] + [str(entry["id"]) for entry in candidates]
    importances = {"__target__": dict(target_importance)}
    for entry in candidates:
        importances[str(entry["id"])] = {
            str(name): float(value)
            for name, value in entry["importance"].items()}
    matrix = cross_similarity_matrix(importances, labels)
    scores = matrix[0, 1:]
    best = int(np.argmax(scores))  # first max wins = smallest id on ties
    score = float(scores[best])
    if score < min_similarity:
        return None
    return candidates[best], score


def similarity_report(matrix: Array, applications: Sequence[str]) -> str:
    """Render the similarity matrix as a fixed-width text table."""
    header = "          " + "  ".join("{:>8}".format(app[:8]) for app in applications)
    lines = [header]
    for index, app in enumerate(applications):
        cells = "  ".join("{:8.3f}".format(matrix[index, j])
                          for j in range(len(applications)))
        lines.append("{:<10}".format(app[:10]) + cells)
    return "\n".join(lines)
