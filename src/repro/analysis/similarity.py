"""Cross-application similarity of configuration-parameter importance.

Figure 5 of the paper compares the parameter-importance vectors of the four
applications: a value close to 1 at the intersection of two applications
means their performance is impacted by similar parameters (Nginx, Redis and
SQLite cluster together; NPB stands apart).  The similarity of two importance
vectors is their cosine similarity, which is 1 on the diagonal by
construction and decreases as the sets of influential parameters diverge.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

Array = np.ndarray


def _as_matrix(importances: Dict[str, Dict[str, float]],
               applications: Sequence[str]) -> Tuple[Array, List[str]]:
    """Stack per-application importance dicts into an aligned matrix."""
    parameter_names = sorted({name for app in applications
                              for name in importances[app]})
    matrix = np.zeros((len(applications), len(parameter_names)))
    for row, app in enumerate(applications):
        for column, name in enumerate(parameter_names):
            matrix[row, column] = importances[app].get(name, 0.0)
    return matrix, parameter_names


def cosine_similarity(first: Array, second: Array) -> float:
    """Cosine similarity of two non-negative importance vectors."""
    first = np.asarray(first, dtype=np.float64).reshape(-1)
    second = np.asarray(second, dtype=np.float64).reshape(-1)
    norm = np.linalg.norm(first) * np.linalg.norm(second)
    if norm < 1e-12:
        return 0.0
    return float(np.dot(first, second) / norm)


def cross_similarity_matrix(importances: Dict[str, Dict[str, float]],
                            applications: Sequence[str]) -> Array:
    """Return the (len(applications) x len(applications)) similarity matrix."""
    matrix, _ = _as_matrix(importances, applications)
    n = len(applications)
    result = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            result[i, j] = cosine_similarity(matrix[i], matrix[j])
    return result


def similarity_report(matrix: Array, applications: Sequence[str]) -> str:
    """Render the similarity matrix as a fixed-width text table."""
    header = "          " + "  ".join("{:>8}".format(app[:8]) for app in applications)
    lines = [header]
    for index, app in enumerate(applications):
        cells = "  ".join("{:8.3f}".format(matrix[index, j])
                          for j in range(len(applications)))
        lines.append("{:<10}".format(app[:10]) + cells)
    return "\n".join(lines)
