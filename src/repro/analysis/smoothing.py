"""Curve smoothing used when rendering the evaluation figures.

The paper smooths the per-iteration series of Figures 6, 9, 10 and 11 "for
readability"; the helpers below provide the same treatment for the series the
benchmark harness prints.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def moving_average(values: Sequence[float], window: int = 10) -> List[float]:
    """Trailing moving average; NaN entries (crashes) are ignored in each window."""
    if window < 1:
        raise ValueError("window must be at least 1")
    values = list(values)
    smoothed: List[float] = []
    for index in range(len(values)):
        chunk = [v for v in values[max(0, index - window + 1): index + 1]
                 if v is not None and not (isinstance(v, float) and np.isnan(v))]
        if chunk:
            smoothed.append(float(np.mean(chunk)))
        else:
            smoothed.append(float("nan"))
    return smoothed


def smooth_series(series: Sequence[Tuple[float, Optional[float]]],
                  window: int = 10) -> List[Tuple[float, float]]:
    """Smooth an (x, y) series, dropping leading points with no finite value."""
    xs = [x for x, _ in series]
    ys = moving_average([y for _, y in series], window=window)
    return [(x, y) for x, y in zip(xs, ys) if not np.isnan(y)]


def downsample(series: Sequence[Tuple[float, float]], max_points: int = 50
               ) -> List[Tuple[float, float]]:
    """Keep at most *max_points* evenly spaced points of a series (for reports)."""
    series = list(series)
    if len(series) <= max_points:
        return series
    indices = np.linspace(0, len(series) - 1, max_points).astype(int)
    return [series[int(index)] for index in indices]
