"""Analysis utilities shared by the benchmarks, tests and examples.

The campaign aggregation layer (:mod:`repro.analysis.campaign_report`) is
not re-exported here: it pulls in the platform stack, while this package
root stays importable by the dependency-light config/analysis consumers.
"""

from repro.analysis.reporting import format_series, format_table
from repro.analysis.similarity import cross_similarity_matrix
from repro.analysis.smoothing import moving_average, smooth_series
from repro.analysis.stats import (
    classification_accuracy,
    failure_and_run_accuracy,
    normalized_mae,
)

__all__ = [
    "cross_similarity_matrix",
    "moving_average",
    "smooth_series",
    "classification_accuracy",
    "failure_and_run_accuracy",
    "normalized_mae",
    "format_table",
    "format_series",
]
