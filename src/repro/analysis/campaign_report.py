"""Cross-experiment aggregation and reporting for campaign directories.

The campaign runner leaves one history document per experiment plus a
manifest in the campaign directory; this module folds them into the
cross-experiment views the paper reports: a best-objective-per-application
table (columns per algorithm, Table 3 style), a time-to-best table per
algorithm (Figure 8's headline numbers), and a Figure 7-style
per-iteration cost series per algorithm.  Everything renders through the
plain-text :func:`~repro.analysis.reporting.format_table` /
:func:`~repro.analysis.reporting.format_series` helpers, so a campaign
report needs no plotting dependency — it is the text form of the figures.

The aggregation is the *streaming* tier of the storage lane: table builders
fold the manifest's per-experiment summaries (never trial records), and the
per-iteration cost series reads ``duration_s``/``index`` straight off each
experiment's mmap-backed :class:`~repro.platform.trialstore.ColumnarHistoryView`
— so a report over many 10⁵-trial experiments costs O(trials) numpy column
work and zero payload parsing, instead of JSON-decoding every stored
configuration.  It also never needs to rebuild the configuration spaces,
which keeps ``campaign report`` instant even for campaigns over
experiment-scale spaces.
"""

from __future__ import annotations

import os
from statistics import mean
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.reporting import format_series, format_table
from repro.platform.campaign_runner import (STATUS_COMPLETE, STATUS_FAILED,
                                            STATUS_FAILED_PERMANENT,
                                            load_manifest)
from repro.platform.trialstore import ColumnarHistoryView


class CampaignResults:
    """A loaded view of a campaign directory: manifest plus result documents."""

    def __init__(self, directory: str, manifest: Dict[str, Any]) -> None:
        self.directory = directory
        self.manifest = manifest
        self._documents: Dict[str, Dict[str, Any]] = {}
        self._views: Dict[str, ColumnarHistoryView] = {}

    @property
    def name(self) -> str:
        return self.manifest["campaign"]["name"]

    @property
    def experiments(self) -> List[Dict[str, Any]]:
        return list(self.manifest["experiments"])

    @property
    def completed(self) -> List[Dict[str, Any]]:
        return [entry for entry in self.manifest["experiments"]
                if entry["status"] == STATUS_COMPLETE]

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.manifest["experiments"]:
            counts[entry["status"]] = counts.get(entry["status"], 0) + 1
        return counts

    def axis_values(self, field: str) -> List[Any]:
        """Distinct values of one spec *field* across the grid, in grid order."""
        values: List[Any] = []
        for entry in self.manifest["experiments"]:
            value = entry["spec"].get(field)
            if value not in values:
                values.append(value)
        return values

    def view(self, name: str) -> ColumnarHistoryView:
        """The lazy columnar view of experiment *name* (cached).

        Numeric aggregation should go through this: columns stream off the
        mmap and the payload sidecar is never opened, so the cost is
        O(trials) column reads rather than O(total payload bytes) JSON.
        """
        if name not in self._views:
            from repro.platform.results import open_history_view

            path = os.path.join(self.directory, name + ".json")
            self._views[name] = open_history_view(path)
        return self._views[name]

    def document(self, name: str) -> Dict[str, Any]:
        """The stored history document of experiment *name* (cached).

        Records live in the columnar sidecars since results format 2; this
        materializes the manifest-referenced prefix under ``"records"``, so
        callers that genuinely need configurations keep the inline-records
        shape.  Aggregation code should prefer :meth:`view`.
        """
        if name not in self._documents:
            view = self.view(name)
            document = dict(view.document)
            document["records"] = view.record_dicts()
            self._documents[name] = document
        return self._documents[name]


def load_campaign(directory: str) -> CampaignResults:
    """Open a campaign directory written by the campaign runner."""
    return CampaignResults(directory, load_manifest(directory))


def _mean_or_none(values: List[float]) -> Optional[float]:
    return mean(values) if values else None


def _fmt(value: Optional[float], pattern: str = "{:.2f}") -> str:
    return "-" if value is None else pattern.format(value)


def _completed_matching(results: CampaignResults,
                        **spec_fields: Any) -> List[Dict[str, Any]]:
    matched = []
    for entry in results.completed:
        if all(entry["spec"].get(field) == value
               for field, value in spec_fields.items()):
            matched.append(entry)
    return matched


def best_objective_document(results: CampaignResults) -> Dict[str, Any]:
    """Raw (unformatted) Table 3-style data: application x algorithm means.

    The machine-readable twin of :func:`best_objective_table` — same rows,
    raw floats (``None`` for cells whose experiments have not completed).
    """
    algorithms = results.axis_values("algorithm")
    rows: List[List[Any]] = []
    for application in results.axis_values("application"):
        row: List[Any] = [application]
        for algorithm in algorithms:
            entries = _completed_matching(results, application=application,
                                          algorithm=algorithm)
            values = [entry["summary"]["best_objective"] for entry in entries
                      if entry["summary"].get("best_objective") is not None]
            row.append(_mean_or_none(values))
        rows.append(row)
    return {
        "title": "{}: mean best objective per application".format(results.name),
        "columns": ["application"] + list(algorithms),
        "rows": rows,
    }


def best_objective_table(results: CampaignResults) -> str:
    """Mean best objective per application x algorithm (Table 3 style).

    Seeds (and, when swept, favor presets) of the same grid cell are
    averaged; cells whose experiments have not completed render as ``-``.
    Renders :func:`best_objective_document`, so the text and JSON forms
    cannot drift apart.
    """
    document = best_objective_document(results)
    rows = [[row[0]] + [_fmt(value) for value in row[1:]]
            for row in document["rows"]]
    return format_table(document["columns"], rows, title=document["title"])


def _mean_utilization(entry: Dict[str, Any]) -> Optional[float]:
    """Fleet-mean worker utilization of one completed experiment, if stored."""
    per_worker = entry["summary"].get("worker_utilization")
    if not per_worker:
        return None
    return mean(per_worker)


def time_to_best_document(results: CampaignResults) -> Dict[str, Any]:
    """Raw per-algorithm efficiency data behind :func:`time_to_best_table`."""
    rows: List[List[Any]] = []
    for algorithm in results.axis_values("algorithm"):
        entries = _completed_matching(results, algorithm=algorithm)
        ttb = [entry["summary"]["time_to_best_s"] for entry in entries
               if entry["summary"].get("time_to_best_s") is not None]
        improvement = [entry["summary"]["improvement_factor"]
                       for entry in entries
                       if entry["summary"].get("improvement_factor") is not None]
        crash = [entry["summary"]["crash_rate"] for entry in entries
                 if entry["summary"].get("crash_rate") is not None]
        utilization = [value for value in map(_mean_utilization, entries)
                       if value is not None]
        rows.append([
            algorithm,
            len(entries),
            _mean_or_none([t / 3600.0 for t in ttb]),
            _mean_or_none(improvement),
            _mean_or_none(crash),
            _mean_or_none(utilization),
        ])
    return {
        "title": "{}: search efficiency per algorithm".format(results.name),
        "columns": ["algorithm", "experiments", "time to best (h)",
                    "improvement", "crash rate", "worker util"],
        "rows": rows,
    }


def time_to_best_table(results: CampaignResults) -> str:
    """Per-algorithm search efficiency: time-to-best, improvement, utilization."""
    document = time_to_best_document(results)
    rows = [(algorithm, experiments, _fmt(ttb_h),
             _fmt(improvement, "{:.2f}x"), _fmt(crash, "{:.0%}"),
             _fmt(utilization, "{:.0%}"))
            for algorithm, experiments, ttb_h, improvement, crash, utilization
            in document["rows"]]
    return format_table(tuple(document["columns"]), rows,
                        title=document["title"])


def per_iteration_cost_series(results: CampaignResults,
                              algorithm: str) -> List[Tuple[float, float]]:
    """Figure 7-style series: mean per-trial benchmarking cost by iteration.

    Each completed experiment of *algorithm* contributes its records'
    ``duration_s`` keyed by trial index; the series is the per-index mean,
    truncated to the shortest experiment so every point averages the same
    population.

    The per-experiment gather is the O(trials) part and runs vectorized on
    the columnar view (stable argsort + column fancy-index, no payload
    parsing).  The cross-experiment reduction stays on
    :func:`statistics.mean` — its exact rational summation is what the
    pre-columnar reader used, so the emitted floats are bit-identical
    (:func:`per_iteration_cost_series_reference` pins this in tests).
    """
    per_experiment: List[Any] = []
    for entry in _completed_matching(results, algorithm=algorithm):
        durations = results.view(entry["name"]).cost_by_iteration()
        if len(durations):
            per_experiment.append(durations)
    if not per_experiment:
        return []
    horizon = min(len(durations) for durations in per_experiment)
    if len(per_experiment) == 1:
        # mean([x]) == x exactly, so a single experiment's column can be
        # emitted directly — the common case for per-algorithm sweeps.
        column = per_experiment[0]
        return [(float(index), float(column[index]))
                for index in range(horizon)]
    return [(float(index),
             mean(float(durations[index]) for durations in per_experiment))
            for index in range(horizon)]


def per_iteration_cost_series_reference(
        results: CampaignResults,
        algorithm: str) -> List[Tuple[float, float]]:
    """The pre-columnar oracle for :func:`per_iteration_cost_series`.

    Materializes every record dict and aggregates them the way the original
    reader did; retained so tests can pin the streaming path bit-identical.
    """
    per_experiment: List[List[float]] = []
    for entry in _completed_matching(results, algorithm=algorithm):
        records = results.document(entry["name"]).get("records", [])
        durations = [float(record.get("duration_s", 0.0))
                     for record in sorted(records,
                                          key=lambda r: int(r["index"]))]
        if durations:
            per_experiment.append(durations)
    if not per_experiment:
        return []
    horizon = min(len(durations) for durations in per_experiment)
    return [(float(index),
             mean(durations[index] for durations in per_experiment))
            for index in range(horizon)]


def warm_start_document(results: CampaignResults) -> Dict[str, Any]:
    """Warm-start provenance per experiment as raw table data.

    Completed experiments that adopted a zoo donor carry a ``warm_start``
    block in their stored summary (donor application, zoo entry,
    similarity score); this surfaces it instead of silently dropping it.
    Rows are empty for cold-started campaigns, and the table renders only
    when rows exist — same contract as the failed-experiments table.
    """
    rows: List[List[Any]] = []
    for entry in results.completed:
        provenance = (entry.get("summary") or {}).get("warm_start")
        if not provenance:
            continue
        rows.append([entry["name"],
                     provenance.get("donor"),
                     provenance.get("similarity"),
                     provenance.get("observations")])
    return {
        "title": "Warm-started experiments (donor picked from the surrogate zoo)",
        "columns": ["experiment", "donor", "similarity", "donor obs"],
        "rows": rows,
    }


def failed_experiments_document(results: CampaignResults) -> Dict[str, Any]:
    """Failed/quarantined experiments as raw table data (rows may be empty)."""
    failed = [entry for entry in results.experiments
              if entry["status"] in (STATUS_FAILED, STATUS_FAILED_PERMANENT)]
    return {
        "title": "Failed experiments (failed-permanent = quarantined)",
        "columns": ["experiment", "status", "attempts", "error"],
        "rows": [[entry["name"], entry["status"],
                  int(entry.get("attempts", 0)),
                  (entry.get("error") or "").strip().splitlines()[-1]
                  if (entry.get("error") or "").strip() else ""]
                 for entry in failed],
    }


def campaign_report_document(directory: str) -> Dict[str, Any]:
    """The whole campaign report as one JSON-representable document.

    This is the machine-readable form served by the tuning service's
    ``/v1/jobs/{id}/report`` endpoint and by ``campaign report --json``;
    :func:`render_campaign_report` formats the same per-table documents, so
    the two views agree cell for cell.  Series carry their full point
    lists (downsampling to ``max_points`` is a text-rendering concern).
    """
    results = load_campaign(directory)
    series = []
    for algorithm in results.axis_values("algorithm"):
        points = per_iteration_cost_series(results, algorithm)
        if points:
            series.append({"algorithm": algorithm,
                           "points": [[index, cost]
                                      for index, cost in points]})
    return {
        "campaign": results.name,
        "experiments": len(results.experiments),
        "status": results.status_counts(),
        "best_objective": best_objective_document(results),
        "time_to_best": time_to_best_document(results),
        "per_iteration_cost": series,
        "warm_start": warm_start_document(results),
        "failed": failed_experiments_document(results),
    }


def render_campaign_report(directory: str, max_points: int = 12) -> str:
    """The full plain-text report of a campaign directory."""
    results = load_campaign(directory)
    counts = results.status_counts()
    status = ", ".join("{} {}".format(count, status)
                       for status, count in sorted(counts.items()))
    sections = [
        "Campaign {!r}: {} experiments ({})".format(
            results.name, len(results.experiments), status),
        "",
        best_objective_table(results),
        "",
        time_to_best_table(results),
    ]
    for algorithm in results.axis_values("algorithm"):
        series = per_iteration_cost_series(results, algorithm)
        if series:
            sections.append("")
            sections.append(format_series(
                series, "iteration", "mean trial cost (s)",
                title="{}: per-iteration cost ({})".format(results.name,
                                                           algorithm),
                max_points=max_points))
    # rendered only when any experiment warm-started, so cold campaigns
    # keep their historical report bytes
    warm = warm_start_document(results)
    if warm["rows"]:
        sections.append("")
        sections.append(format_table(
            tuple(warm["columns"]),
            [(name, donor, _fmt(similarity, "{:.3f}"), observations)
             for name, donor, similarity, observations in warm["rows"]],
            title=warm["title"]))
    # rendered only when failures exist, so a chaos run whose experiments
    # all ultimately completed reports byte-identically to a clean run
    failed = failed_experiments_document(results)
    if failed["rows"]:
        sections.append("")
        sections.append(format_table(
            tuple(failed["columns"]),
            [tuple(row) for row in failed["rows"]],
            title=failed["title"]))
    return "\n".join(sections)
