"""Plain-text rendering of the tables and figure series the benchmarks emit.

The benchmark harness has no plotting dependency, so every figure is reported
as the series of points the paper plots (downsampled and smoothed the same
way), and every table as a fixed-width text table.  The rendering is kept in
one place so reports look consistent across all experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a fixed-width table with a separator under the header."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(series: Sequence[Tuple[float, float]], x_label: str, y_label: str,
                  title: Optional[str] = None, max_points: int = 25) -> str:
    """Render an (x, y) series as a two-column table, downsampled for brevity."""
    points = list(series)
    if len(points) > max_points:
        step = max(1, len(points) // max_points)
        points = points[::step]
    return format_table(
        (x_label, y_label),
        [("{:.1f}".format(x), "{:.3f}".format(y)) for x, y in points],
        title=title,
    )


def _cell(value: object) -> str:
    if isinstance(value, float):
        return "{:.3f}".format(value)
    return str(value)
