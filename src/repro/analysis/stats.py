"""Prediction-quality statistics (Table 3)."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

Array = np.ndarray


def classification_accuracy(predicted: Sequence[bool], actual: Sequence[bool]) -> float:
    """Plain accuracy of a boolean prediction series."""
    predicted = np.asarray(predicted, dtype=bool)
    actual = np.asarray(actual, dtype=bool)
    if predicted.shape != actual.shape:
        raise ValueError("prediction and ground truth must have the same shape")
    if predicted.size == 0:
        return 0.0
    return float(np.mean(predicted == actual))


def failure_and_run_accuracy(crash_probability: Sequence[float],
                             actually_crashed: Sequence[bool],
                             threshold: float = 0.5) -> Tuple[float, float]:
    """Per-class accuracies of the crash predictor (Table 3).

    *failure accuracy* is the accuracy on configurations that actually
    failed (how often the model called the crash); *run accuracy* is the
    accuracy on configurations that actually ran (how often the model
    predicted a clean run for them).
    """
    probability = np.asarray(crash_probability, dtype=np.float64)
    crashed = np.asarray(actually_crashed, dtype=bool)
    predicted_crash = probability >= threshold
    failure_mask = crashed
    run_mask = ~crashed
    failure_accuracy = (
        float(np.mean(predicted_crash[failure_mask])) if failure_mask.any() else 0.0
    )
    run_accuracy = (
        float(np.mean(~predicted_crash[run_mask])) if run_mask.any() else 0.0
    )
    return failure_accuracy, run_accuracy


def normalized_mae(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Mean absolute error normalized by the observed range of the target."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    mask = ~np.isnan(actual) & ~np.isnan(predicted)
    if not mask.any():
        return 0.0
    predicted = predicted[mask]
    actual = actual[mask]
    spread = float(actual.max() - actual.min())
    if spread < 1e-12:
        spread = max(abs(float(actual.mean())), 1e-12)
    return float(np.mean(np.abs(predicted - actual))) / spread


def prediction_quality_summary(crash_probability: Sequence[float],
                               actually_crashed: Sequence[bool],
                               predicted_performance: Sequence[float],
                               actual_performance: Sequence[float]) -> Dict[str, float]:
    """Bundle the three Table 3 statistics for one application."""
    failure_accuracy, run_accuracy = failure_and_run_accuracy(
        crash_probability, actually_crashed)
    return {
        "failure_accuracy": failure_accuracy,
        "run_accuracy": run_accuracy,
        "normalized_mae": normalized_mae(predicted_performance, actual_performance),
    }
