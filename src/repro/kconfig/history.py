"""Historical growth of the Linux compile-time configuration space (Figure 1).

The paper's Figure 1 plots the number of Kconfig compile-time options per
kernel release, from v2.6.13 (2005) to v6.0 (2022), growing from roughly five
thousand to about twenty thousand options.  The table below encodes that
series; the census benchmark regenerates the figure from it and checks the
monotone-growth property.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Number of Kconfig compile-time options per Linux release, as plotted in
#: Figure 1 of the paper (values follow the well-documented near-linear growth
#: of the Kconfig option population over time).
KCONFIG_OPTION_COUNTS: Dict[str, int] = {
    "v2.6.13": 5349,
    "v2.6.20": 6732,
    "v2.6.27": 8267,
    "v2.6.35": 9836,
    "v3.2": 11328,
    "v3.10": 12934,
    "v3.17": 13907,
    "v4.4": 15287,
    "v4.12": 16313,
    "v4.19": 17273,
    "v5.6": 18684,
    "v5.13": 19598,
    "v6.0": 21272,
}

#: Approximate release year of each version (used as the x-axis when a time
#: axis is preferred over a version axis).
RELEASE_YEARS: Dict[str, int] = {
    "v2.6.13": 2005,
    "v2.6.20": 2007,
    "v2.6.27": 2008,
    "v2.6.35": 2010,
    "v3.2": 2012,
    "v3.10": 2013,
    "v3.17": 2014,
    "v4.4": 2016,
    "v4.12": 2017,
    "v4.19": 2018,
    "v5.6": 2020,
    "v5.13": 2021,
    "v6.0": 2022,
}


def kconfig_growth_series() -> List[Tuple[str, int]]:
    """Return (version, option count) pairs in release order."""
    return list(KCONFIG_OPTION_COUNTS.items())


def option_count(version: str) -> int:
    """Return the compile-time option count for *version*.

    Raises ``KeyError`` for versions outside the plotted range.
    """
    return KCONFIG_OPTION_COUNTS[version]
