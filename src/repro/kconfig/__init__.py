"""Synthetic Kconfig models of the operating systems under test.

This subpackage generates structurally faithful configuration spaces for the
Linux kernel (several versions, used for the Figure 1 census and for the
search experiments) and the Unikraft unikernel (the 33-parameter space used
in §4.4), including compile-time option types, dependency constraints, and
the runtime/boot-time parameter inventories.
"""

from repro.kconfig.history import KCONFIG_OPTION_COUNTS, kconfig_growth_series
from repro.kconfig.linux import (
    LinuxSpaceBuilder,
    linux_census,
    linux_experiment_space,
    linux_full_space,
)
from repro.kconfig.model import KconfigGenerator, KconfigOption
from repro.kconfig.unikraft import unikraft_nginx_space

__all__ = [
    "KconfigOption",
    "KconfigGenerator",
    "LinuxSpaceBuilder",
    "linux_full_space",
    "linux_experiment_space",
    "linux_census",
    "unikraft_nginx_space",
    "KCONFIG_OPTION_COUNTS",
    "kconfig_growth_series",
]
