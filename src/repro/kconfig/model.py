"""Generic Kconfig-style option model and synthetic option generator.

The real Linux Kconfig hierarchy is a tree of menus containing typed options
(bool, tristate, string, hex, int) connected by ``depends on`` edges and
``range`` statements.  We cannot ship the kernel sources, so this module
generates a synthetic hierarchy with the same statistical structure: the same
mix of option types, realistic dependency fan-out, subsystem grouping, and a
fraction of "fragile" options whose unusual values make the resulting kernel
likely to fail at build, boot, or run time (the source of the ~1/3 crash rate
the paper observes for random configurations).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.config.constraints import Constraint, DependsOn
from repro.config.parameter import (
    BoolParameter,
    HexParameter,
    IntParameter,
    Parameter,
    ParameterKind,
    StringParameter,
    TristateParameter,
)

#: Subsystem prefixes used when generating synthetic compile-time options.
#: The weights roughly follow the share of options per kernel subsystem.
SUBSYSTEMS: Sequence[Tuple[str, float]] = (
    ("NET", 0.22),
    ("DRIVERS", 0.30),
    ("FS", 0.10),
    ("MM", 0.06),
    ("SCHED", 0.04),
    ("BLOCK", 0.05),
    ("CRYPTO", 0.05),
    ("SECURITY", 0.04),
    ("SOUND", 0.04),
    ("ARCH", 0.06),
    ("DEBUG", 0.04),
)


class KconfigOption:
    """A single synthetic Kconfig option plus its generation metadata.

    Attributes
    ----------
    parameter:
        The :class:`repro.config.Parameter` describing the option.
    subsystem:
        Subsystem prefix the option belongs to (``NET``, ``MM``, ...).
    fragile:
        If True, unusual values of this option tend to break the build or
        boot (modelled by :mod:`repro.vm.failures`).
    footprint_cost:
        Approximate number of kilobytes the option adds to the kernel image
        and resident memory when enabled (used by the memory-footprint
        experiments, Figure 10).
    performance_relevant:
        If True, the option participates in the application performance
        response surfaces (most compile-time options do not).
    """

    def __init__(
        self,
        parameter: Parameter,
        subsystem: str,
        fragile: bool = False,
        footprint_cost: float = 0.0,
        performance_relevant: bool = False,
    ) -> None:
        self.parameter = parameter
        self.subsystem = subsystem
        self.fragile = fragile
        self.footprint_cost = footprint_cost
        self.performance_relevant = performance_relevant

    @property
    def name(self) -> str:
        return self.parameter.name

    def __repr__(self) -> str:
        return "KconfigOption({!r}, subsystem={!r}, fragile={})".format(
            self.name, self.subsystem, self.fragile
        )


class KconfigGenerator:
    """Generates a synthetic Kconfig option population.

    The generator is deterministic for a given seed, so two runs of the same
    experiment see the exact same configuration space.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    # -- helpers ---------------------------------------------------------------
    def _pick_subsystem(self) -> str:
        roll = self._rng.random()
        cumulative = 0.0
        for name, weight in SUBSYSTEMS:
            cumulative += weight
            if roll <= cumulative:
                return name
        return SUBSYSTEMS[-1][0]

    def _option_name(self, subsystem: str, index: int, suffix: str = "") -> str:
        return "CONFIG_{}_OPT{}{}".format(subsystem, index, suffix)

    # -- generation --------------------------------------------------------------
    def generate(
        self,
        n_bool: int,
        n_tristate: int,
        n_string: int,
        n_hex: int,
        n_int: int,
        dependency_fraction: float = 0.35,
        fragile_fraction: float = 0.12,
    ) -> Tuple[List[KconfigOption], List[Constraint]]:
        """Generate compile-time options and their dependency constraints.

        *dependency_fraction* of the bool/tristate options depend on another
        option in the same subsystem; *fragile_fraction* of all options are
        marked fragile.
        """
        options: List[KconfigOption] = []
        index = 0

        def make(parameter: Parameter, subsystem: str) -> KconfigOption:
            fragile = self._rng.random() < fragile_fraction
            footprint = 0.0
            if isinstance(parameter, (BoolParameter, TristateParameter)):
                # Enabled features cost between a few KiB and a couple of MiB.
                footprint = self._rng.uniform(2.0, 2048.0) * self._rng.random() ** 2
            option = KconfigOption(
                parameter,
                subsystem,
                fragile=fragile,
                footprint_cost=footprint,
                performance_relevant=self._rng.random() < 0.05,
            )
            options.append(option)
            return option

        for _ in range(n_bool):
            subsystem = self._pick_subsystem()
            default = self._rng.random() < 0.45
            parameter = BoolParameter(
                self._option_name(subsystem, index), ParameterKind.COMPILE_TIME, default
            )
            make(parameter, subsystem)
            index += 1

        for _ in range(n_tristate):
            subsystem = self._pick_subsystem()
            default = self._rng.choice(["n", "n", "m", "y"])
            parameter = TristateParameter(
                self._option_name(subsystem, index), ParameterKind.COMPILE_TIME, default
            )
            make(parameter, subsystem)
            index += 1

        for _ in range(n_string):
            subsystem = self._pick_subsystem()
            choices = ["", "default", "{}-profile".format(subsystem.lower())]
            parameter = StringParameter(
                self._option_name(subsystem, index, "_NAME"),
                ParameterKind.COMPILE_TIME,
                choices=choices,
                default="",
            )
            make(parameter, subsystem)
            index += 1

        for _ in range(n_hex):
            subsystem = self._pick_subsystem()
            maximum = 0xFFFFFFFF
            default = self._rng.choice([0x0, 0x1000, 0x100000, 0x80000000])
            parameter = HexParameter(
                self._option_name(subsystem, index, "_ADDR"),
                ParameterKind.COMPILE_TIME,
                default=default,
                minimum=0,
                maximum=maximum,
                log_scale=True,
            )
            make(parameter, subsystem)
            index += 1

        for _ in range(n_int):
            subsystem = self._pick_subsystem()
            magnitude = self._rng.choice([16, 64, 256, 1024, 4096, 65536, 1 << 20])
            default = max(1, magnitude // 2)
            parameter = IntParameter(
                self._option_name(subsystem, index, "_SIZE"),
                ParameterKind.COMPILE_TIME,
                default=default,
                minimum=0,
                maximum=magnitude * 16,
                log_scale=True,
            )
            make(parameter, subsystem)
            index += 1

        constraints = self._generate_dependencies(options, dependency_fraction)
        return options, constraints

    def _generate_dependencies(
        self, options: Sequence[KconfigOption], dependency_fraction: float
    ) -> List[Constraint]:
        """Create DependsOn edges between feature options of the same subsystem."""
        by_subsystem: Dict[str, List[KconfigOption]] = {}
        for option in options:
            if isinstance(option.parameter, (BoolParameter, TristateParameter)):
                by_subsystem.setdefault(option.subsystem, []).append(option)
        constraints: List[Constraint] = []

        def enabled_by_default(option: KconfigOption) -> bool:
            return option.parameter.default in (True, "y", "m")

        for members in by_subsystem.values():
            if len(members) < 2:
                continue
            for option in members[1:]:
                if self._rng.random() < dependency_fraction:
                    provider = self._rng.choice(members[: members.index(option)] or members[:1])
                    if provider.name == option.name:
                        continue
                    # Keep the default configuration valid (a real defconfig
                    # satisfies its own dependency graph): never generate an
                    # edge that the defaults would already violate.
                    if enabled_by_default(option) and not enabled_by_default(provider):
                        continue
                    constraints.append(DependsOn(option.name, provider.name))
        return constraints
