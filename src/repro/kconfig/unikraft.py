"""Unikraft unikernel configuration space (§4.4 of the paper).

The Unikraft experiment explores 33 configuration parameters: 10 Nginx
application-level parameters plus 23 Unikraft OS parameters, for a search
space of roughly 3.7e13 permutations.  Unikraft is a library OS, so its
"compile-time" options directly select which micro-libraries are linked into
the image and how they are sized (scheduler, memory allocator, network stack
buffers, VFS).  Because the unikernel has far less incidental machinery than
Linux, well-chosen configurations improve throughput much more than on Linux
— the behaviour Figure 9 shows.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    IntParameter,
    Parameter,
    ParameterKind,
)
from repro.config.constraints import Constraint, DependsOn
from repro.config.space import ConfigSpace

COMPILE = ParameterKind.COMPILE_TIME
RUNTIME = ParameterKind.RUNTIME


def _unikraft_os_parameters() -> List[Parameter]:
    """The 23 Unikraft OS-level parameters."""
    return [
        # Scheduler and threading.
        CategoricalParameter("uk.sched", COMPILE, choices=("coop", "preempt"),
                             default="coop", description="uksched scheduler flavour"),
        IntParameter("uk.sched_timeslice_ms", COMPILE, default=10, minimum=1, maximum=100),
        IntParameter("uk.thread_stack_pages", COMPILE, default=4, minimum=1, maximum=64,
                     log_scale=True),
        # Memory allocator.
        CategoricalParameter("uk.allocator", COMPILE,
                             choices=("buddy", "bbuddy", "mimalloc", "tlsf"),
                             default="buddy"),
        IntParameter("uk.heap_pages", COMPILE, default=8192, minimum=1024, maximum=262144,
                     log_scale=True),
        BoolParameter("uk.alloc_stats", COMPILE, default=False),
        # Network stack (lwip-derived).
        BoolParameter("uk.lwip", COMPILE, default=True),
        IntParameter("uk.lwip_tcp_snd_buf_kb", COMPILE, default=64, minimum=4, maximum=4096,
                     log_scale=True),
        IntParameter("uk.lwip_tcp_wnd_kb", COMPILE, default=64, minimum=4, maximum=4096,
                     log_scale=True),
        IntParameter("uk.lwip_pbuf_pool_size", COMPILE, default=256, minimum=16, maximum=16384,
                     log_scale=True),
        IntParameter("uk.lwip_num_tcp_pcb", COMPILE, default=64, minimum=8, maximum=4096,
                     log_scale=True),
        BoolParameter("uk.lwip_nagle_off", COMPILE, default=False),
        IntParameter("uk.netdev_rx_descs", COMPILE, default=256, minimum=32, maximum=4096,
                     log_scale=True),
        IntParameter("uk.netdev_tx_descs", COMPILE, default=256, minimum=32, maximum=4096,
                     log_scale=True),
        BoolParameter("uk.netdev_dispatcher", COMPILE, default=True),
        # VFS / ramfs.
        CategoricalParameter("uk.vfs", COMPILE, choices=("ramfs", "9pfs"), default="ramfs"),
        IntParameter("uk.vfs_cache_entries", COMPILE, default=512, minimum=32, maximum=16384,
                     log_scale=True),
        # Boot/platform.
        BoolParameter("uk.pagetable_huge", COMPILE, default=False),
        BoolParameter("uk.pci_passthrough", COMPILE, default=False),
        IntParameter("uk.boot_stack_pages", COMPILE, default=2, minimum=1, maximum=32),
        # Debug and instrumentation.
        BoolParameter("uk.debug_printk", COMPILE, default=False),
        BoolParameter("uk.trace", COMPILE, default=False),
        BoolParameter("uk.assertions", COMPILE, default=True),
    ]


def _nginx_application_parameters() -> List[Parameter]:
    """The 10 Nginx application-level parameters explored alongside the OS."""
    return [
        IntParameter("nginx.worker_processes", RUNTIME, default=1, minimum=1, maximum=16),
        IntParameter("nginx.worker_connections", RUNTIME, default=512, minimum=64,
                     maximum=65536, log_scale=True),
        BoolParameter("nginx.sendfile", RUNTIME, default=True),
        BoolParameter("nginx.tcp_nopush", RUNTIME, default=False),
        BoolParameter("nginx.tcp_nodelay", RUNTIME, default=True),
        IntParameter("nginx.keepalive_timeout", RUNTIME, default=65, minimum=0, maximum=600),
        IntParameter("nginx.keepalive_requests", RUNTIME, default=100, minimum=1,
                     maximum=100000, log_scale=True),
        BoolParameter("nginx.access_log", RUNTIME, default=True),
        BoolParameter("nginx.gzip", RUNTIME, default=False),
        IntParameter("nginx.open_file_cache", RUNTIME, default=0, minimum=0, maximum=65536,
                     log_scale=True),
    ]


def _unikraft_constraints() -> List[Constraint]:
    return [
        DependsOn("uk.lwip_nagle_off", "uk.lwip"),
        DependsOn("uk.netdev_dispatcher", "uk.lwip"),
    ]


def unikraft_nginx_space(name: str = "unikraft-nginx") -> ConfigSpace:
    """Return the 33-parameter Unikraft+Nginx space used for Figure 9."""
    parameters = _unikraft_os_parameters() + _nginx_application_parameters()
    space = ConfigSpace(parameters, _unikraft_constraints(), name=name)
    return space


def unikraft_parameter_split(space: ConfigSpace) -> Tuple[List[str], List[str]]:
    """Return (OS parameter names, application parameter names) of the space."""
    os_params = [p.name for p in space.parameters() if p.name.startswith("uk.")]
    app_params = [p.name for p in space.parameters() if p.name.startswith("nginx.")]
    return os_params, app_params
