"""Synthetic Linux kernel configuration spaces.

Two spaces are produced from the same model:

* :func:`linux_full_space` — a full-scale space whose option counts match the
  Table 1 census of the paper (≈21 k compile-time options, 231 boot options,
  13 328 runtime options for v6.0).  It is used by the census benchmark and
  by scalability tests; it is far too large to feed to a simulated search.
* :func:`linux_experiment_space` — the scaled-down space actually searched in
  the experiments: every *named*, behaviour-bearing option (networking and VM
  sysctls, scheduler knobs, debug switches, the compile-time feature flags
  the applications depend on) plus a configurable tail of neutral filler
  options, several hundred parameters in total.  The behavioural structure —
  which options matter for which application, which options are fragile —
  is what the search algorithms are evaluated on, and it is preserved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config.constraints import Constraint, DependsOn, ForbiddenCombination
from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    IntParameter,
    Parameter,
    ParameterKind,
)
from repro.config.space import ConfigSpace
from repro.kconfig.model import KconfigGenerator, KconfigOption
from repro.sysctl.bootparams import boot_parameters
from repro.sysctl.procfs import SYSCTL_CATALOG, SysctlEntry, runtime_parameters

#: Table 1 of the paper: configuration-space census for Linux 6.0, plus the
#: (smaller) census we use for the v4.19 kernel of the main experiments.
VERSION_CENSUS: Dict[str, Dict[str, int]] = {
    "v6.0": {
        "bool": 7585,
        "tristate": 10034,
        "string": 154,
        "hex": 94,
        "int": 3405,
        "boot": 231,
        "runtime": 13328,
    },
    "v4.19": {
        "bool": 6224,
        "tristate": 8101,
        "string": 121,
        "hex": 85,
        "int": 2742,
        "boot": 196,
        "runtime": 11026,
    },
}


class NamedCompileOption:
    """Declaration of a compile-time option with known behaviour."""

    def __init__(self, parameter: Parameter, fragile: bool = False,
                 footprint_kb: float = 0.0, roles: Tuple[str, ...] = (),
                 essential_for: Tuple[str, ...] = ()) -> None:
        self.parameter = parameter
        self.fragile = fragile
        self.footprint_kb = footprint_kb
        self.roles = roles
        self.essential_for = essential_for


def _named_compile_options() -> List[NamedCompileOption]:
    """The compile-time feature flags the applications and footprint model use."""
    kind = ParameterKind.COMPILE_TIME

    def flag(name, default, fragile=False, footprint=0.0, roles=(), essential_for=()):
        return NamedCompileOption(
            BoolParameter(name, kind, default=default),
            fragile=fragile, footprint_kb=footprint, roles=tuple(roles),
            essential_for=tuple(essential_for),
        )

    options = [
        # Core subsystems that applications need to run at all.
        flag("CONFIG_NET", True, footprint=4096, roles=("net_stack",),
             essential_for=("nginx", "redis")),
        flag("CONFIG_INET", True, footprint=2048, roles=("net_stack",),
             essential_for=("nginx", "redis")),
        flag("CONFIG_EPOLL", True, footprint=64, roles=("event_io",),
             essential_for=("nginx", "redis")),
        flag("CONFIG_EVENTFD", True, footprint=16, roles=("event_io",),
             essential_for=("nginx",)),
        flag("CONFIG_FUTEX", True, footprint=32, roles=("threading",),
             essential_for=("nginx", "redis", "sqlite", "npb")),
        flag("CONFIG_SHMEM", True, footprint=128, roles=("shm",),
             essential_for=("npb",)),
        flag("CONFIG_AIO", True, footprint=48, roles=("aio",),
             essential_for=("sqlite",)),
        flag("CONFIG_BLOCK", True, footprint=1024, roles=("block",),
             essential_for=("sqlite",)),
        flag("CONFIG_EXT4_FS", True, footprint=2048, roles=("fs",),
             essential_for=("sqlite",)),
        flag("CONFIG_TMPFS", True, footprint=256, roles=("fs",)),
        flag("CONFIG_VIRTIO_NET", True, footprint=192, roles=("virtio",),
             essential_for=("nginx", "redis")),
        flag("CONFIG_VIRTIO_BLK", True, footprint=128, roles=("virtio",),
             essential_for=("sqlite",)),
        flag("CONFIG_VIRTIO_PCI", True, footprint=96, roles=("virtio",),
             essential_for=("nginx", "redis", "sqlite")),
        flag("CONFIG_SMP", True, footprint=512, roles=("smp",),
             essential_for=("nginx", "npb")),
        flag("CONFIG_PROC_SYSCTL", True, footprint=64, roles=("sysctl",),
             essential_for=("nginx", "redis", "sqlite", "npb")),
        # Performance-relevant but optional features.
        flag("CONFIG_NUMA", True, footprint=384, roles=("numa",)),
        flag("CONFIG_TRANSPARENT_HUGEPAGE", True, footprint=256, roles=("thp",)),
        flag("CONFIG_COMPACTION", True, footprint=128, roles=("compaction",)),
        flag("CONFIG_SWAP", True, footprint=512, roles=("swap",)),
        flag("CONFIG_MEMCG", True, footprint=640, roles=("cgroup",)),
        flag("CONFIG_CGROUPS", True, footprint=768, roles=("cgroup",)),
        flag("CONFIG_NAMESPACES", True, footprint=256, roles=("namespaces",)),
        flag("CONFIG_HUGETLBFS", True, footprint=192, roles=("hugepages",)),
        flag("CONFIG_HIGH_RES_TIMERS", True, footprint=64, roles=("timers",)),
        flag("CONFIG_NO_HZ_IDLE", True, footprint=32, roles=("tickless",)),
        flag("CONFIG_JUMP_LABEL", True, footprint=16, roles=("codegen",)),
        flag("CONFIG_RETPOLINE", True, footprint=64, roles=("mitigation",)),
        flag("CONFIG_PAGE_TABLE_ISOLATION", True, footprint=64, roles=("mitigation",)),
        flag("CONFIG_MODULES", True, footprint=1024, roles=("modules",)),
        flag("CONFIG_KALLSYMS", True, footprint=1536, roles=("introspection",)),
        flag("CONFIG_IKCONFIG", False, footprint=128, roles=("introspection",)),
        flag("CONFIG_PRINTK", True, footprint=256, roles=("logging",)),
        flag("CONFIG_AUDIT", False, footprint=512, roles=("audit",)),
        flag("CONFIG_SECURITY_SELINUX", False, footprint=1024, roles=("lsm",)),
        # Debugging options: large footprint, negative performance impact.
        flag("CONFIG_DEBUG_KERNEL", False, footprint=1024, roles=("debug",)),
        flag("CONFIG_DEBUG_INFO", False, footprint=8192, roles=("debug_info",)),
        flag("CONFIG_KASAN", False, fragile=True, footprint=16384, roles=("sanitizer",)),
        flag("CONFIG_UBSAN", False, footprint=4096, roles=("sanitizer",)),
        flag("CONFIG_LOCKDEP", False, footprint=2048, roles=("lock_debug",)),
        flag("CONFIG_DEBUG_PAGEALLOC", False, fragile=True, footprint=512,
             roles=("page_debug",)),
        flag("CONFIG_SLUB_DEBUG_ON", False, footprint=256, roles=("slab_debug",)),
        flag("CONFIG_FTRACE", True, footprint=1536, roles=("tracing",)),
        flag("CONFIG_KPROBES", True, footprint=256, roles=("tracing",)),
        flag("CONFIG_PROFILING", True, footprint=128, roles=("profiling",)),
        flag("CONFIG_SCHED_DEBUG", True, footprint=128, roles=("sched_debug",)),
    ]
    options.extend([
        NamedCompileOption(
            CategoricalParameter("CONFIG_HZ", kind, choices=("100", "250", "300", "1000"),
                                 default="250", description="timer interrupt frequency"),
            roles=("hz",),
        ),
        NamedCompileOption(
            CategoricalParameter("CONFIG_PREEMPT_MODEL", kind,
                                 choices=("none", "voluntary", "full"),
                                 default="voluntary"),
            roles=("preempt",),
        ),
        NamedCompileOption(
            CategoricalParameter("CONFIG_SLAB_ALLOCATOR", kind,
                                 choices=("SLAB", "SLUB", "SLOB"), default="SLUB"),
            fragile=True, roles=("allocator",),
        ),
        NamedCompileOption(
            IntParameter("CONFIG_NR_CPUS", kind, default=64, minimum=1, maximum=512,
                         log_scale=True),
            fragile=True, footprint_kb=0.0, roles=("nr_cpus",),
        ),
        NamedCompileOption(
            IntParameter("CONFIG_LOG_BUF_SHIFT", kind, default=17, minimum=12, maximum=25),
            roles=("log_buf",),
        ),
    ])
    return options


def _named_constraints() -> List[Constraint]:
    """Dependency edges between the named compile-time options."""
    return [
        DependsOn("CONFIG_INET", "CONFIG_NET"),
        DependsOn("CONFIG_VIRTIO_NET", "CONFIG_NET"),
        DependsOn("CONFIG_VIRTIO_NET", "CONFIG_VIRTIO_PCI"),
        DependsOn("CONFIG_VIRTIO_BLK", "CONFIG_BLOCK"),
        DependsOn("CONFIG_VIRTIO_BLK", "CONFIG_VIRTIO_PCI"),
        DependsOn("CONFIG_EXT4_FS", "CONFIG_BLOCK"),
        DependsOn("CONFIG_MEMCG", "CONFIG_CGROUPS"),
        DependsOn("CONFIG_HUGETLBFS", "CONFIG_SHMEM"),
        DependsOn("CONFIG_TRANSPARENT_HUGEPAGE", "CONFIG_COMPACTION"),
        DependsOn("CONFIG_NUMA", "CONFIG_SMP"),
        DependsOn("CONFIG_LOCKDEP", "CONFIG_DEBUG_KERNEL"),
        DependsOn("CONFIG_DEBUG_PAGEALLOC", "CONFIG_DEBUG_KERNEL"),
        DependsOn("CONFIG_KASAN", "CONFIG_DEBUG_KERNEL"),
        DependsOn("CONFIG_KPROBES", "CONFIG_MODULES"),
        DependsOn("CONFIG_IKCONFIG", "CONFIG_PROC_SYSCTL"),
        ForbiddenCombination(
            {"CONFIG_KASAN": True, "CONFIG_DEBUG_PAGEALLOC": True},
            reason="KASAN and DEBUG_PAGEALLOC instrumentation conflict",
        ),
    ]


class LinuxSpaceBuilder:
    """Builds Linux configuration spaces and exposes their behavioural metadata.

    The metadata — which options are fragile, how much footprint each feature
    costs, which sysctl entries exist — is consumed by the simulated VM
    (:mod:`repro.vm`) and by the application models (:mod:`repro.apps`).
    """

    def __init__(self, version: str = "v4.19", seed: int = 0) -> None:
        if version not in VERSION_CENSUS:
            raise ValueError(
                "unknown Linux version {!r} (known: {})".format(
                    version, ", ".join(sorted(VERSION_CENSUS))
                )
            )
        self.version = version
        self.seed = seed
        self.named_options = _named_compile_options()
        self.sysctl_entries: Dict[str, SysctlEntry] = {e.path: e for e in SYSCTL_CATALOG}

    # -- census ---------------------------------------------------------------
    def census(self) -> Dict[str, int]:
        """Return the Table 1 option counts for this kernel version."""
        return dict(VERSION_CENSUS[self.version])

    # -- metadata ----------------------------------------------------------------
    def fragile_option_names(self) -> List[str]:
        return [option.parameter.name for option in self.named_options if option.fragile]

    def footprint_costs(self) -> Dict[str, float]:
        """KiB of kernel image/resident memory each named feature adds when enabled."""
        return {
            option.parameter.name: option.footprint_kb
            for option in self.named_options
            if option.footprint_kb > 0
        }

    def essential_features(self, application: str) -> List[str]:
        """Compile-time options that *application* cannot run without."""
        return [
            option.parameter.name
            for option in self.named_options
            if application in option.essential_for
        ]

    # -- spaces -------------------------------------------------------------------
    def experiment_space(
        self,
        extra_compile: int = 120,
        extra_runtime: int = 80,
        extra_boot: int = 12,
        name: Optional[str] = None,
    ) -> ConfigSpace:
        """The scaled-down space used by the search experiments."""
        parameters: List[Parameter] = [o.parameter for o in self.named_options]
        constraints: List[Constraint] = _named_constraints()

        generator = KconfigGenerator(seed=self.seed + 1)
        filler_options, filler_constraints = generator.generate(
            n_bool=int(extra_compile * 0.4),
            n_tristate=int(extra_compile * 0.35),
            n_string=max(1, int(extra_compile * 0.05)),
            n_hex=max(1, int(extra_compile * 0.05)),
            n_int=int(extra_compile * 0.15),
        )
        self._filler_options = filler_options
        parameters.extend(option.parameter for option in filler_options)
        constraints.extend(filler_constraints)

        parameters.extend(boot_parameters(extra_generic=extra_boot, seed=self.seed + 2))
        parameters.extend(runtime_parameters(extra_generic=extra_runtime, seed=self.seed + 3))

        space = ConfigSpace(
            parameters,
            constraints,
            name=name or "linux-{}-experiment".format(self.version),
        )
        return space

    def filler_option_metadata(self) -> List[KconfigOption]:
        """Metadata of the generated filler compile-time options (footprint, fragility)."""
        return list(getattr(self, "_filler_options", []))

    def full_space(self, name: Optional[str] = None) -> ConfigSpace:
        """A space whose per-type option counts match the Table 1 census.

        Only used for the census benchmark and scalability studies; encoding
        this space would produce vectors tens of thousands of columns wide.
        """
        census = self.census()
        generator = KconfigGenerator(seed=self.seed + 10)
        options, constraints = generator.generate(
            n_bool=census["bool"],
            n_tristate=census["tristate"],
            n_string=census["string"],
            n_hex=census["hex"],
            n_int=census["int"],
            dependency_fraction=0.0,
        )
        parameters: List[Parameter] = [option.parameter for option in options]
        parameters.extend(
            boot_parameters(
                extra_generic=census["boot"] - len(boot_parameters(0)), seed=self.seed + 11
            )
        )
        runtime_named = len(SYSCTL_CATALOG)
        parameters.extend(
            runtime_parameters(
                extra_generic=census["runtime"] - runtime_named, seed=self.seed + 12
            )
        )
        return ConfigSpace(parameters, constraints,
                           name=name or "linux-{}-full".format(self.version))


def linux_experiment_space(version: str = "v4.19", seed: int = 0, **kwargs) -> ConfigSpace:
    """Convenience wrapper returning the experiment space for *version*."""
    return LinuxSpaceBuilder(version, seed).experiment_space(**kwargs)


def linux_full_space(version: str = "v6.0", seed: int = 0) -> ConfigSpace:
    """Convenience wrapper returning the full-scale census space for *version*."""
    return LinuxSpaceBuilder(version, seed).full_space()


def linux_census(version: str = "v6.0") -> Dict[str, int]:
    """Return the Table 1 census counts for *version*."""
    return LinuxSpaceBuilder(version).census()
