"""Application and benchmark-tool models.

Each application model maps an OS configuration to the metric the paper
measures for that application (request throughput for Nginx and Redis,
per-operation latency for SQLite, aggregate Mop/s for the NAS Parallel
Benchmarks), reproducing which configuration parameters matter for which
application.  Benchmark-tool models add measurement noise and the wall-clock
cost of running the benchmark.
"""

from repro.apps.base import Application, BenchmarkTool, Measurement
from repro.apps.nginx import NginxApplication, WrkBenchmark
from repro.apps.npb import NPBApplication, NPBSuiteBenchmark
from repro.apps.redis import RedisApplication, RedisBenchmark
from repro.apps.registry import available_applications, get_application, get_bench_tool
from repro.apps.sqlite import SQLiteApplication, SQLiteBenchmark
from repro.apps.unikraft_nginx import UnikraftNginxApplication

__all__ = [
    "Application",
    "BenchmarkTool",
    "Measurement",
    "NginxApplication",
    "WrkBenchmark",
    "RedisApplication",
    "RedisBenchmark",
    "SQLiteApplication",
    "SQLiteBenchmark",
    "NPBApplication",
    "NPBSuiteBenchmark",
    "UnikraftNginxApplication",
    "get_application",
    "get_bench_tool",
    "available_applications",
]
