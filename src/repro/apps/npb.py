"""NAS Parallel Benchmarks (NPB) model: FT, MG, CG and IS (OpenMP).

The metric is the aggregate operation rate (Mop/s) across the selected
kernels and size classes.  NPB is CPU- and memory-bound and requests almost
no OS functionality once running, so — as the paper observes — the OS
configuration has very little impact on it (about 2 % in Table 2).  The
response surface therefore consists of small contributions from memory
management (transparent hugepages, NUMA balancing) and scheduler knobs, and
is otherwise flat.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.apps.base import Application, BenchmarkTool
from repro.apps.perfmodel import (
    as_float,
    choice_bonus,
    feature_enabled,
    linear_preference,
    log_saturating,
    value_of,
)
from repro.vm.machine import PAPER_TESTBED, HardwareSpec


class NPBApplication(Application):
    """The FT/MG/CG/IS mix of the NAS Parallel Benchmarks, classes S-B."""

    name = "npb"
    metric = "rate"
    unit = "Mop/s"
    direction = "maximize"
    cores_used = 16

    BASE_RATE = 1480.0

    def _runtime_contributions(self, config: Mapping[str, object]) -> float:
        total = 0.0
        # Large pages reduce TLB pressure for the FT/MG working sets.
        total += choice_bonus(
            value_of(config, "sys.kernel.mm.transparent_hugepage.enabled", "madvise"),
            {"always": 25.0, "madvise": 12.0, "never": 0.0})
        total += 10.0 * log_saturating(
            as_float(value_of(config, "vm.nr_hugepages", 0), 0), 512)
        if value_of(config, "kernel.numa_balancing", 1) in (0, False):
            total += 8.0
        total += 5.0 * log_saturating(
            as_float(value_of(config, "kernel.sched_migration_cost_ns", 500000), 500000),
            5_000_000)
        total += 3.0 * linear_preference(
            as_float(value_of(config, "vm.swappiness", 60), 60), 0, 200, prefer_low=True)
        total += 2.0 * log_saturating(
            as_float(value_of(config, "vm.stat_interval", 1), 1), 30)
        if value_of(config, "kernel.watchdog", 1) in (0, False):
            total += 2.0
        if value_of(config, "kernel.nmi_watchdog", 1) in (0, False):
            total += 2.0
        return total

    def _runtime_penalties(self, config: Mapping[str, object]) -> float:
        total = 0.0
        printk = as_float(value_of(config, "kernel.printk", 7), 7)
        total += 0.5 * max(0.0, printk - 4.0)
        total += 5.0 * log_saturating(
            as_float(value_of(config, "kernel.printk_delay", 0), 0), 100)
        return total

    def _compile_boot_factor(self, config: Mapping[str, object]) -> float:
        factor = 1.0
        if feature_enabled(config, "CONFIG_KASAN", False):
            factor *= 0.30
        if feature_enabled(config, "CONFIG_UBSAN", False):
            factor *= 0.75
        if feature_enabled(config, "CONFIG_DEBUG_KERNEL", False):
            factor *= 0.97
        factor *= choice_bonus(value_of(config, "CONFIG_PREEMPT_MODEL", "voluntary"),
                               {"none": 1.005, "voluntary": 1.0, "full": 0.995}, default=1.0)
        factor *= choice_bonus(value_of(config, "CONFIG_HZ", "250"),
                               {"100": 1.003, "250": 1.0, "300": 1.0, "1000": 0.996},
                               default=1.0)
        return factor

    def _core_scaling(self, config: Mapping[str, object], hardware: HardwareSpec) -> float:
        available = min(hardware.cores, int(as_float(value_of(config, "boot.maxcpus", 16), 16)))
        available = max(1, available)
        usable = min(self.cores_used, available)
        # OpenMP scaling on this kernel mix is close to linear but not perfect.
        return (usable / float(self.cores_used)) ** 0.95

    def performance(self, config: Mapping[str, object],
                    hardware: HardwareSpec = PAPER_TESTBED) -> float:
        rate = self.BASE_RATE
        rate += self._runtime_contributions(config)
        rate -= self._runtime_penalties(config)
        rate *= self._compile_boot_factor(config)
        rate *= self._core_scaling(config, hardware)
        rate *= hardware.compute_scale
        return max(rate, 10.0)

    def sensitive_parameters(self) -> List[str]:
        return [
            "sys.kernel.mm.transparent_hugepage.enabled", "vm.nr_hugepages",
            "kernel.numa_balancing", "kernel.sched_migration_cost_ns",
            "vm.swappiness", "vm.stat_interval",
        ]


class NPBSuiteBenchmark(BenchmarkTool):
    """Runs the FT/MG/CG/IS programs for each size class and aggregates Mop/s."""

    name = "npb-suite"
    noise_fraction = 0.01
    nominal_duration_s = 70.0
