"""SQLite model, benchmarked with LevelDB's SQLite3 INSERT benchmark.

The metric is the average latency per INSERT operation (microseconds,
lower is better).  SQLite under this workload is storage-intensive: its
sensitivities are the writeback and dirty-page knobs, the I/O scheduler, and
the block-queue tuning — not the network stack.  The paper finds that the
default configuration is already close to optimal for this workload, which
the model reproduces by centring the response surface on the defaults: most
deviations make latency worse, and only marginal gains are available.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.apps.base import Application, BenchmarkTool
from repro.apps.perfmodel import (
    as_float,
    choice_bonus,
    feature_enabled,
    log_peak,
    log_saturating,
    value_of,
)
from repro.vm.machine import PAPER_TESTBED, HardwareSpec


class SQLiteApplication(Application):
    """SQLite executing a stream of INSERT statements from the LevelDB bench."""

    name = "sqlite"
    metric = "latency"
    unit = "us/op"
    direction = "minimize"
    cores_used = 1

    #: latency floor with ideal settings.
    BASE_LATENCY = 278.0

    def _deviation_penalties(self, config: Mapping[str, object]) -> float:
        """Microseconds added by moving storage knobs away from their sweet spot."""
        total = 0.0
        # Dirty page ratios: the defaults (20/10) are the sweet spot for this
        # steady INSERT stream; very low values force synchronous writeback,
        # very high values cause periodic stalls.
        dirty = as_float(value_of(config, "vm.dirty_ratio", 20), 20)
        total += 90.0 * (1.0 - log_peak(max(dirty, 1.0), best=20, width_decades=0.5))
        background = as_float(value_of(config, "vm.dirty_background_ratio", 10), 10)
        total += 45.0 * (1.0 - log_peak(max(background, 1.0), best=10, width_decades=0.5))
        expire = as_float(value_of(config, "vm.dirty_expire_centisecs", 3000), 3000)
        total += 40.0 * (1.0 - log_peak(max(expire, 100.0), best=3000, width_decades=0.8))
        writeback = as_float(value_of(config, "vm.dirty_writeback_centisecs", 500), 500)
        total += 35.0 * (1.0 - log_peak(max(writeback, 1.0), best=500, width_decades=0.8))
        # Block layer: mq-deadline with the default queue sizing is best here.
        total += choice_bonus(value_of(config, "sys.block.vda.queue.scheduler", "mq-deadline"),
                              {"mq-deadline": 0.0, "kyber": 6.0, "none": 12.0, "bfq": 30.0})
        read_ahead = as_float(value_of(config, "sys.block.vda.queue.read_ahead_kb", 128), 128)
        total += 25.0 * (1.0 - log_peak(max(read_ahead, 1.0), best=128, width_decades=1.0))
        nr_requests = as_float(value_of(config, "sys.block.vda.queue.nr_requests", 256), 256)
        total += 18.0 * (1.0 - log_peak(max(nr_requests, 4.0), best=256, width_decades=1.0))
        wbt = as_float(value_of(config, "sys.block.vda.queue.wbt_lat_usec", 75000), 75000)
        total += 15.0 * (1.0 - log_peak(max(wbt, 1.0), best=75000, width_decades=1.2))
        # Memory management knobs that interfere with the page cache.
        swappiness = as_float(value_of(config, "vm.swappiness", 60), 60)
        if swappiness > 120:
            total += 20.0
        if value_of(config, "vm.overcommit_memory", 0) == 2:
            total += 35.0
        total += choice_bonus(
            value_of(config, "sys.kernel.mm.transparent_hugepage.enabled", "madvise"),
            {"madvise": 0.0, "never": 2.0, "always": 14.0})
        vfs_pressure = as_float(value_of(config, "vm.vfs_cache_pressure", 100), 100)
        total += 12.0 * (1.0 - log_peak(max(vfs_pressure, 1.0), best=100, width_decades=0.7))
        return total

    def _logging_penalties(self, config: Mapping[str, object]) -> float:
        total = 0.0
        printk = as_float(value_of(config, "kernel.printk", 7), 7)
        total += 2.0 * max(0.0, printk - 4.0)
        total += 60.0 * log_saturating(
            as_float(value_of(config, "kernel.printk_delay", 0), 0), 100)
        if value_of(config, "vm.block_dump", 0) in (1, True):
            # Block I/O debugging logs every request this workload issues.
            total += 120.0
        return total

    def _compile_factor(self, config: Mapping[str, object]) -> float:
        factor = 1.0
        if feature_enabled(config, "CONFIG_KASAN", False):
            factor *= 2.6
        if feature_enabled(config, "CONFIG_UBSAN", False):
            factor *= 1.3
        if feature_enabled(config, "CONFIG_DEBUG_KERNEL", False):
            factor *= 1.08
        if feature_enabled(config, "CONFIG_LOCKDEP", False):
            factor *= 1.2
        factor /= choice_bonus(value_of(config, "CONFIG_HZ", "250"),
                               {"100": 1.0, "250": 1.0, "300": 1.0, "1000": 0.99},
                               default=1.0)
        return factor

    def performance(self, config: Mapping[str, object],
                    hardware: HardwareSpec = PAPER_TESTBED) -> float:
        latency = self.BASE_LATENCY
        latency += self._deviation_penalties(config)
        latency += self._logging_penalties(config)
        latency *= self._compile_factor(config)
        latency /= max(hardware.compute_scale, 0.05) ** 0.7
        return max(latency, 50.0)

    def sensitive_parameters(self) -> List[str]:
        return [
            "vm.dirty_ratio", "vm.dirty_background_ratio", "vm.dirty_expire_centisecs",
            "vm.dirty_writeback_centisecs", "sys.block.vda.queue.scheduler",
            "sys.block.vda.queue.read_ahead_kb", "sys.block.vda.queue.nr_requests",
            "sys.block.vda.queue.wbt_lat_usec", "vm.vfs_cache_pressure",
            "vm.overcommit_memory", "vm.block_dump", "kernel.printk_delay",
            "sys.kernel.mm.transparent_hugepage.enabled", "vm.swappiness",
        ]


class SQLiteBenchmark(BenchmarkTool):
    """LevelDB's db_bench_sqlite3 issuing a fixed number of INSERTs."""

    name = "db_bench_sqlite3"
    noise_fraction = 0.012
    nominal_duration_s = 30.0
