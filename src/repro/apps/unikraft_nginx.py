"""Nginx running on the Unikraft unikernel (§4.4, Figure 9).

The configuration space combines 23 Unikraft OS parameters with 10 Nginx
application parameters.  Because a unikernel has almost no machinery the
application does not need, well-chosen configurations improve throughput far
more than on Linux: the paper's Figure 9 shows the search moving from a few
thousand req/s for poor configurations to roughly 50 000 req/s for the best
ones found by Wayfinder.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.apps.base import Application, BenchmarkTool
from repro.apps.perfmodel import (
    as_float,
    choice_bonus,
    feature_enabled,
    log_peak,
    log_saturating,
    value_of,
)
from repro.vm.machine import PAPER_TESTBED, HardwareSpec


class UnikraftNginxApplication(Application):
    """Nginx built as a Unikraft unikernel image, benchmarked with wrk."""

    name = "unikraft-nginx"
    metric = "throughput"
    unit = "req/s"
    direction = "maximize"
    cores_used = 1

    BASE_THROUGHPUT = 9000.0

    def _application_contributions(self, config: Mapping[str, object]) -> float:
        total = 0.0
        total += 3000.0 * log_peak(
            as_float(value_of(config, "nginx.worker_processes", 1), 1), best=2,
            width_decades=0.5)
        total += 7000.0 * log_peak(
            as_float(value_of(config, "nginx.worker_connections", 512), 512),
            best=16384, width_decades=1.2)
        # Persistent connections are the single biggest win for wrk workloads.
        keepalive_timeout = as_float(value_of(config, "nginx.keepalive_timeout", 65), 65)
        keepalive_requests = as_float(value_of(config, "nginx.keepalive_requests", 100), 100)
        if keepalive_timeout > 0:
            total += 6000.0 * log_saturating(keepalive_requests, 10000)
        if not value_of(config, "nginx.access_log", True):
            total += 5000.0
        if value_of(config, "nginx.sendfile", True):
            total += 2500.0
        if value_of(config, "nginx.tcp_nodelay", True):
            total += 2000.0
        if value_of(config, "nginx.tcp_nopush", False):
            total += 500.0
        if not value_of(config, "nginx.gzip", False):
            total += 3000.0
        total += 2500.0 * log_saturating(
            as_float(value_of(config, "nginx.open_file_cache", 0), 0), 1000)
        return total

    def _os_contributions(self, config: Mapping[str, object]) -> float:
        total = 0.0
        total += choice_bonus(value_of(config, "uk.allocator", "buddy"),
                              {"mimalloc": 4000.0, "tlsf": 2500.0, "bbuddy": 1000.0,
                               "buddy": 0.0})
        total += choice_bonus(value_of(config, "uk.sched", "coop"),
                              {"coop": 1500.0, "preempt": 0.0})
        total += 3000.0 * log_peak(
            as_float(value_of(config, "uk.lwip_tcp_snd_buf_kb", 64), 64), best=1024,
            width_decades=1.0)
        total += 3000.0 * log_peak(
            as_float(value_of(config, "uk.lwip_tcp_wnd_kb", 64), 64), best=1024,
            width_decades=1.0)
        total += 2500.0 * log_saturating(
            as_float(value_of(config, "uk.lwip_pbuf_pool_size", 256), 256), 2048)
        total += 1500.0 * log_saturating(
            as_float(value_of(config, "uk.lwip_num_tcp_pcb", 64), 64), 512)
        if value_of(config, "uk.lwip_nagle_off", False):
            total += 1500.0
        total += 1000.0 * log_peak(
            as_float(value_of(config, "uk.netdev_rx_descs", 256), 256), best=1024,
            width_decades=0.8)
        total += 1000.0 * log_peak(
            as_float(value_of(config, "uk.netdev_tx_descs", 256), 256), best=1024,
            width_decades=0.8)
        total += 2000.0 * log_saturating(
            as_float(value_of(config, "uk.heap_pages", 8192), 8192), 32768)
        total += 800.0 * log_saturating(
            as_float(value_of(config, "uk.vfs_cache_entries", 512), 512), 4096)
        return total

    def _os_factor(self, config: Mapping[str, object]) -> float:
        factor = 1.0
        if feature_enabled(config, "uk.debug_printk", False):
            factor *= 0.55
        if feature_enabled(config, "uk.trace", False):
            factor *= 0.75
        if feature_enabled(config, "uk.assertions", True):
            factor *= 0.95
        if feature_enabled(config, "uk.alloc_stats", False):
            factor *= 0.90
        if feature_enabled(config, "uk.pagetable_huge", False):
            factor *= 1.03
        return factor

    def performance(self, config: Mapping[str, object],
                    hardware: HardwareSpec = PAPER_TESTBED) -> float:
        throughput = self.BASE_THROUGHPUT
        throughput += self._application_contributions(config)
        throughput += self._os_contributions(config)
        throughput *= self._os_factor(config)
        throughput *= hardware.compute_scale ** 0.7
        return max(throughput, 500.0)

    def sensitive_parameters(self) -> List[str]:
        return [
            "nginx.worker_connections", "nginx.keepalive_requests", "nginx.access_log",
            "nginx.gzip", "nginx.sendfile", "uk.allocator", "uk.lwip_tcp_snd_buf_kb",
            "uk.lwip_tcp_wnd_kb", "uk.lwip_pbuf_pool_size", "uk.heap_pages",
            "uk.debug_printk", "uk.trace",
        ]


class UnikraftWrkBenchmark(BenchmarkTool):
    """wrk pointed at the Unikraft Nginx image (shorter runs: tiny boot times)."""

    name = "wrk-unikraft"
    noise_fraction = 0.02
    nominal_duration_s = 30.0
