"""Base classes for application and benchmark-tool models."""

from __future__ import annotations

import random
from typing import List, Mapping

from repro.vm.machine import PAPER_TESTBED, HardwareSpec


class Measurement:
    """A single benchmark measurement of one configuration."""

    def __init__(self, value: float, unit: str, metric: str, duration_s: float) -> None:
        self.value = value
        self.unit = unit
        self.metric = metric
        self.duration_s = duration_s

    def __repr__(self) -> str:
        return "Measurement({:.1f} {} [{}], {:.0f}s)".format(
            self.value, self.unit, self.metric, self.duration_s
        )


class Application:
    """Base class for an application whose performance depends on OS knobs.

    Subclasses implement :meth:`performance`, the noise-free response
    surface mapping a configuration to the application's metric value on the
    given hardware.  The direction attribute states whether larger metric
    values are better (throughput) or worse (latency).
    """

    #: short identifier used in job files and the registry.
    name = "application"
    #: human-readable metric name, e.g. "throughput".
    metric = "throughput"
    #: measurement unit, e.g. "req/s".
    unit = ""
    #: "maximize" or "minimize".
    direction = "maximize"
    #: number of cores the application is configured to use in the paper.
    cores_used = 1

    def performance(self, config: Mapping[str, object],
                    hardware: HardwareSpec = PAPER_TESTBED) -> float:
        """Noise-free metric value for *config* on *hardware*."""
        raise NotImplementedError

    def sensitive_parameters(self) -> List[str]:
        """Names of the OS parameters this application is sensitive to.

        Ground truth used by the cross-similarity analysis tests; the search
        algorithms never see this list.
        """
        return []

    @property
    def maximize(self) -> bool:
        return self.direction == "maximize"

    def is_improvement(self, candidate: float, incumbent: float) -> bool:
        """True when *candidate* beats *incumbent* under this app's direction."""
        if self.maximize:
            return candidate > incumbent
        return candidate < incumbent

    def __repr__(self) -> str:
        return "{}(metric={}, unit={}, direction={})".format(
            type(self).__name__, self.metric, self.unit, self.direction
        )


class BenchmarkTool:
    """Base class for the tool that measures an application's metric.

    The tool contributes measurement noise (benchmarks are never perfectly
    repeatable) and the wall-clock duration of a benchmark run, both of which
    matter to the platform: the paper reports 60-80 s per configuration
    evaluation, dominated by the benchmark itself.
    """

    #: registry identifier, e.g. "wrk".
    name = "bench"
    #: relative standard deviation of the measurement noise.
    noise_fraction = 0.015
    #: seconds a single benchmark run takes on the paper's testbed.
    nominal_duration_s = 40.0

    def run_duration_s(self, rng: random.Random) -> float:
        """Simulated wall-clock duration of one benchmark run."""
        jitter = 1.0 + 0.2 * (2.0 * rng.random() - 1.0)
        return self.nominal_duration_s * jitter

    def measure(self, application: Application, config: Mapping[str, object],
                hardware: HardwareSpec, rng: random.Random) -> Measurement:
        """Measure *application* under *config*: true value plus noise."""
        true_value = application.performance(config, hardware)
        noisy = true_value * (1.0 + rng.gauss(0.0, self.noise_fraction))
        noisy = max(noisy, 0.0)
        return Measurement(
            value=noisy,
            unit=application.unit,
            metric=application.metric,
            duration_s=self.run_duration_s(rng),
        )

    def __repr__(self) -> str:
        return "{}(noise={:.1%}, duration~{:.0f}s)".format(
            type(self).__name__, self.noise_fraction, self.nominal_duration_s
        )
