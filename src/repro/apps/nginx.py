"""Nginx web server model, benchmarked with wrk (throughput in req/s).

Nginx on Linux is network- and event-loop-intensive: the paper reports that
Wayfinder finds the accept backlog (``net.core.somaxconn``), default socket
receive buffer (``net.core.rmem_default``) and TCP keepalive time as the top
positive-impact parameters, ``vm.stat_interval`` as a non-obvious positive
one, and kernel verbosity (``kernel.printk``, ``kernel.printk_delay``) and
block I/O debugging (``vm.block_dump``) as the top negative ones.  The
response surface below encodes exactly those sensitivities.
"""

from __future__ import annotations

import math
from typing import List, Mapping

from repro.apps.base import Application, BenchmarkTool
from repro.apps.perfmodel import (
    as_float,
    choice_bonus,
    feature_enabled,
    linear_preference,
    log_peak,
    log_saturating,
    value_of,
)
from repro.vm.machine import PAPER_TESTBED, HardwareSpec


class NginxApplication(Application):
    """Nginx serving static content to a wrk load generator."""

    name = "nginx"
    metric = "throughput"
    unit = "req/s"
    direction = "maximize"
    cores_used = 16

    #: baseline throughput with essential features present but every tunable
    #: at its least favourable (yet valid) value.
    BASE_THROUGHPUT = 13800.0

    def _runtime_contributions(self, config: Mapping[str, object]) -> float:
        total = 0.0
        # Connection acceptance and socket buffer sizing.
        total += 1400.0 * log_peak(as_float(value_of(config, "net.core.somaxconn", 128), 128),
                                   best=8192, width_decades=1.3)
        total += 900.0 * log_peak(
            as_float(value_of(config, "net.core.rmem_default", 212992), 212992),
            best=8388608, width_decades=1.2)
        total += 500.0 * log_peak(
            as_float(value_of(config, "net.core.wmem_default", 212992), 212992),
            best=4194304, width_decades=1.4)
        total += 400.0 * log_saturating(
            as_float(value_of(config, "net.core.netdev_max_backlog", 1000), 1000), 10000)
        total += 300.0 * log_saturating(
            as_float(value_of(config, "net.ipv4.tcp_max_syn_backlog", 512), 512), 8192)
        # Keepalive: shorter keepalive recycles idle connections faster under wrk.
        keepalive = as_float(value_of(config, "net.ipv4.tcp_keepalive_time", 7200), 7200)
        total += 350.0 * linear_preference(math.log10(max(keepalive, 1.0)),
                                           math.log10(60), math.log10(32767),
                                           prefer_low=True)
        # Busy polling trades CPU for latency; moderate values help throughput.
        total += 300.0 * log_peak(as_float(value_of(config, "net.core.busy_poll", 0), 0) + 1.0,
                                  best=50, width_decades=0.8)
        total += choice_bonus(value_of(config, "net.ipv4.tcp_congestion_control", "cubic"),
                              {"bbr": 280.0, "cubic": 170.0, "htcp": 120.0, "reno": 0.0})
        total += choice_bonus(value_of(config, "net.core.default_qdisc", "pfifo_fast"),
                              {"fq": 160.0, "fq_codel": 120.0, "cake": 80.0,
                               "pfifo_fast": 60.0})
        total += choice_bonus(value_of(config, "net.ipv4.tcp_fastopen", 1),
                              {3: 120.0, 1: 40.0, 0: 0.0})
        # Less frequent vmstat refreshes reduce jitter (the "non-obvious" knob).
        total += 250.0 * log_saturating(
            as_float(value_of(config, "vm.stat_interval", 1), 1), 30)
        if value_of(config, "net.ipv4.tcp_tw_reuse", 0) in (1, True):
            total += 60.0
        total += 120.0 * linear_preference(
            as_float(value_of(config, "net.ipv4.tcp_fin_timeout", 60), 60), 1, 600,
            prefer_low=True)
        total += 200.0 * log_saturating(
            as_float(value_of(config, "kernel.sched_migration_cost_ns", 500000), 500000),
            5_000_000)
        if value_of(config, "kernel.sched_autogroup_enabled", 1) in (0, False):
            total += 50.0
        if value_of(config, "kernel.numa_balancing", 1) in (0, False):
            total += 80.0
        total += 100.0 * linear_preference(
            as_float(value_of(config, "vm.swappiness", 60), 60), 0, 200, prefer_low=True)
        total += choice_bonus(
            value_of(config, "sys.kernel.mm.transparent_hugepage.enabled", "madvise"),
            {"never": 60.0, "madvise": 40.0, "always": 0.0})
        if value_of(config, "net.ipv4.tcp_slow_start_after_idle", 1) in (0, False):
            total += 90.0
        if value_of(config, "net.ipv4.tcp_autocorking", 1) in (0, False):
            total += 30.0
        if value_of(config, "net.ipv4.tcp_low_latency", 0) in (1, True):
            total += 40.0
        return total

    def _runtime_penalties(self, config: Mapping[str, object]) -> float:
        total = 0.0
        # Kernel logging and debugging: the documented Nginx throughput killers.
        printk = as_float(value_of(config, "kernel.printk", 7), 7)
        total += 90.0 * max(0.0, printk - 4.0)
        # Starving the accept queue or the socket buffers collapses throughput
        # well before the point where the run outright fails.
        if as_float(value_of(config, "net.core.somaxconn", 128), 128) < 64:
            total += 700.0
        if as_float(value_of(config, "net.core.rmem_default", 212992), 212992) < 65536:
            total += 600.0
        total += 700.0 * log_saturating(
            as_float(value_of(config, "kernel.printk_delay", 0), 0), 100)
        if value_of(config, "vm.block_dump", 0) in (1, True):
            total += 400.0
        if value_of(config, "kernel.watchdog", 1) in (1, True):
            total += 40.0
        if value_of(config, "kernel.nmi_watchdog", 1) in (1, True):
            total += 60.0
        # Disabling fundamental TCP features is catastrophic for wrk throughput.
        if value_of(config, "net.ipv4.tcp_window_scaling", 1) in (0, False):
            total += 1500.0
        if value_of(config, "net.ipv4.tcp_sack", 1) in (0, False):
            total += 250.0
        if value_of(config, "net.ipv4.tcp_timestamps", 1) in (0, False):
            total += 120.0
        return total

    def _compile_boot_factor(self, config: Mapping[str, object]) -> float:
        factor = 1.0
        if feature_enabled(config, "CONFIG_KASAN", False):
            factor *= 0.45
        if feature_enabled(config, "CONFIG_UBSAN", False):
            factor *= 0.80
        if feature_enabled(config, "CONFIG_LOCKDEP", False):
            factor *= 0.85
        if feature_enabled(config, "CONFIG_DEBUG_PAGEALLOC", False):
            factor *= 0.80
        if feature_enabled(config, "CONFIG_DEBUG_KERNEL", False):
            factor *= 0.93
        if feature_enabled(config, "CONFIG_SLUB_DEBUG_ON", False):
            factor *= 0.92
        factor *= choice_bonus(value_of(config, "CONFIG_PREEMPT_MODEL", "voluntary"),
                               {"none": 1.02, "voluntary": 1.0, "full": 0.97}, default=1.0)
        factor *= choice_bonus(value_of(config, "CONFIG_HZ", "250"),
                               {"100": 1.01, "250": 1.0, "300": 0.999, "1000": 0.985},
                               default=1.0)
        factor *= choice_bonus(value_of(config, "CONFIG_SLAB_ALLOCATOR", "SLUB"),
                               {"SLUB": 1.0, "SLAB": 0.98, "SLOB": 0.90}, default=1.0)
        if not feature_enabled(config, "CONFIG_RETPOLINE", True):
            factor *= 1.02
        if not feature_enabled(config, "CONFIG_PAGE_TABLE_ISOLATION", True):
            factor *= 1.03
        factor *= choice_bonus(value_of(config, "boot.mitigations", "auto"),
                               {"off": 1.04, "auto,nosmt": 0.99, "auto": 1.0}, default=1.0)
        factor *= choice_bonus(value_of(config, "boot.pti", "auto"),
                               {"off": 1.01, "on": 0.995, "auto": 1.0}, default=1.0)
        return factor

    def _core_scaling(self, config: Mapping[str, object], hardware: HardwareSpec) -> float:
        available = min(hardware.cores, int(as_float(value_of(config, "boot.maxcpus", 16), 16)))
        available = max(1, available)
        usable = min(self.cores_used, available)
        return (usable / float(self.cores_used)) ** 0.9

    def performance(self, config: Mapping[str, object],
                    hardware: HardwareSpec = PAPER_TESTBED) -> float:
        throughput = self.BASE_THROUGHPUT
        throughput += self._runtime_contributions(config)
        throughput -= self._runtime_penalties(config)
        throughput = max(throughput, 2000.0)
        throughput *= self._compile_boot_factor(config)
        throughput *= self._core_scaling(config, hardware)
        throughput *= hardware.compute_scale ** 0.6
        return max(throughput, 500.0)

    def sensitive_parameters(self) -> List[str]:
        return [
            "net.core.somaxconn", "net.core.rmem_default", "net.core.wmem_default",
            "net.core.netdev_max_backlog", "net.ipv4.tcp_max_syn_backlog",
            "net.ipv4.tcp_keepalive_time", "net.core.busy_poll",
            "net.ipv4.tcp_congestion_control", "net.core.default_qdisc",
            "net.ipv4.tcp_fastopen", "vm.stat_interval", "kernel.printk",
            "kernel.printk_delay", "vm.block_dump", "net.ipv4.tcp_window_scaling",
            "net.ipv4.tcp_sack", "kernel.sched_migration_cost_ns", "vm.swappiness",
        ]


class WrkBenchmark(BenchmarkTool):
    """The wrk HTTP load generator used to benchmark Nginx."""

    name = "wrk"
    noise_fraction = 0.018
    nominal_duration_s = 45.0
