"""Registry mapping application and bench-tool names to their models."""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from repro.apps.base import Application, BenchmarkTool
from repro.apps.nginx import NginxApplication, WrkBenchmark
from repro.apps.npb import NPBApplication, NPBSuiteBenchmark
from repro.apps.redis import RedisApplication, RedisBenchmark
from repro.apps.sqlite import SQLiteApplication, SQLiteBenchmark
from repro.apps.unikraft_nginx import UnikraftNginxApplication, UnikraftWrkBenchmark

#: application name -> (application class, default bench-tool class)
_REGISTRY: Dict[str, Tuple[Type[Application], Type[BenchmarkTool]]] = {
    "nginx": (NginxApplication, WrkBenchmark),
    "redis": (RedisApplication, RedisBenchmark),
    "sqlite": (SQLiteApplication, SQLiteBenchmark),
    "npb": (NPBApplication, NPBSuiteBenchmark),
    "unikraft-nginx": (UnikraftNginxApplication, UnikraftWrkBenchmark),
}

_BENCH_TOOLS: Dict[str, Type[BenchmarkTool]] = {
    cls.name: cls
    for _, cls in _REGISTRY.values()
}


def available_applications() -> List[str]:
    """Names of the applications shipped with the reproduction."""
    return sorted(_REGISTRY.keys())


def get_application(name: str) -> Application:
    """Instantiate the application model registered under *name*."""
    try:
        application_cls, _ = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown application {!r}; available: {}".format(
                name, ", ".join(available_applications())
            )
        ) from None
    return application_cls()


def get_bench_tool(name: str) -> BenchmarkTool:
    """Instantiate a bench tool either by tool name or by application name."""
    if name in _BENCH_TOOLS:
        return _BENCH_TOOLS[name]()
    if name in _REGISTRY:
        return _REGISTRY[name][1]()
    raise KeyError(
        "unknown bench tool {!r}; available: {}".format(
            name, ", ".join(sorted(_BENCH_TOOLS) + available_applications())
        )
    )


def default_bench_tool_for(application: str) -> BenchmarkTool:
    """Return the bench tool the paper pairs with *application*."""
    if application not in _REGISTRY:
        raise KeyError("unknown application {!r}".format(application))
    return _REGISTRY[application][1]()
