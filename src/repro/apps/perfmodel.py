"""Response-curve helpers shared by the application performance models.

Every application model is a sum of smooth contributions, one per OS knob the
application is sensitive to.  The helpers below provide the common shapes:

* :func:`log_peak` — a bell on a logarithmic axis: too small starves the
  resource, too large wastes cache/memory (socket buffers, backlogs).
* :func:`log_saturating` — grows with the (log of the) value and saturates
  (e.g. file-descriptor limits: enough is enough).
* :func:`linear_preference` — a linear pull towards one end of a bounded
  range (e.g. swappiness: lower is better for a latency-sensitive server).
* :func:`step_penalty` — a flat penalty when a condition holds (debug
  features enabled, feature compiled out).

All helpers return values in [0, 1] so the application model can scale them
by a per-knob weight expressed in metric units.
"""

from __future__ import annotations

import math
from typing import Mapping


def value_of(config: Mapping[str, object], name: str, default):
    """Read a knob from the configuration, falling back to *default*."""
    value = config.get(name, default)
    if value is None:
        return default
    return value


def as_float(value, default: float = 0.0) -> float:
    """Best-effort numeric coercion (categorical values fall back to default)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


def log_peak(value: float, best: float, width_decades: float = 1.0) -> float:
    """A Gaussian bump on a log10 axis, peaking at *best*.

    ``width_decades`` is the standard deviation in decades: with the default
    of 1.0, a value ten times smaller or larger than the optimum scores
    ``exp(-0.5) ~= 0.61``.
    """
    if best <= 0:
        raise ValueError("log_peak requires a positive optimum")
    value = max(float(value), 1e-9)
    distance = (math.log10(value) - math.log10(best)) / width_decades
    return math.exp(-0.5 * distance * distance)


def log_saturating(value: float, half_point: float) -> float:
    """Grows with log(value) and saturates towards 1; 0.5 is reached at *half_point*."""
    if half_point <= 0:
        raise ValueError("log_saturating requires a positive half point")
    value = max(float(value), 0.0)
    ratio = math.log1p(value) / math.log1p(half_point)
    return ratio / (1.0 + ratio)


def saturating(value: float, half_point: float) -> float:
    """Michaelis-Menten style saturation: value/(value+half_point)."""
    if half_point <= 0:
        raise ValueError("saturating requires a positive half point")
    value = max(float(value), 0.0)
    return value / (value + half_point)


def linear_preference(value: float, low: float, high: float, prefer_low: bool = True) -> float:
    """Score 1.0 at the preferred end of [low, high], 0.0 at the other end."""
    if high <= low:
        raise ValueError("linear_preference requires high > low")
    unit = (float(value) - low) / (high - low)
    unit = min(1.0, max(0.0, unit))
    return 1.0 - unit if prefer_low else unit


def step_penalty(condition: bool) -> float:
    """1.0 when the (penalising) condition holds, else 0.0."""
    return 1.0 if condition else 0.0


def choice_bonus(value: object, scores: Mapping[object, float], default: float = 0.0) -> float:
    """Look up a per-choice score for a categorical knob."""
    return float(scores.get(value, default))


def feature_enabled(config: Mapping[str, object], name: str, default: bool = True) -> bool:
    """Interpret a bool/tristate knob as 'enabled'."""
    value = config.get(name, default)
    return value in (True, 1, "y", "m")
