"""Feature/parameter importance extraction.

The cross-similarity analysis of §3.3 (Figure 5) collects random
configurations per application, fits a feature-importance model on the
measured performance, and compares the per-parameter importance vectors
across applications.  The importance estimator here is a binned
variance-reduction score per encoded column — the importance a depth-one
regression tree would assign — aggregated per configuration parameter, plus a
permutation-importance variant that can interrogate a trained DeepTune model
directly (used for the "high-impact parameters" discussion of §4.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config.encoding import ConfigEncoder

Array = np.ndarray


def variance_reduction_importance(features: Array, targets: Array,
                                  n_bins: int = 8) -> Array:
    """Per-column importance: fraction of target variance explained by binning.

    For every feature column the samples are split into up to *n_bins*
    equal-width bins; the importance is the relative reduction of target
    variance achieved by replacing each sample's target with its bin mean.
    Columns that do not influence the target score ~0; columns the target
    responds to monotonically or unimodally score close to their explained
    variance share.
    """
    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    if features.ndim != 2 or features.shape[0] != targets.shape[0]:
        raise ValueError("features must be (n, d) aligned with targets (n,)")
    mask = ~np.isnan(targets)
    features = features[mask]
    targets = targets[mask]
    n_samples, n_columns = features.shape
    importances = np.zeros(n_columns)
    if n_samples < 4:
        return importances
    total_variance = float(np.var(targets))
    if total_variance < 1e-12:
        return importances
    for column in range(n_columns):
        values = features[:, column]
        low, high = float(values.min()), float(values.max())
        if high - low < 1e-12:
            continue
        edges = np.linspace(low, high, n_bins + 1)
        bins = np.clip(np.digitize(values, edges[1:-1]), 0, n_bins - 1)
        residual = 0.0
        for bin_index in range(n_bins):
            members = targets[bins == bin_index]
            if members.size:
                residual += float(np.sum((members - members.mean()) ** 2))
        importances[column] = max(0.0, 1.0 - residual / (n_samples * total_variance))
    return importances


def parameter_importance(encoder: ConfigEncoder, features: Array, targets: Array,
                         n_bins: int = 8) -> Dict[str, float]:
    """Aggregate column importances per configuration parameter.

    Multi-column parameters (one-hot categoricals) take the maximum of their
    columns' importances.
    """
    column_importances = variance_reduction_importance(features, targets, n_bins=n_bins)
    result: Dict[str, float] = {}
    for parameter in encoder.space.parameters():
        start, stop = encoder.slice_for(parameter.name)
        result[parameter.name] = float(np.max(column_importances[start:stop])) \
            if stop > start else 0.0
    return result


def top_parameters(importances: Dict[str, float], count: int = 10) -> List[str]:
    """Return the *count* highest-importance parameter names, best first."""
    return [name for name, _ in
            sorted(importances.items(), key=lambda item: item[1], reverse=True)[:count]]


def model_permutation_importance(model, features: Array,
                                 encoder: Optional[ConfigEncoder] = None,
                                 repeats: int = 3, seed: int = 0) -> Array:
    """Permutation importance of each encoded column under a trained DTM.

    Measures how much the model's performance prediction changes when one
    column is shuffled — i.e. which parameters the *model* has learned to pay
    attention to, which is how §4.1 queries the learned models for
    high-impact parameters.
    """
    rng = np.random.default_rng(seed)
    features = np.asarray(features, dtype=np.float64)
    baseline = model.predict(features).performance
    n_columns = features.shape[1]
    importances = np.zeros(n_columns)
    for column in range(n_columns):
        deltas = []
        for _ in range(repeats):
            shuffled = features.copy()
            shuffled[:, column] = rng.permutation(shuffled[:, column])
            perturbed = model.predict(shuffled).performance
            deltas.append(float(np.mean(np.abs(perturbed - baseline))))
        importances[column] = float(np.mean(deltas))
    return importances


def importance_vector(importances: Dict[str, float], order: Sequence[str]) -> Array:
    """Turn a per-parameter importance mapping into a vector following *order*."""
    return np.array([importances.get(name, 0.0) for name in order], dtype=np.float64)
