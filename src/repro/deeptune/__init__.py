"""DeepTune: the neural-network optimizer driving Wayfinder's search.

``model`` implements the DeepTune Model (DTM): a multitask network whose
prediction branch outputs the crash probability and the expected performance
of a configuration, and whose RBF-based uncertainty branch estimates how
unfamiliar a configuration is.  ``algorithm`` wraps the DTM in the candidate
generation / prediction / scoring / evaluation loop of Figure 3;
``scoring`` provides the exploration/exploitation scoring function (eq. 2-3);
``transfer`` handles saving, loading and reusing trained models across
applications; ``importance`` extracts per-parameter importance scores used by
the cross-similarity analysis (Figure 5) and the "high-impact parameters"
discussion of §4.1.
"""

from repro.deeptune.algorithm import DeepTuneSearch
from repro.deeptune.importance import (
    parameter_importance,
    variance_reduction_importance,
)
from repro.deeptune.model import DeepTuneModel, DTMPrediction
from repro.deeptune.scoring import dissimilarity, score_candidates
from repro.deeptune.transfer import (
    load_model_state,
    save_model_state,
    transfer_model,
)

__all__ = [
    "DeepTuneModel",
    "DTMPrediction",
    "DeepTuneSearch",
    "score_candidates",
    "dissimilarity",
    "transfer_model",
    "save_model_state",
    "load_model_state",
    "variance_reduction_importance",
    "parameter_importance",
]
