"""The DeepTune Model (DTM): multitask prediction with RBF uncertainty.

The DTM is a function ``F(x) -> (k_hat, y_hat, sigma_hat)`` mapping an encoded
configuration to its crash probability, its expected performance, and the
uncertainty of that performance prediction (§3.2, Figure 4).  It has two
branches:

* the **prediction branch** ``F_p`` — a conventional feedforward network
  (dense layers, ReLU activations, dropout) whose last layer outputs the
  crash-class logits, the predicted performance and a predicted log-variance
  (the aleatoric part of the Kendall & Gal regression loss);
* the **uncertainty branch** ``F_u`` — a stack of Gaussian RBF layers, each
  running parallel to a prediction layer and consuming the concatenation of
  the previous prediction-branch latents and the previous RBF activations.
  Because each RBF neuron responds by distance to a learned centroid
  (a data prototype fitted by the Chamfer regularizer), unfamiliar
  configurations produce uniformly low activations, which the model reports
  as high uncertainty.

Training minimizes ``L = L_CCE + L_Reg + L_Cham`` and is *incremental*: the
model keeps a replay buffer of all observations and runs a bounded number of
minibatch steps per new observation, so the per-iteration cost stays constant
as the search progresses — the property Figure 7 contrasts with Unicorn.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.layers import Dense, Dropout, RBFLayer, ReLU
from repro.nn.losses import (
    chamfer_distance,
    heteroscedastic_regression_loss,
    softmax_cross_entropy,
)
from repro.nn.buffers import ensure_row_capacity
from repro.nn.normalize import RunningMoments, StandardScaler
from repro.nn.optimizer import Adam

Array = np.ndarray


class DTMPrediction:
    """Per-sample predictions of the DTM."""

    def __init__(self, crash_probability: Array, performance: Array,
                 uncertainty: Array) -> None:
        self.crash_probability = crash_probability
        self.performance = performance
        self.uncertainty = uncertainty

    def __len__(self) -> int:
        return len(self.crash_probability)

    def __repr__(self) -> str:
        return "DTMPrediction(n={}, mean_crash={:.2f})".format(
            len(self), float(np.mean(self.crash_probability)) if len(self) else 0.0
        )


class DeepTuneModel:
    """The multitask neural network at the core of DeepTune."""

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Tuple[int, int] = (96, 48),
        n_centroids: int = 24,
        gamma: float = 0.4,
        dropout: float = 0.1,
        learning_rate: float = 2e-3,
        chamfer_weight: float = 0.05,
        seed: int = 0,
    ) -> None:
        if input_dim <= 0:
            raise ValueError("input_dim must be positive")
        self.input_dim = input_dim
        self.hidden_dims = tuple(hidden_dims)
        self.n_centroids = n_centroids
        self.gamma = gamma
        self.dropout_rate = dropout
        self.learning_rate = learning_rate
        self.chamfer_weight = chamfer_weight
        self.seed = seed
        self._rng = np.random.default_rng(seed)

        h1, h2 = self.hidden_dims
        # Prediction branch F_p.
        self.dense1 = Dense(input_dim, h1, rng=self._rng)
        self.relu1 = ReLU()
        self.drop1 = Dropout(dropout, rng=self._rng)
        self.dense2 = Dense(h1, h2, rng=self._rng)
        self.relu2 = ReLU()
        self.drop2 = Dropout(dropout, rng=self._rng)
        # Output: [crash logit 0, crash logit 1, performance mean, log variance].
        self.head = Dense(h2, 4, rng=self._rng)

        # Uncertainty branch F_u: RBF layers parallel to the prediction layers.
        # Gamma is expressed per the paper (for z-scored inputs); the effective
        # bandwidth is scaled by sqrt(dim) so activations stay informative on
        # configuration encodings with hundreds of columns.
        gamma0 = gamma * np.sqrt(input_dim)
        self.rbf1 = RBFLayer(input_dim, n_centroids, gamma=float(gamma0), rng=self._rng)
        rbf2_in = h1 + n_centroids
        gamma1 = gamma * np.sqrt(rbf2_in)
        self.rbf2 = RBFLayer(rbf2_in, n_centroids, gamma=float(gamma1), rng=self._rng)

        self._prediction_layers = [self.dense1, self.relu1, self.drop1,
                                   self.dense2, self.relu2, self.drop2, self.head]
        self._prediction_params = [layer for layer in
                                   (self.dense1, self.dense2, self.head)]
        self.optimizer = Adam(learning_rate=learning_rate)
        self.rbf_optimizer = Adam(learning_rate=learning_rate * 5.0)

        self.feature_scaler = StandardScaler()
        self.target_scaler = StandardScaler()

        # Replay buffer of every observation seen so far.  Stored in
        # preallocated arrays grown by amortized doubling so appends are O(1)
        # and minibatch gathers never re-stack the whole history; scaler
        # statistics are maintained incrementally (Welford) at the same time.
        self._count = 0
        self._feature_buffer = np.empty((0, input_dim), dtype=np.float64)
        self._target_buffer = np.empty(0, dtype=np.float64)
        self._crash_buffer = np.empty(0, dtype=bool)
        self._feature_moments = RunningMoments()
        self._target_moments = RunningMoments()
        self.training_steps = 0

    # -- bookkeeping --------------------------------------------------------------
    @property
    def observation_count(self) -> int:
        return self._count

    def add_observation(self, features: Array, target: Optional[float], crashed: bool) -> None:
        """Append one observed configuration to the replay buffer.

        *target* is the raw (unnormalized) objective value, or None for
        crashed configurations.
        """
        features = np.asarray(features, dtype=np.float64).reshape(-1)
        if features.shape[0] != self.input_dim:
            raise ValueError("expected {} features, got {}".format(self.input_dim,
                                                                   features.shape[0]))
        needed = self._count + 1
        self._feature_buffer = ensure_row_capacity(self._feature_buffer, needed)
        self._target_buffer = ensure_row_capacity(self._target_buffer, needed)
        self._crash_buffer = ensure_row_capacity(self._crash_buffer, needed)
        target_value = np.nan if (crashed or target is None) else float(target)
        self._feature_buffer[self._count] = features
        self._target_buffer[self._count] = target_value
        self._crash_buffer[self._count] = bool(crashed)
        self._count += 1
        self._feature_moments.update(features)
        if not np.isnan(target_value):
            self._target_moments.update(np.array([target_value]))

    def _refit_scalers(self) -> None:
        """Publish the incrementally maintained moments into the scalers.

        O(input_dim) per call — this used to ``np.vstack`` and refit over the
        whole history every iteration.
        """
        self.feature_scaler.fit_from_moments(self._feature_moments)
        if self._target_moments.count >= 2:
            self.target_scaler.fit_from_moments(self._target_moments)

    # -- forward passes -------------------------------------------------------------
    def _forward_prediction(self, X: Array, training: bool) -> Dict[str, Array]:
        d1 = self.dense1.forward(X, training)
        a1 = self.relu1.forward(d1, training)
        p1 = self.drop1.forward(a1, training)
        d2 = self.dense2.forward(p1, training)
        a2 = self.relu2.forward(d2, training)
        p2 = self.drop2.forward(a2, training)
        out = self.head.forward(p2, training)
        return {"latent1": a1, "latent2": a2, "out": out}

    def _forward_uncertainty(self, X: Array, latent1: Array) -> Dict[str, Array]:
        phi1 = self.rbf1.forward(X, training=False)
        z2 = np.concatenate([latent1, phi1], axis=1)
        phi2 = self.rbf2.forward(z2, training=False)
        return {"phi1": phi1, "z2": z2, "phi2": phi2}

    # -- training ----------------------------------------------------------------------
    def _zero_grads(self) -> None:
        for layer in (self.dense1, self.dense2, self.head, self.rbf1, self.rbf2):
            layer.zero_grad()

    def train_step(self, X: Array, targets: Array, crashed: Array) -> Dict[str, float]:
        """One minibatch update of both branches; returns the loss components."""
        X = np.asarray(X, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        crashed = np.asarray(crashed, dtype=bool)
        self._zero_grads()

        forward = self._forward_prediction(X, training=True)
        out = forward["out"]
        crash_logits = out[:, 0:2]
        mean = out[:, 2]
        log_var = out[:, 3]

        labels = crashed.astype(np.int64)
        loss_cce, grad_logits = softmax_cross_entropy(crash_logits, labels)

        mask = ~np.isnan(targets) & ~crashed
        loss_reg, grad_mean, grad_log_var = heteroscedastic_regression_loss(
            mean, log_var, targets, mask=mask)

        grad_out = np.zeros_like(out)
        grad_out[:, 0:2] = grad_logits
        grad_out[:, 2] = grad_mean
        grad_out[:, 3] = grad_log_var

        grad = self.head.backward(grad_out)
        grad = self.drop2.backward(grad)
        grad = self.relu2.backward(grad)
        grad = self.dense2.backward(grad)
        grad = self.drop1.backward(grad)
        grad = self.relu1.backward(grad)
        self.dense1.backward(grad)

        prediction_params = []
        for layer in self._prediction_params:
            prediction_params.extend(layer.parameters())
        self.optimizer.step(prediction_params)

        # Uncertainty branch: fit the centroids to the (detached) latent inputs
        # with the Chamfer regularizer.
        uncertainty = self._forward_uncertainty(X, forward["latent1"])
        loss_cham1, grad_c1 = chamfer_distance(self.rbf1.centroids, X,
                                               weight=self.chamfer_weight)
        loss_cham2, grad_c2 = chamfer_distance(self.rbf2.centroids, uncertainty["z2"],
                                               weight=self.chamfer_weight)
        self.rbf1.grad_centroids += grad_c1
        self.rbf2.grad_centroids += grad_c2
        self.rbf_optimizer.step(self.rbf1.parameters() + self.rbf2.parameters())

        self.training_steps += 1
        return {
            "cce": loss_cce,
            "regression": loss_reg,
            "chamfer": loss_cham1 + loss_cham2,
            "total": loss_cce + loss_reg + loss_cham1 + loss_cham2,
        }

    def fit_incremental(self, steps: int = 30, batch_size: int = 32) -> Dict[str, float]:
        """Run a bounded number of minibatch steps over the replay buffer.

        Constant work per call keeps DeepTune's per-iteration cost flat no
        matter how long the search has been running.
        """
        if self.observation_count < 2:
            return {"cce": 0.0, "regression": 0.0, "chamfer": 0.0, "total": 0.0}
        self._refit_scalers()
        n = self._count
        raw_targets = self._target_buffer[:n]
        crashed = self._crash_buffer[:n]

        losses = {"cce": 0.0, "regression": 0.0, "chamfer": 0.0, "total": 0.0}
        for _ in range(steps):
            if n <= batch_size:
                batch = np.arange(n)
            else:
                batch = self._rng.choice(n, size=batch_size, replace=False)
            # Normalize only the sampled minibatch: per-step work is bounded
            # by the batch size, never by the history length.
            X_batch = self.feature_scaler.transform(self._feature_buffer[batch])
            targets_batch = raw_targets[batch].copy()
            finite = ~np.isnan(targets_batch)
            if self.target_scaler.is_fitted and finite.any():
                targets_batch[finite] = self.target_scaler.transform(
                    targets_batch[finite].reshape(-1, 1)).reshape(-1)
            step_losses = self.train_step(X_batch, targets_batch, crashed[batch])
            for key in losses:
                losses[key] += step_losses[key] / steps
        return losses

    # -- inference -------------------------------------------------------------------------
    def predict(self, X: Array) -> DTMPrediction:
        """Predict crash probability, performance and uncertainty for raw features."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        X_scaled = self.feature_scaler.transform(X)
        forward = self._forward_prediction(X_scaled, training=False)
        out = forward["out"]
        logits = out[:, 0:2]
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        softmax = exp / exp.sum(axis=1, keepdims=True)
        crash_probability = softmax[:, 1]

        performance = out[:, 2]
        if self.target_scaler.is_fitted:
            performance = self.target_scaler.inverse_transform(
                performance.reshape(-1, 1)).reshape(-1)

        uncertainty_forward = self._forward_uncertainty(X_scaled, forward["latent1"])
        # Low maximum activation = no nearby prototype = unfamiliar sample.
        familiarity = uncertainty_forward["phi2"].max(axis=1)
        uncertainty = 1.0 - np.clip(familiarity, 0.0, 1.0)
        return DTMPrediction(crash_probability, performance, uncertainty)

    def predict_crash(self, X: Array) -> Array:
        return self.predict(X).crash_probability

    # -- persistence (used by transfer learning) -------------------------------------------
    def state_dict(self) -> Dict[str, Array]:
        """Snapshot every trainable array and the scaler statistics."""
        state = {
            "dense1.weights": self.dense1.weights.copy(),
            "dense1.bias": self.dense1.bias.copy(),
            "dense2.weights": self.dense2.weights.copy(),
            "dense2.bias": self.dense2.bias.copy(),
            "head.weights": self.head.weights.copy(),
            "head.bias": self.head.bias.copy(),
            "rbf1.centroids": self.rbf1.centroids.copy(),
            "rbf2.centroids": self.rbf2.centroids.copy(),
        }
        if self.feature_scaler.is_fitted:
            state["feature_scaler.mean"] = self.feature_scaler.mean_.copy()
            state["feature_scaler.std"] = self.feature_scaler.std_.copy()
        if self.target_scaler.is_fitted:
            state["target_scaler.mean"] = self.target_scaler.mean_.copy()
            state["target_scaler.std"] = self.target_scaler.std_.copy()
        return state

    def load_state_dict(self, state: Dict[str, Array]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.dense1.weights[...] = state["dense1.weights"]
        self.dense1.bias[...] = state["dense1.bias"]
        self.dense2.weights[...] = state["dense2.weights"]
        self.dense2.bias[...] = state["dense2.bias"]
        self.head.weights[...] = state["head.weights"]
        self.head.bias[...] = state["head.bias"]
        self.rbf1.centroids[...] = state["rbf1.centroids"]
        self.rbf2.centroids[...] = state["rbf2.centroids"]
        if "feature_scaler.mean" in state:
            self.feature_scaler.mean_ = np.array(state["feature_scaler.mean"])
            self.feature_scaler.std_ = np.array(state["feature_scaler.std"])
        if "target_scaler.mean" in state:
            self.target_scaler.mean_ = np.array(state["target_scaler.mean"])
            self.target_scaler.std_ = np.array(state["target_scaler.std"])
        self.optimizer.reset()
        self.rbf_optimizer.reset()

    def clone_architecture(self) -> "DeepTuneModel":
        """A fresh model with the same architecture (weights re-initialized)."""
        return DeepTuneModel(
            input_dim=self.input_dim,
            hidden_dims=self.hidden_dims,
            n_centroids=self.n_centroids,
            gamma=self.gamma,
            dropout=self.dropout_rate,
            learning_rate=self.learning_rate,
            chamfer_weight=self.chamfer_weight,
            seed=self.seed,
        )
