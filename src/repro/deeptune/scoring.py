"""The DeepTune scoring function (paper equations 2 and 3).

Candidate configurations are ranked by combining:

* their *dissimilarity* to the already-explored configurations (eq. 2) —
  prefer regions the search has not visited;
* the model's predicted *uncertainty* for the candidate — prefer candidates
  the model is unsure about (eq. 3, weighted by alpha);
* the model's predicted *performance* — exploit regions the model believes
  are good (Figure 3, steps 2-3).

Candidates whose predicted crash probability exceeds a threshold are filtered
out before ranking, which is how DeepTune's crash rate drops over time while
random search keeps paying the full ~1/3 failure rate.
"""

from __future__ import annotations

import numpy as np

Array = np.ndarray


def dissimilarity(candidates: Array, known: Array) -> Array:
    """Vectorized eq. 2: ``ds(x, X) = 1 - 1/(1 + ||x - X||^2)`` per candidate.

    ``||x - X||`` is the distance to the *nearest* known sample, averaged per
    encoded dimension to keep the expression from saturating on
    high-dimensional encodings.
    """
    candidates = np.asarray(candidates, dtype=np.float64)
    known = np.asarray(known, dtype=np.float64)
    if candidates.ndim == 1:
        candidates = candidates.reshape(1, -1)
    if known.size == 0:
        return np.ones(candidates.shape[0])
    if known.ndim == 1:
        known = known.reshape(1, -1)
    dims = candidates.shape[1]
    sq_dists = (
        np.sum(candidates ** 2, axis=1)[:, None]
        + np.sum(known ** 2, axis=1)[None, :]
        - 2.0 * candidates @ known.T
    )
    np.maximum(sq_dists, 0.0, out=sq_dists)
    nearest = sq_dists.min(axis=1) / max(1, dims)
    return 1.0 - 1.0 / (1.0 + nearest)


def exploration_score(candidates: Array, known: Array, uncertainty: Array,
                      alpha: float = 0.5) -> Array:
    """Eq. 3: ``sf(x, X) = alpha * ds(x, X) + (1 - alpha) * F_u(x)``."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    uncertainty = np.asarray(uncertainty, dtype=np.float64).reshape(-1)
    ds = dissimilarity(candidates, known)
    return alpha * ds + (1.0 - alpha) * uncertainty


def _normalize(values: Array) -> Array:
    """Min-max normalize to [0, 1]; constant vectors map to 0.5."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    low = values.min() if values.size else 0.0
    high = values.max() if values.size else 1.0
    if high - low < 1e-12:
        return np.full_like(values, 0.5)
    return (values - low) / (high - low)


def score_candidates(
    candidates: Array,
    known: Array,
    predicted_performance: Array,
    predicted_uncertainty: Array,
    predicted_crash_probability: Array,
    maximize: bool = True,
    alpha: float = 0.5,
    exploration_weight: float = 1.0,
    crash_threshold: float = 0.6,
    crash_penalty: float = 2.0,
) -> Array:
    """Rank candidates for the next evaluation; higher score = evaluated first.

    The final score combines the normalized predicted performance
    (exploitation) with the eq. 3 exploration term, and heavily penalizes
    candidates whose predicted crash probability exceeds *crash_threshold*
    (they are only ever picked if nothing else is available).
    """
    performance = np.asarray(predicted_performance, dtype=np.float64).reshape(-1)
    crash = np.asarray(predicted_crash_probability, dtype=np.float64).reshape(-1)
    signed = performance if maximize else -performance
    exploitation = _normalize(signed)
    exploration = exploration_score(candidates, known, predicted_uncertainty, alpha=alpha)
    scores = exploitation + exploration_weight * exploration
    scores = scores - crash_penalty * np.where(crash > crash_threshold, crash, 0.0)
    return scores
