"""Transfer learning: reuse a model trained on one application for another.

The paper (§3.3) pre-trains a DTM on one application (Redis in the
evaluation) and reuses it to accelerate the search for related applications:
the subset of parameters that matter — the network-stack knobs shared by
Redis and Nginx — has already been identified, so the transferred search
starts from good candidates and avoids crash-prone regions from the first
iteration.  Transfer is a weight copy (plus scaler statistics); the target
search keeps fine-tuning the model on its own observations.

The surrogate model zoo
-----------------------

Campaigns persist their trained surrogates into a **zoo** so later
experiments can warm-start from them (``warm_start:`` on the spec,
``--warm-start`` on the CLI).  A zoo is a directory — by convention
``<campaign results dir>/zoo/`` — with this on-disk layout:

``index.json``
    The zoo manifest.  Top-level fields: ``format_version`` (currently 1)
    and ``entries``, a mapping from entry id to entry record.  Every file
    in the zoo is written through the crash-safe
    ``atomic_write_text``/``atomic_write_bytes`` staging protocol of
    :mod:`repro.platform.results` (per-pid staging file, fsync, rename),
    so a torn write can never leave a half-updated index behind.

``<entry id>.model.npz``
    The donor model's :meth:`DeepTuneModel.state_dict` as a NumPy archive
    (weights, RBF centroids, fitted scaler statistics — never the replay
    buffer, optimizer moments, or RNG state).

Entry records carry:

``id``
    ``<application>-<fingerprint>`` — the zoo key.  One entry per
    (application, space fingerprint) pair; re-publishing the same key
    keeps whichever donor saw **more observations** (ties broken by the
    lexicographically smaller experiment name), an order-independent
    merge rule so concurrent campaign workers converge on the same zoo
    no matter who finishes first.
``application`` / ``fingerprint`` / ``input_dim``
    The donor's application name, its space fingerprint (below), and the
    encoded feature width the model expects.
``observations``
    How many trials trained the donor model (0-observation models are
    never published).
``importance``
    The donor's per-parameter importance vector
    (:func:`repro.deeptune.importance.parameter_importance` over the
    donor's own history) — the Figure 5 vector donor selection compares
    against.
``model_file`` / ``model_meta``
    The ``.npz`` basename and the constructor metadata needed to rebuild
    the architecture before loading weights (same fields
    :func:`save_model_state` writes).
``experiment`` / ``campaign`` / ``algorithm`` / ``seed``
    Provenance of the run that produced the donor.

Fingerprint scheme and compatibility
------------------------------------

The **space fingerprint** (:func:`space_fingerprint`) is the first 12 hex
digits of the SHA-256 over the encoder's compiled geometry: total encoded
width plus every ``(parameter name, column start, column stop)`` triple in
encoding order.  Two spaces share a fingerprint exactly when they encode
to bit-compatible feature matrices, which is the compatibility rule for
transfer: a donor is eligible only when its fingerprint equals the target
space's.  Because the synthetic filler parameters of the Linux space are
derived from the space seed, this means warm-start transfers **across
applications that share the same space** (same OS version, seed,
architecture, and ``space_options``) — the paper's Figure 5 setting — and
cleanly refuses everything else.  Corrupted entries (unreadable index,
missing or truncated ``.npz``, metadata/width mismatches) raise
:class:`ZooError` from the loaders; callers fall back to cold start.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from typing import Any, Dict, Optional

import numpy as np

from repro.deeptune.model import DeepTuneModel

#: conventional zoo directory name inside a campaign results tree.
ZOO_DIR_NAME = "zoo"
#: the zoo manifest file inside the zoo directory.
ZOO_INDEX_NAME = "index.json"
ZOO_FORMAT_VERSION = 1


class ZooError(RuntimeError):
    """A zoo entry could not be read (corrupted, missing, incompatible)."""


def transfer_model(source: DeepTuneModel, reset_target_scaler: bool = True) -> DeepTuneModel:
    """Return a new model initialized from *source*'s trained weights.

    The replay buffer is *not* carried over: the new application produces its
    own observations.  By default the target scaler is reset because the
    objective of the new application usually lives on a different scale
    (e.g. Redis req/s vs SQLite microseconds); the feature scaler is kept
    since both searches encode the same configuration space.
    """
    target = source.clone_architecture()
    target.load_state_dict(source.state_dict())
    if reset_target_scaler:
        target.target_scaler = type(target.target_scaler)()
    return target


def _model_metadata(model: DeepTuneModel) -> Dict[str, Any]:
    return {
        "input_dim": model.input_dim,
        "hidden_dims": list(model.hidden_dims),
        "n_centroids": model.n_centroids,
        "gamma": model.gamma,
        "dropout": model.dropout_rate,
        "learning_rate": model.learning_rate,
        "chamfer_weight": model.chamfer_weight,
        "seed": model.seed,
        "observations": model.observation_count,
    }


def _model_from_metadata(metadata: Dict[str, Any]) -> DeepTuneModel:
    return DeepTuneModel(
        input_dim=int(metadata["input_dim"]),
        hidden_dims=tuple(metadata["hidden_dims"]),
        n_centroids=int(metadata["n_centroids"]),
        gamma=float(metadata["gamma"]),
        dropout=float(metadata["dropout"]),
        learning_rate=float(metadata["learning_rate"]),
        chamfer_weight=float(metadata["chamfer_weight"]),
        seed=int(metadata["seed"]),
    )


def save_model_state(model: DeepTuneModel, path: str) -> None:
    """Persist a model snapshot to *path* (.npz plus a JSON sidecar)."""
    state = model.state_dict()
    np.savez(path, **state)
    with open(_metadata_path(path), "w") as handle:
        json.dump(_model_metadata(model), handle, indent=2)


def load_model_state(path: str) -> DeepTuneModel:
    """Load a model snapshot previously written by :func:`save_model_state`."""
    with open(_metadata_path(path)) as handle:
        metadata = json.load(handle)
    model = _model_from_metadata(metadata)
    archive = np.load(path if path.endswith(".npz") else path + ".npz")
    state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
    return model


def _metadata_path(path: str) -> str:
    base = path[:-4] if path.endswith(".npz") else path
    return base + ".meta.json"


# -- the surrogate model zoo ------------------------------------------------------

def space_fingerprint(encoder) -> str:
    """Digest of a :class:`ConfigEncoder`'s geometry (see module docstring).

    Equal fingerprints mean the two encoders produce column-compatible
    feature matrices, which is what makes a zoo model transferable.
    """
    layout = [[parameter.name, *encoder.slice_for(parameter.name)]
              for parameter in encoder.space.parameters()]
    payload = json.dumps([encoder.width, layout], separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def zoo_entry_id(application: str, fingerprint: str) -> str:
    """The zoo key for one (application, space fingerprint) pair."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in application)
    return "{}-{}".format(safe, fingerprint)


def zoo_directory(path: str) -> str:
    """Resolve *path* to a zoo directory.

    Accepts either a zoo directory itself (holding ``index.json``) or a
    campaign results directory (holding a ``zoo/`` subdirectory), so
    ``warm_start: {zoo: <campaign dir>}`` just works.
    """
    if os.path.isfile(os.path.join(path, ZOO_INDEX_NAME)):
        return path
    nested = os.path.join(path, ZOO_DIR_NAME)
    if os.path.isfile(os.path.join(nested, ZOO_INDEX_NAME)):
        return nested
    return path


def load_zoo_index(zoo_dir: str) -> Dict[str, Dict[str, Any]]:
    """The ``entries`` mapping of a zoo directory; ``{}`` when absent/corrupt.

    A missing zoo is the normal cold-start case and an unreadable index is
    treated the same way — warm-start degrades, it never aborts a run.
    """
    path = os.path.join(zoo_dir, ZOO_INDEX_NAME)
    try:
        with open(path) as handle:
            document = json.load(handle)
        if document.get("format_version") != ZOO_FORMAT_VERSION:
            return {}
        entries = document.get("entries")
        return dict(entries) if isinstance(entries, dict) else {}
    except (OSError, ValueError):
        return {}


def _replaces(new: Dict[str, Any], old: Dict[str, Any]) -> bool:
    """Order-independent merge rule: more observations win, then name."""
    new_key = (int(new.get("observations", 0)),)
    old_key = (int(old.get("observations", 0)),)
    if new_key != old_key:
        return new_key > old_key
    return str(new.get("experiment") or "") < str(old.get("experiment") or "")


def publish_zoo_entry(zoo_dir: str, application: str, encoder,
                      model: DeepTuneModel, importance: Dict[str, float],
                      metadata: Optional[Dict[str, Any]] = None,
                      ) -> Optional[Dict[str, Any]]:
    """Atomically publish a trained *model* into the zoo at *zoo_dir*.

    Returns the written entry record, or ``None`` when the model has no
    observations or an existing entry for the same key wins the merge rule
    (see the module docstring).  The model archive is staged and renamed
    before the index references it, so readers never see a dangling entry.
    """
    from repro.platform.results import atomic_write_bytes, atomic_write_text

    if model.observation_count < 1:
        return None
    fingerprint = space_fingerprint(encoder)
    entry_id = zoo_entry_id(application, fingerprint)
    entry: Dict[str, Any] = {
        "id": entry_id,
        "application": application,
        "fingerprint": fingerprint,
        "input_dim": model.input_dim,
        "observations": model.observation_count,
        "importance": {name: float(value)
                       for name, value in sorted(importance.items())},
        "model_file": entry_id + ".model.npz",
        "model_meta": _model_metadata(model),
    }
    entry.update(metadata or {})
    os.makedirs(zoo_dir, exist_ok=True)
    entries = load_zoo_index(zoo_dir)
    existing = entries.get(entry_id)
    if existing is not None and not _replaces(entry, existing):
        return None
    buffer = io.BytesIO()
    np.savez(buffer, **model.state_dict())
    atomic_write_bytes(os.path.join(zoo_dir, entry["model_file"]),
                       buffer.getvalue())
    entries[entry_id] = entry
    index = {"format_version": ZOO_FORMAT_VERSION, "entries": entries}
    atomic_write_text(os.path.join(zoo_dir, ZOO_INDEX_NAME),
                      json.dumps(index, indent=2, sort_keys=True) + "\n")
    return entry


def load_zoo_model(zoo_dir: str, entry: Dict[str, Any]) -> DeepTuneModel:
    """Rebuild the donor model of one zoo *entry*; :class:`ZooError` on damage."""
    try:
        model = _model_from_metadata(entry["model_meta"])
        path = os.path.join(zoo_dir, entry["model_file"])
        archive = np.load(path)
        state = {key: archive[key] for key in archive.files}
        model.load_state_dict(state)
    # a torn .npz surfaces as BadZipFile, a mangled one as almost anything;
    # this is the corruption boundary, so wrap wholesale rather than guess.
    except Exception as error:  # noqa: BLE001
        raise ZooError("unreadable zoo entry {!r}: {}".format(
            entry.get("id"), error)) from error
    if model.input_dim != int(entry.get("input_dim", model.input_dim)):
        raise ZooError("zoo entry {!r} metadata width {} does not match its "
                       "model ({})".format(entry.get("id"),
                                           entry.get("input_dim"),
                                           model.input_dim))
    return model
