"""Transfer learning: reuse a model trained on one application for another.

The paper (§3.3) pre-trains a DTM on one application (Redis in the
evaluation) and reuses it to accelerate the search for related applications:
the subset of parameters that matter — the network-stack knobs shared by
Redis and Nginx — has already been identified, so the transferred search
starts from good candidates and avoids crash-prone regions from the first
iteration.  Transfer is a weight copy (plus scaler statistics); the target
search keeps fine-tuning the model on its own observations.
"""

from __future__ import annotations

import json
import os
from typing import Dict

import numpy as np

from repro.deeptune.model import DeepTuneModel


def transfer_model(source: DeepTuneModel, reset_target_scaler: bool = True) -> DeepTuneModel:
    """Return a new model initialized from *source*'s trained weights.

    The replay buffer is *not* carried over: the new application produces its
    own observations.  By default the target scaler is reset because the
    objective of the new application usually lives on a different scale
    (e.g. Redis req/s vs SQLite microseconds); the feature scaler is kept
    since both searches encode the same configuration space.
    """
    target = source.clone_architecture()
    target.load_state_dict(source.state_dict())
    if reset_target_scaler:
        target.target_scaler = type(target.target_scaler)()
    return target


def save_model_state(model: DeepTuneModel, path: str) -> None:
    """Persist a model snapshot to *path* (.npz plus a JSON sidecar)."""
    state = model.state_dict()
    np.savez(path, **state)
    metadata = {
        "input_dim": model.input_dim,
        "hidden_dims": list(model.hidden_dims),
        "n_centroids": model.n_centroids,
        "gamma": model.gamma,
        "dropout": model.dropout_rate,
        "learning_rate": model.learning_rate,
        "chamfer_weight": model.chamfer_weight,
        "seed": model.seed,
        "observations": model.observation_count,
    }
    with open(_metadata_path(path), "w") as handle:
        json.dump(metadata, handle, indent=2)


def load_model_state(path: str) -> DeepTuneModel:
    """Load a model snapshot previously written by :func:`save_model_state`."""
    with open(_metadata_path(path)) as handle:
        metadata = json.load(handle)
    model = DeepTuneModel(
        input_dim=int(metadata["input_dim"]),
        hidden_dims=tuple(metadata["hidden_dims"]),
        n_centroids=int(metadata["n_centroids"]),
        gamma=float(metadata["gamma"]),
        dropout=float(metadata["dropout"]),
        learning_rate=float(metadata["learning_rate"]),
        chamfer_weight=float(metadata["chamfer_weight"]),
        seed=int(metadata["seed"]),
    )
    archive = np.load(path if path.endswith(".npz") else path + ".npz")
    state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
    return model


def _metadata_path(path: str) -> str:
    base = path[:-4] if path.endswith(".npz") else path
    return base + ".meta.json"
