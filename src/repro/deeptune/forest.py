"""Random-forest regression and feature importance (numpy only).

The cross-similarity analysis of the paper (§3.3, Figure 5) uses a
random-forest feature-importance algorithm (Breiman 2001) to score how much
each configuration option influences an application's performance.  scikit-
learn is not available offline, so this module implements the required subset
from scratch: CART-style regression trees grown on bootstrap samples with
random feature subsets per split, mean-decrease-in-impurity importances, and
out-of-bag error estimation.

Fitting and prediction both run on flat arrays: ``_best_split`` scores every
candidate threshold of a column with one vectorized pass over the cumulative
sums, and fitted trees are flattened to parallel node arrays so ``predict``
traverses all rows at once (iterative masked descent) instead of recursing
per row.  Both hot paths keep their original scalar implementations —
``_best_split_reference`` and ``predict_reference`` — as bit-exact oracles:
the vectorized forms compute the same IEEE-754 float64 operations in the
same order per element, so results are identical to the last bit, and the
test suite pins that equivalence on randomized fixtures.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

Array = np.ndarray


class _TreeNode:
    """One node of a regression tree (leaf when ``feature`` is None)."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value: float) -> None:
        self.feature: Optional[int] = None
        self.threshold: float = 0.0
        self.left: Optional["_TreeNode"] = None
        self.right: Optional["_TreeNode"] = None
        self.value = value


class RegressionTree:
    """A CART regression tree with random feature subsets per split."""

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 3,
                 max_features: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self._root: Optional[_TreeNode] = None
        self._n_features = 0
        self.feature_importances_: Optional[Array] = None
        # flattened node arrays for vectorized prediction (built by fit):
        # feature is -1 at leaves, left/right hold child node indices.
        self._feature: Optional[Array] = None
        self._threshold: Optional[Array] = None
        self._left: Optional[Array] = None
        self._right: Optional[Array] = None
        self._value: Optional[Array] = None

    # -- fitting ---------------------------------------------------------------
    def fit(self, features: Array, targets: Array) -> "RegressionTree":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != targets.shape[0]:
            raise ValueError("features must be (n, d) aligned with targets (n,)")
        self._n_features = features.shape[1]
        self.feature_importances_ = np.zeros(self._n_features)
        self._root = self._grow(features, targets, depth=0)
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ /= total
        self._flatten()
        return self

    def _best_split(self, features: Array, targets: Array,
                    columns: Array) -> Tuple[Optional[int], float, float]:
        """Return (feature, threshold, impurity decrease) of the best split.

        Vectorized form of :meth:`_best_split_reference`: all candidate
        thresholds of a column are scored in one array pass over the
        cumulative sums.  Every elementwise operation is the same float64
        arithmetic the scalar loop performs, and ``np.argmax``'s
        first-occurrence semantics reproduce its strictly-greater ascending
        scan, so the chosen split is bit-identical.
        """
        n = targets.shape[0]
        parent_sse = float(np.sum((targets - targets.mean()) ** 2))
        best = (None, 0.0, 0.0)
        lo = max(self.min_samples_leaf, 1)
        hi = min(n - self.min_samples_leaf, n - 1)
        if hi < lo:
            return best
        splits = np.arange(lo, hi + 1)
        for column in columns:
            values = features[:, column]
            order = np.argsort(values, kind="mergesort")
            sorted_values = values[order]
            sorted_targets = targets[order]
            # Cumulative sums let every candidate threshold be scored in O(1).
            cumulative = np.cumsum(sorted_targets)
            cumulative_sq = np.cumsum(sorted_targets ** 2)
            total = cumulative[-1]
            total_sq = cumulative_sq[-1]
            left_sum = cumulative[splits - 1]
            left_sq = cumulative_sq[splits - 1]
            right_sum = total - left_sum
            right_sq = total_sq - left_sq
            left_sse = left_sq - left_sum ** 2 / splits
            right_sse = right_sq - right_sum ** 2 / (n - splits)
            decrease = parent_sse - (left_sse + right_sse)
            # splits between equal values are skipped; NaN scores map to
            # -inf so they are never selected (NaN > best is False in the
            # scalar scan).
            usable = sorted_values[splits - 1] != sorted_values[splits]
            usable &= ~np.isnan(decrease)
            if not usable.any():
                continue
            decrease = np.where(usable, decrease, -np.inf)
            position = int(np.argmax(decrease))
            column_best = float(decrease[position])
            if column_best > best[2]:
                split = int(splits[position])
                threshold = 0.5 * (sorted_values[split - 1] + sorted_values[split])
                best = (int(column), float(threshold), column_best)
        return best

    def _best_split_reference(self, features: Array, targets: Array,
                              columns: Array) -> Tuple[Optional[int], float, float]:
        """Scalar oracle for :meth:`_best_split` (kept for the equivalence tests)."""
        n = targets.shape[0]
        parent_sse = float(np.sum((targets - targets.mean()) ** 2))
        best = (None, 0.0, 0.0)
        for column in columns:
            values = features[:, column]
            order = np.argsort(values, kind="mergesort")
            sorted_values = values[order]
            sorted_targets = targets[order]
            cumulative = np.cumsum(sorted_targets)
            cumulative_sq = np.cumsum(sorted_targets ** 2)
            total = cumulative[-1]
            total_sq = cumulative_sq[-1]
            for split in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if split < 1 or split >= n:
                    continue
                if sorted_values[split - 1] == sorted_values[split]:
                    continue
                left_sum = cumulative[split - 1]
                left_sq = cumulative_sq[split - 1]
                right_sum = total - left_sum
                right_sq = total_sq - left_sq
                left_sse = left_sq - left_sum ** 2 / split
                right_sse = right_sq - right_sum ** 2 / (n - split)
                decrease = parent_sse - (left_sse + right_sse)
                if decrease > best[2]:
                    threshold = 0.5 * (sorted_values[split - 1] + sorted_values[split])
                    best = (int(column), float(threshold), float(decrease))
        return best

    def _grow(self, features: Array, targets: Array, depth: int) -> _TreeNode:
        node = _TreeNode(float(targets.mean()))
        if (depth >= self.max_depth or targets.shape[0] < 2 * self.min_samples_leaf
                or float(np.var(targets)) < 1e-12):
            return node
        n_candidates = self.max_features or self._n_features
        n_candidates = min(n_candidates, self._n_features)
        columns = self.rng.choice(self._n_features, size=n_candidates, replace=False)
        feature, threshold, decrease = self._best_split(features, targets, columns)
        if feature is None or decrease <= 0.0:
            return node
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        self.feature_importances_[feature] += decrease
        node.left = self._grow(features[mask], targets[mask], depth + 1)
        node.right = self._grow(features[~mask], targets[~mask], depth + 1)
        return node

    def _flatten(self) -> None:
        """Lay the fitted tree out as parallel node arrays (preorder)."""
        feature: List[int] = []
        threshold: List[float] = []
        left: List[int] = []
        right: List[int] = []
        value: List[float] = []
        stack = [(self._root, -1, False)]
        while stack:
            node, parent, is_right = stack.pop()
            index = len(feature)
            feature.append(-1 if node.feature is None else node.feature)
            threshold.append(node.threshold)
            left.append(-1)
            right.append(-1)
            value.append(node.value)
            if parent >= 0:
                (right if is_right else left)[parent] = index
            if node.feature is not None:
                stack.append((node.right, index, True))
                stack.append((node.left, index, False))
        self._feature = np.asarray(feature, dtype=np.int64)
        self._threshold = np.asarray(threshold, dtype=np.float64)
        self._left = np.asarray(left, dtype=np.int64)
        self._right = np.asarray(right, dtype=np.int64)
        self._value = np.asarray(value, dtype=np.float64)

    # -- prediction ----------------------------------------------------------------
    def predict(self, features: Array) -> Array:
        """Batch prediction via iterative vectorized traversal.

        All rows descend the flattened node arrays together; rows parked at
        leaves drop out of the active set each level.  The comparison per
        level is the identical ``row[feature] <= threshold`` float64 test
        the per-row oracle performs, so outputs are bit-identical to
        :meth:`predict_reference`.
        """
        if self._root is None:
            raise RuntimeError("predict called before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        node = np.zeros(features.shape[0], dtype=np.int64)
        while True:
            split_feature = self._feature[node]
            active = np.nonzero(split_feature >= 0)[0]
            if active.size == 0:
                break
            current = node[active]
            go_left = (features[active, split_feature[active]]
                       <= self._threshold[current])
            node[active] = np.where(go_left, self._left[current],
                                    self._right[current])
        return self._value[node]

    def predict_reference(self, features: Array) -> Array:
        """Per-row oracle for :meth:`predict` (kept for the equivalence tests)."""
        if self._root is None:
            raise RuntimeError("predict called before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return np.array([self._predict_row(row) for row in features])

    def _predict_row(self, row: Array) -> float:
        node = self._root
        while node.feature is not None:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees with impurity importances."""

    def __init__(self, n_trees: int = 30, max_depth: int = 6,
                 min_samples_leaf: int = 3, feature_fraction: float = 0.4,
                 seed: int = 0) -> None:
        if n_trees < 1:
            raise ValueError("need at least one tree")
        if not 0.0 < feature_fraction <= 1.0:
            raise ValueError("feature_fraction must be in (0, 1]")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.feature_fraction = feature_fraction
        self.seed = seed
        self.trees: List[RegressionTree] = []
        self.feature_importances_: Optional[Array] = None
        self.oob_score_: Optional[float] = None

    def fit(self, features: Array, targets: Array) -> "RandomForestRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        mask = ~np.isnan(targets)
        features = features[mask]
        targets = targets[mask]
        if features.shape[0] < 2:
            raise ValueError("need at least two samples to fit a forest")
        rng = np.random.default_rng(self.seed)
        n_samples, n_features = features.shape
        max_features = max(1, int(round(self.feature_fraction * n_features)))

        self.trees = []
        importances = np.zeros(n_features)
        oob_sum = np.zeros(n_samples)
        oob_count = np.zeros(n_samples)
        for _ in range(self.n_trees):
            indices = rng.integers(0, n_samples, size=n_samples)
            tree = RegressionTree(max_depth=self.max_depth,
                                  min_samples_leaf=self.min_samples_leaf,
                                  max_features=max_features, rng=rng)
            tree.fit(features[indices], targets[indices])
            self.trees.append(tree)
            importances += tree.feature_importances_
            out_of_bag = np.setdiff1d(np.arange(n_samples), indices, assume_unique=False)
            if out_of_bag.size:
                oob_sum[out_of_bag] += tree.predict(features[out_of_bag])
                oob_count[out_of_bag] += 1
        self.feature_importances_ = importances / self.n_trees
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ = self.feature_importances_ / total
        covered = oob_count > 0
        if covered.any() and float(np.var(targets[covered])) > 1e-12:
            predictions = oob_sum[covered] / oob_count[covered]
            residual = float(np.mean((predictions - targets[covered]) ** 2))
            self.oob_score_ = 1.0 - residual / float(np.var(targets[covered]))
        return self

    def predict(self, features: Array) -> Array:
        if not self.trees:
            raise RuntimeError("predict called before fit")
        features = np.asarray(features, dtype=np.float64)
        predictions = np.zeros(features.shape[0] if features.ndim == 2 else 1)
        for tree in self.trees:
            predictions = predictions + tree.predict(features)
        return predictions / len(self.trees)

    def predict_reference(self, features: Array) -> Array:
        """Per-row oracle for :meth:`predict` (kept for the equivalence tests)."""
        if not self.trees:
            raise RuntimeError("predict called before fit")
        features = np.asarray(features, dtype=np.float64)
        predictions = np.zeros(features.shape[0] if features.ndim == 2 else 1)
        for tree in self.trees:
            predictions = predictions + tree.predict_reference(features)
        return predictions / len(self.trees)


def forest_parameter_importance(encoder, features: Array, targets: Array,
                                n_trees: int = 30, seed: int = 0) -> dict:
    """Per-parameter importance using the random forest (Figure 5 variant).

    Equivalent in role to :func:`repro.deeptune.importance.parameter_importance`
    but using the Breiman forest the paper cites; one-hot parameters take the
    maximum importance over their columns.
    """
    forest = RandomForestRegressor(n_trees=n_trees, seed=seed)
    forest.fit(features, targets)
    importances = forest.feature_importances_
    result = {}
    for parameter in encoder.space.parameters():
        start, stop = encoder.slice_for(parameter.name)
        result[parameter.name] = float(np.max(importances[start:stop])) \
            if stop > start else 0.0
    return result
