"""DeepTune as a Wayfinder search algorithm.

Each iteration follows the loop of Figure 3: generate a diverse pool of
random candidate permutations (step 1), predict their crash probability,
performance and uncertainty with the DTM (step 2), rank them with the scoring
function (step 3), hand the top candidate to the platform for evaluation
(step 4), and update the model with the new observation (step 5).

The candidate pool mixes fresh random samples with mutations of the best
configurations found so far, which concentrates candidates in promising
regions once the model has identified them while keeping genuinely new
regions in play — the exploration/exploitation balance the paper discusses.
"""

from __future__ import annotations

import copy
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.config.encoding import ConfigEncoder
from repro.config.parameter import ParameterKind
from repro.config.space import Configuration, ConfigSpace
from repro.deeptune.model import DeepTuneModel
from repro.nn.buffers import ensure_row_capacity
from repro.deeptune.scoring import score_candidates
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.search.base import SearchAlgorithm


class DeepTuneSearch(SearchAlgorithm):
    """The DeepTune optimization algorithm (§3.2)."""

    name = "deeptune"
    batch_native = True

    def __init__(
        self,
        space: ConfigSpace,
        seed: int = 0,
        favored_kinds: Optional[Sequence[ParameterKind]] = None,
        maximize: bool = True,
        candidate_pool_size: int = 192,
        warmup_iterations: int = 10,
        alpha: float = 0.5,
        exploration_weight: float = 0.6,
        crash_threshold: float = 0.6,
        exploit_fraction: float = 0.4,
        training_steps_per_iteration: int = 25,
        batch_size: int = 32,
        model: Optional[DeepTuneModel] = None,
        hidden_dims=(96, 48),
        n_centroids: int = 24,
    ) -> None:
        super().__init__(space, seed=seed, favored_kinds=favored_kinds)
        self.encoder = ConfigEncoder(space)
        self.maximize = maximize
        self.candidate_pool_size = candidate_pool_size
        self.warmup_iterations = warmup_iterations
        self.alpha = alpha
        self.exploration_weight = exploration_weight
        self.crash_threshold = crash_threshold
        self.exploit_fraction = exploit_fraction
        self.training_steps_per_iteration = training_steps_per_iteration
        self.batch_size = batch_size

        if model is not None and model.input_dim != self.encoder.width:
            raise ValueError(
                "pre-trained model expects {} features, space encodes to {}".format(
                    model.input_dim, self.encoder.width)
            )
        self.model = model or DeepTuneModel(
            input_dim=self.encoder.width,
            hidden_dims=hidden_dims,
            n_centroids=n_centroids,
            seed=seed,
        )
        #: True when the model was pre-trained on another application.
        self.transferred = model is not None and model.observation_count > 0
        #: warm-start provenance (donor application, zoo entry, similarity)
        #: set by the front-end that injected a pre-trained model; surfaced
        #: in run summaries and campaign reports.  None for cold starts.
        self.provenance: Optional[dict] = None

        # Observed encoded vectors, kept in a preallocated matrix grown by
        # amortized doubling: propose() reads a slice view instead of
        # re-stacking a list of rows every iteration.
        self._observed_matrix = np.empty((0, self.encoder.width), dtype=np.float64)
        self._observed_count = 0
        self._best_configurations: List[Configuration] = []
        self._best_objectives: List[float] = []
        #: seconds of model update time per iteration (Figure 8).
        self.update_times_s: List[float] = []
        #: seconds spent proposing (prediction + scoring) per iteration.
        self.proposal_times_s: List[float] = []

    # -- candidate generation -------------------------------------------------------
    def _generate_candidates(self, history: ExplorationHistory) -> List[Configuration]:
        pool: List[Configuration] = []
        n_exploit = int(self.candidate_pool_size * self.exploit_fraction)
        if self._best_configurations:
            for _ in range(n_exploit):
                base = self.sampler.rng.choice(self._best_configurations)
                pool.append(self.sampler.mutate(base, mutation_rate=0.08))
        while len(pool) < self.candidate_pool_size:
            pool.append(self.sampler.sample())
        # Drop exact repeats of what has already been evaluated.
        unique = [c for c in pool if not history.contains_configuration(c)]
        return unique or pool

    def _track_best(self, record: TrialRecord) -> None:
        if record.crashed or record.objective is None:
            return
        self._best_configurations.append(record.configuration)
        self._best_objectives.append(record.objective)
        order = np.argsort(self._best_objectives)
        if self.maximize:
            order = order[::-1]
        keep = list(order[:8])
        self._best_configurations = [self._best_configurations[i] for i in keep]
        self._best_objectives = [self._best_objectives[i] for i in keep]

    # -- search interface ---------------------------------------------------------------
    def _score_pool(self, history: ExplorationHistory):
        """One model pass over a fresh candidate pool: (candidates, scores).

        This is the audited single-batched-predict contract of the scoring
        tier: :meth:`propose` and :meth:`propose_batch` each call this
        exactly once per iteration, and the pool is scored with exactly one
        batched :meth:`DeepTuneModel.predict` over the encoded candidate
        matrix — performance, uncertainty, and crash probability all come
        out of that single forward pass, never from per-candidate model
        calls (``tests/test_deeptune.py`` pins the call count).
        """
        candidates = self._generate_candidates(history)
        matrix = self.encoder.encode_batch(candidates)
        prediction = self.model.predict(matrix)

        known = self._observed_matrix[:self._observed_count]
        scores = score_candidates(
            candidates=self.model.feature_scaler.transform(matrix),
            known=self.model.feature_scaler.transform(known) if known.size else known,
            predicted_performance=prediction.performance,
            predicted_uncertainty=prediction.uncertainty,
            predicted_crash_probability=prediction.crash_probability,
            maximize=self.maximize,
            alpha=self.alpha,
            exploration_weight=self.exploration_weight,
            crash_threshold=self.crash_threshold,
        )
        return candidates, scores

    def propose(self, history: ExplorationHistory,
                pending: Sequence[Configuration] = ()) -> Configuration:
        in_flight = set(pending)
        ready = self.model.observation_count >= self.warmup_iterations or self.transferred
        if not ready:
            return self.sampler.sample_unique(history, exclude=in_flight)

        started = time.perf_counter()
        candidates, scores = self._score_pool(history)
        # Stable descending order: with nothing in flight the first pick is
        # exactly the historical argmax candidate; otherwise the best-ranked
        # candidate not already running wins.
        choice: Optional[Configuration] = None
        for index in np.argsort(-scores, kind="stable"):
            candidate = candidates[int(index)]
            if candidate not in in_flight:
                choice = candidate
                break
        if choice is None:
            choice = self.sampler.sample_unique(history, exclude=in_flight)
        self.proposal_times_s.append(time.perf_counter() - started)
        return choice

    def propose_batch(self, history: ExplorationHistory, k: int) -> List[Configuration]:
        """Native batch proposal: the top-*k* distinct candidates of one pass.

        The algorithm already scores a full candidate pool per iteration, so
        returning several well-ranked candidates costs one extra argsort —
        this is what makes DeepTune's batch mode nearly free compared with
        *k* independent propose() calls.  The descending sort is stable, so
        ``k=1`` picks exactly the ``argmax`` candidate :meth:`propose` picks.
        """
        if k < 1:
            raise ValueError("batch size must be at least 1")
        ready = self.model.observation_count >= self.warmup_iterations or self.transferred
        if not ready:
            return self.sampler.sample_batch_unique(history, k)

        started = time.perf_counter()
        candidates, scores = self._score_pool(history)
        # skip_explored=False mirrors propose(): the pool is already
        # best-effort deduplicated by _generate_candidates, and the argmax
        # pick must stay reachable even on a nearly exhausted space.
        batch = self.sampler.fill_batch(
            (candidates[int(index)]
             for index in np.argsort(-scores, kind="stable")),
            history, k, skip_explored=False)
        self.proposal_times_s.append(time.perf_counter() - started)
        return batch

    def _append_observed(self, vector: np.ndarray) -> None:
        self._observed_matrix = ensure_row_capacity(
            self._observed_matrix, self._observed_count + 1)
        self._observed_matrix[self._observed_count] = vector
        self._observed_count += 1

    def observe(self, record: TrialRecord) -> None:
        started = time.perf_counter()
        vector = self.encoder.encode(record.configuration)
        self._append_observed(vector)
        self.model.add_observation(vector, record.objective, record.crashed)
        self._track_best(record)
        self.model.fit_incremental(
            steps=self.training_steps_per_iteration, batch_size=self.batch_size
        )
        self.update_times_s.append(time.perf_counter() - started)

    # -- checkpointing ----------------------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot everything a resumed search needs to continue bit-identically.

        The model is deep-copied wholesale: its weights, Adam moments, replay
        buffer, Welford scaler moments, and the NumPy generator shared by the
        dropout layers and the minibatch sampler all contribute to the future
        proposal stream, and copying the object is the only way to guarantee
        no field is forgotten as the model evolves.
        """
        state = super().export_state()
        state["model"] = copy.deepcopy(self.model)
        state["transferred"] = self.transferred
        state["provenance"] = copy.deepcopy(self.provenance)
        state["observed_matrix"] = self._observed_matrix[:self._observed_count].copy()
        state["best_values"] = [c.as_dict() for c in self._best_configurations]
        state["best_objectives"] = list(self._best_objectives)
        state["update_times_s"] = list(self.update_times_s)
        state["proposal_times_s"] = list(self.proposal_times_s)
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        self.model = copy.deepcopy(state["model"])
        self.transferred = bool(state["transferred"])
        # .get(): checkpoints written before the surrogate zoo carry no
        # provenance field and must keep resuming.
        self.provenance = copy.deepcopy(state.get("provenance"))
        observed = np.array(state["observed_matrix"], dtype=np.float64)
        self._observed_count = observed.shape[0]
        self._observed_matrix = ensure_row_capacity(
            np.empty((0, self.encoder.width), dtype=np.float64),
            max(1, self._observed_count))
        self._observed_matrix[:self._observed_count] = observed
        self._best_configurations = [Configuration(self.space, values)
                                     for values in state["best_values"]]
        self._best_objectives = [float(value) for value in state["best_objectives"]]
        self.update_times_s = list(state["update_times_s"])
        self.proposal_times_s = list(state["proposal_times_s"])

    # -- inspection ------------------------------------------------------------------------
    def mean_update_time_s(self) -> float:
        """Average model-update time per iteration (plotted in Figure 8)."""
        if not self.update_times_s:
            return 0.0
        return float(np.mean(self.update_times_s))

    def predicted_crash_probability(self, configuration: Configuration) -> float:
        """Crash probability the current model assigns to *configuration*."""
        vector = self.encoder.encode(configuration).reshape(1, -1)
        return float(self.model.predict(vector).crash_probability[0])
