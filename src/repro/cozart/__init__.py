"""Cozart-style compile-time debloating (§4.4, Figure 11, Table 4).

Cozart (Kuo et al., 2020) observes which kernel components a workload
actually exercises (via dynamic analysis) and disables every compile-time
option the workload never touches.  The result is a much smaller kernel — and
a much smaller remaining configuration space — that Wayfinder then optimizes
further through runtime options.  This subpackage reproduces that pipeline:
``trace`` simulates the dynamic analysis, ``debloat`` derives the reduced
baseline configuration and the reduced search space.
"""

from repro.cozart.debloat import CozartDebloater, DebloatResult
from repro.cozart.trace import WorkloadTrace, trace_workload

__all__ = [
    "WorkloadTrace",
    "trace_workload",
    "CozartDebloater",
    "DebloatResult",
]
