"""Simulated dynamic-analysis tracing of a workload's kernel usage.

The real Cozart boots an instrumented kernel, runs the workload, and records
which kernel components (and therefore which Kconfig options) were exercised.
We simulate the same observation: given the OS model's metadata and the
application's behavioural profile, the trace reports every compile-time
option the workload touches — the essential features it cannot run without,
the features its performance responds to, the machinery any boot needs, and a
deterministic sprinkle of incidentally-exercised driver options (real traces
are never perfectly minimal).
"""

from __future__ import annotations

import hashlib
from typing import Set

from repro.config.parameter import ParameterKind
from repro.vm.os_model import OSModel

#: compile-time options every boot of the simulated kernel exercises,
#: regardless of the application.
BASELINE_REQUIRED = (
    "CONFIG_NET",
    "CONFIG_INET",
    "CONFIG_BLOCK",
    "CONFIG_EXT4_FS",
    "CONFIG_TMPFS",
    "CONFIG_VIRTIO_PCI",
    "CONFIG_VIRTIO_BLK",
    "CONFIG_VIRTIO_NET",
    "CONFIG_SMP",
    "CONFIG_PROC_SYSCTL",
    "CONFIG_FUTEX",
    "CONFIG_SHMEM",
    "CONFIG_EPOLL",
    "CONFIG_EVENTFD",
    "CONFIG_MODULES",
    "CONFIG_PRINTK",
    "CONFIG_KALLSYMS",
    "CONFIG_CGROUPS",
    "CONFIG_NAMESPACES",
    "CONFIG_MEMCG",
    "CONFIG_SWAP",
    "CONFIG_HIGH_RES_TIMERS",
    "CONFIG_NO_HZ_IDLE",
    "CONFIG_JUMP_LABEL",
    "CONFIG_HZ",
    "CONFIG_PREEMPT_MODEL",
    "CONFIG_SLAB_ALLOCATOR",
    "CONFIG_NR_CPUS",
    "CONFIG_LOG_BUF_SHIFT",
    "CONFIG_RETPOLINE",
    "CONFIG_PAGE_TABLE_ISOLATION",
)

#: options exercised by specific application behaviours beyond the essentials.
PER_APPLICATION_EXTRAS = {
    "nginx": ("CONFIG_TRANSPARENT_HUGEPAGE", "CONFIG_COMPACTION", "CONFIG_NUMA"),
    "redis": ("CONFIG_TRANSPARENT_HUGEPAGE", "CONFIG_COMPACTION", "CONFIG_AIO"),
    "sqlite": ("CONFIG_AIO",),
    "npb": ("CONFIG_TRANSPARENT_HUGEPAGE", "CONFIG_COMPACTION", "CONFIG_HUGETLBFS",
            "CONFIG_NUMA"),
}


class WorkloadTrace:
    """The set of compile-time options a workload was observed to exercise."""

    def __init__(self, application: str, exercised_options: Set[str]) -> None:
        self.application = application
        self.exercised_options = set(exercised_options)

    def exercises(self, option_name: str) -> bool:
        return option_name in self.exercised_options

    def __len__(self) -> int:
        return len(self.exercised_options)

    def __repr__(self) -> str:
        return "WorkloadTrace({!r}, {} options exercised)".format(
            self.application, len(self.exercised_options)
        )


def _incidental_fraction(application: str, option_name: str) -> bool:
    """Deterministically mark ~8% of filler options as incidentally exercised."""
    digest = hashlib.sha256((application + ":" + option_name).encode()).digest()
    return digest[0] < int(0.08 * 256)


def trace_workload(os_model: OSModel, application: str) -> WorkloadTrace:
    """Simulate the dynamic-analysis trace of *application* on *os_model*."""
    exercised: Set[str] = set()
    compile_names = {
        parameter.name
        for parameter in os_model.space.parameters_of_kind(ParameterKind.COMPILE_TIME)
    }
    for name in BASELINE_REQUIRED:
        if name in compile_names:
            exercised.add(name)
    for name in os_model.essential_for(application):
        if name in compile_names:
            exercised.add(name)
    for name in PER_APPLICATION_EXTRAS.get(application, ()):
        if name in compile_names:
            exercised.add(name)
    for name in compile_names:
        if name.startswith("CONFIG_") and "_OPT" in name and _incidental_fraction(application, name):
            exercised.add(name)
    return WorkloadTrace(application, exercised)
