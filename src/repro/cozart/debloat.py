"""Deriving a debloated baseline configuration and a reduced search space."""

from __future__ import annotations

import random
from typing import List, Optional

from repro.config.parameter import ParameterKind
from repro.config.space import Configuration, ConfigSpace
from repro.cozart.trace import WorkloadTrace, trace_workload
from repro.vm.os_model import OSModel


class DebloatResult:
    """Outcome of Cozart-style debloating for one application."""

    def __init__(self, baseline: Configuration, reduced_space: ConfigSpace,
                 disabled_options: List[str], kept_options: List[str]) -> None:
        self.baseline = baseline
        self.reduced_space = reduced_space
        self.disabled_options = disabled_options
        self.kept_options = kept_options

    @property
    def disabled_count(self) -> int:
        return len(self.disabled_options)

    def __repr__(self) -> str:
        return "DebloatResult(disabled={}, kept={})".format(
            len(self.disabled_options), len(self.kept_options)
        )


class CozartDebloater:
    """Turns a workload trace into a debloated baseline + reduced space.

    Compile-time feature options the trace never exercised are switched off
    (and frozen in the reduced space, so the subsequent Wayfinder search
    focuses on the runtime parameters — the synergy experiment of §4.4);
    everything the workload exercised is kept at its default value.
    """

    def __init__(self, os_model: OSModel, seed: int = 0) -> None:
        self.os_model = os_model
        self.seed = seed

    def _disabled_value(self, parameter) -> object:
        if parameter.type_name == "tristate":
            return "n"
        if parameter.type_name == "bool":
            return False
        return parameter.default

    def debloat(self, application: str,
                trace: Optional[WorkloadTrace] = None) -> DebloatResult:
        """Compute the debloated baseline for *application*."""
        trace = trace or trace_workload(self.os_model, application)
        space = self.os_model.space
        default = space.default_configuration()
        rng = random.Random(self.seed)

        disabled: List[str] = []
        kept: List[str] = []
        updates = {}
        for parameter in space.parameters_of_kind(ParameterKind.COMPILE_TIME):
            is_feature = parameter.type_name in ("bool", "tristate")
            enabled_by_default = default[parameter.name] in (True, "y", "m")
            if not is_feature or not enabled_by_default:
                continue
            if trace.exercises(parameter.name):
                kept.append(parameter.name)
            else:
                updates[parameter.name] = self._disabled_value(parameter)
                disabled.append(parameter.name)

        baseline = default.with_values(updates)
        baseline = space.repair(baseline, rng)

        # The reduced space keeps every runtime/boot parameter searchable but
        # freezes the compile-time options at their debloated values.
        reduced = ConfigSpace(
            space.parameters(), space.constraints,
            name=space.name + "-cozart-{}".format(application),
        )
        for name, value in space.frozen_parameters.items():
            reduced.freeze(name, value)
        for parameter in space.parameters_of_kind(ParameterKind.COMPILE_TIME):
            reduced.freeze(parameter.name, baseline[parameter.name])
        return DebloatResult(
            baseline=baseline,
            reduced_space=reduced,
            disabled_options=disabled,
            kept_options=kept,
        )
