"""Neural-network layers with manual forward/backward passes.

Every layer caches what it needs during ``forward`` and returns input
gradients from ``backward``; trainable parameters and their accumulated
gradients are exposed through ``parameters()`` so any optimizer can update
them in place.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

Array = np.ndarray


class Layer:
    """Base class: a differentiable transformation of a (batch, features) array."""

    def forward(self, inputs: Array, training: bool = False) -> Array:
        raise NotImplementedError

    def backward(self, grad_output: Array) -> Array:
        """Given dL/d(output), accumulate parameter gradients and return dL/d(input)."""
        raise NotImplementedError

    def parameters(self) -> List[Tuple[Array, Array]]:
        """Return (parameter, gradient) pairs; both are updated in place."""
        return []

    def zero_grad(self) -> None:
        for _, grad in self.parameters():
            grad.fill(0.0)

    @property
    def output_dim(self) -> Optional[int]:
        return None


class Dense(Layer):
    """Fully connected affine layer with He-style initialization."""

    def __init__(self, in_dim: int, out_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("layer dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_dim)
        self.weights = rng.normal(0.0, scale, size=(in_dim, out_dim))
        self.bias = np.zeros(out_dim)
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._inputs: Optional[Array] = None

    def forward(self, inputs: Array, training: bool = False) -> Array:
        self._inputs = inputs
        return inputs @ self.weights + self.bias

    def backward(self, grad_output: Array) -> Array:
        if self._inputs is None:
            raise RuntimeError("backward called before forward")
        self.grad_weights += self._inputs.T @ grad_output
        self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weights.T

    def parameters(self) -> List[Tuple[Array, Array]]:
        return [(self.weights, self.grad_weights), (self.bias, self.grad_bias)]

    @property
    def output_dim(self) -> int:
        return self.weights.shape[1]


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[Array] = None

    def forward(self, inputs: Array, training: bool = False) -> Array:
        self._mask = inputs > 0.0
        return inputs * self._mask

    def backward(self, grad_output: Array) -> Array:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)
        self._mask: Optional[Array] = None

    def forward(self, inputs: Array, training: bool = False) -> Array:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: Array) -> Array:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class RBFLayer(Layer):
    """Gaussian radial-basis-function layer (paper eq. 1).

    Each neuron holds a centroid ``c``; its activation for an input ``z`` is
    ``phi(z) = exp(-||z - c||^2 / (2 * gamma^2))``.  Activations close to 1
    mean the input resembles a learned prototype; activations near 0 flag an
    outlier, which is how the uncertainty branch detects unfamiliar
    configurations.
    """

    def __init__(self, in_dim: int, n_centroids: int, gamma: float = 0.1,
                 rng: Optional[np.random.Generator] = None) -> None:
        if n_centroids <= 0:
            raise ValueError("need at least one centroid")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        rng = rng or np.random.default_rng(0)
        self.gamma = gamma
        self.centroids = rng.normal(0.0, 1.0, size=(n_centroids, in_dim))
        self.grad_centroids = np.zeros_like(self.centroids)
        self._inputs: Optional[Array] = None
        self._activations: Optional[Array] = None
        self._diff: Optional[Array] = None

    def _kernel(self, inputs: Array) -> Tuple[Array, Array]:
        """Stateless Gaussian kernel: returns (diff, activations)."""
        # diff[b, k, d] = z_b[d] - c_k[d]
        diff = inputs[:, None, :] - self.centroids[None, :, :]
        sq_dist = np.sum(diff ** 2, axis=2)
        return diff, np.exp(-sq_dist / (2.0 * self.gamma ** 2))

    def forward(self, inputs: Array, training: bool = False) -> Array:
        self._inputs = inputs
        self._diff, self._activations = self._kernel(inputs)
        return self._activations

    def backward(self, grad_output: Array) -> Array:
        if self._activations is None or self._diff is None:
            raise RuntimeError("backward called before forward")
        # d phi / d sq_dist = -phi / (2 gamma^2); d sq_dist / d z = 2 diff
        common = grad_output * self._activations / (self.gamma ** 2)
        grad_inputs = -np.einsum("bk,bkd->bd", common, self._diff)
        self.grad_centroids += np.einsum("bk,bkd->kd", common, self._diff)
        return grad_inputs

    def parameters(self) -> List[Tuple[Array, Array]]:
        return [(self.centroids, self.grad_centroids)]

    @property
    def output_dim(self) -> int:
        return self.centroids.shape[0]

    def max_activation(self, inputs: Array) -> Array:
        """Per-sample maximum centroid activation (1 = prototypical, 0 = outlier).

        Computed without going through :meth:`forward`, which would clobber
        the cached ``_inputs``/``_diff``/``_activations`` that a pending
        :meth:`backward` still needs.
        """
        _, activations = self._kernel(inputs)
        return activations.max(axis=1)


class Sequential(Layer):
    """A simple stack of layers applied in order."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, inputs: Array, training: bool = False) -> Array:
        output = inputs
        for layer in self.layers:
            output = layer.forward(output, training=training)
        return output

    def backward(self, grad_output: Array) -> Array:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Tuple[Array, Array]]:
        params: List[Tuple[Array, Array]] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    @property
    def output_dim(self) -> Optional[int]:
        for layer in reversed(self.layers):
            if layer.output_dim is not None:
                return layer.output_dim
        return None
