"""Amortized-doubling array buffers shared by the incremental hot paths.

The DeepTune replay buffer, the search algorithms' observed-vector matrices
and the exploration history's training columns all append one row per
iteration.  They share this helper so the growth policy (start at 64 rows,
double on overflow, preserve the prefix) lives in exactly one place.
"""

from __future__ import annotations

import numpy as np

#: initial number of rows allocated on the first growth.
INITIAL_CAPACITY = 64


def ensure_row_capacity(array: np.ndarray, needed: int,
                        minimum: int = INITIAL_CAPACITY) -> np.ndarray:
    """Return *array*, reallocated by doubling if it has fewer than *needed* rows.

    The existing rows are preserved; rows past the old capacity are
    uninitialized (callers track their own fill count).  Dtype and trailing
    dimensions are kept.
    """
    capacity = array.shape[0]
    if capacity >= needed:
        return array
    new_capacity = max(minimum, capacity)
    while new_capacity < needed:
        new_capacity *= 2
    grown = np.empty((new_capacity,) + array.shape[1:], dtype=array.dtype)
    grown[:capacity] = array
    return grown
