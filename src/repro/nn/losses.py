"""Loss functions used to train the DeepTune model.

The DTM is trained end-to-end with ``L = L_CCE + L_Reg + L_Cham`` (§3.2):

* ``L_CCE`` — categorical cross-entropy on the crash/no-crash head;
* ``L_Reg`` — the heteroscedastic regression loss of Kendall & Gal, which
  predicts the performance together with its expected error;
* ``L_Cham`` — the Chamfer distance between the RBF centroids and the batch
  of latent inputs, which spreads the centroids over the data distribution.

Every function returns ``(loss, gradients...)`` so the model can run its
manual backward pass.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

Array = np.ndarray


def softmax_cross_entropy(logits: Array, labels: Array,
                          weight: float = 1.0) -> Tuple[float, Array]:
    """Categorical cross-entropy over class logits.

    ``logits`` is (batch, classes); ``labels`` is (batch,) with integer class
    indices.  Returns the mean loss and the gradient with respect to the
    logits.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or labels.ndim != 1 or logits.shape[0] != labels.shape[0]:
        raise ValueError("logits must be (n, c) and labels (n,)")
    n = logits.shape[0]
    if n == 0:
        return 0.0, np.zeros_like(logits)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probabilities = exp / exp.sum(axis=1, keepdims=True)
    picked = probabilities[np.arange(n), labels]
    loss = float(-np.mean(np.log(np.clip(picked, 1e-12, None)))) * weight
    grad = probabilities.copy()
    grad[np.arange(n), labels] -= 1.0
    grad *= weight / n
    return loss, grad


def heteroscedastic_regression_loss(
    mean: Array, log_variance: Array, targets: Array,
    mask: Optional[Array] = None, weight: float = 1.0,
) -> Tuple[float, Array, Array]:
    """Regression loss with predicted uncertainty (Kendall & Gal, NeurIPS'17).

    ``loss = 0.5 * exp(-s) * (y - mu)^2 + 0.5 * s`` with ``s = log sigma^2``.
    ``mask`` selects the samples that have a regression target at all
    (crashed configurations have none).  Returns the mean loss and gradients
    with respect to ``mean`` and ``log_variance``.
    """
    mean = np.asarray(mean, dtype=np.float64).reshape(-1)
    log_variance = np.asarray(log_variance, dtype=np.float64).reshape(-1)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    if mask is None:
        mask = ~np.isnan(targets)
    mask = np.asarray(mask, dtype=bool).reshape(-1)
    grad_mean = np.zeros_like(mean)
    grad_log_var = np.zeros_like(log_variance)
    count = int(mask.sum())
    if count == 0:
        return 0.0, grad_mean, grad_log_var
    safe_targets = np.where(mask, np.nan_to_num(targets), 0.0)
    residual = safe_targets - mean
    precision = np.exp(-np.clip(log_variance, -10.0, 10.0))
    per_sample = 0.5 * precision * residual ** 2 + 0.5 * log_variance
    loss = float(np.sum(per_sample[mask]) / count) * weight
    scale = weight / count
    grad_mean[mask] = (-precision * residual)[mask] * scale
    grad_log_var[mask] = (0.5 - 0.5 * precision * residual ** 2)[mask] * scale
    return loss, grad_mean, grad_log_var


def chamfer_distance(centroids: Array, points: Array,
                     weight: float = 1.0) -> Tuple[float, Array]:
    """Symmetric Chamfer distance between the centroid set and a point batch.

    ``d(A, B) = mean_a min_b ||a - b||^2 + mean_b min_a ||a - b||^2``.
    Minimizing it with respect to the centroids pulls every centroid towards
    its nearest data point and makes sure every data point has a nearby
    centroid — i.e. the centroids end up covering the training distribution,
    which is exactly the regularization role the paper assigns to ``L_Cham``.
    Returns the loss and its gradient with respect to the centroids.
    """
    centroids = np.asarray(centroids, dtype=np.float64)
    points = np.asarray(points, dtype=np.float64)
    if centroids.ndim != 2 or points.ndim != 2 or centroids.shape[1] != points.shape[1]:
        raise ValueError("centroids and points must be 2-D with matching feature size")
    if points.shape[0] == 0:
        return 0.0, np.zeros_like(centroids)
    diff = centroids[:, None, :] - points[None, :, :]
    sq_dist = np.sum(diff ** 2, axis=2)

    grad = np.zeros_like(centroids)
    k = centroids.shape[0]
    n = points.shape[0]

    # Term 1: every centroid to its nearest point.
    nearest_point = np.argmin(sq_dist, axis=1)
    term1 = float(np.mean(sq_dist[np.arange(k), nearest_point]))
    grad += 2.0 * (centroids - points[nearest_point]) / k

    # Term 2: every point to its nearest centroid.
    nearest_centroid = np.argmin(sq_dist, axis=0)
    term2 = float(np.mean(sq_dist[nearest_centroid, np.arange(n)]))
    np.add.at(grad, nearest_centroid, 2.0 * (centroids[nearest_centroid] - points) / n)

    return (term1 + term2) * weight, grad * weight
