"""Feature and target normalization helpers."""

from __future__ import annotations

from typing import Optional

import numpy as np

Array = np.ndarray


class StandardScaler:
    """Z-score normalizer that tolerates constant columns and empty fits.

    The RBF uncertainty branch assumes z-scored inputs (the paper fits
    ``gamma = 0.1`` under that assumption), and the regression head trains on
    z-scored targets so the loss magnitudes stay comparable across
    applications whose metrics differ by orders of magnitude (req/s vs
    microseconds).
    """

    def __init__(self) -> None:
        self.mean_: Optional[Array] = None
        self.std_: Optional[Array] = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, data: Array) -> "StandardScaler":
        data = np.asarray(data, dtype=np.float64)
        if data.size == 0:
            raise ValueError("cannot fit a scaler on empty data")
        if data.ndim == 1:
            data = data.reshape(-1, 1)
        self.mean_ = data.mean(axis=0)
        std = data.std(axis=0)
        std[std < 1e-12] = 1.0
        self.std_ = std
        return self

    def transform(self, data: Array) -> Array:
        data = np.asarray(data, dtype=np.float64)
        squeeze = data.ndim == 1
        if squeeze:
            data = data.reshape(-1, 1)
        if not self.is_fitted:
            result = data
        else:
            result = (data - self.mean_) / self.std_
        return result.reshape(-1) if squeeze else result

    def fit_transform(self, data: Array) -> Array:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: Array) -> Array:
        data = np.asarray(data, dtype=np.float64)
        squeeze = data.ndim == 1
        if squeeze:
            data = data.reshape(-1, 1)
        if not self.is_fitted:
            result = data
        else:
            result = data * self.std_ + self.mean_
        return result.reshape(-1) if squeeze else result

    def inverse_scale(self, data: Array) -> Array:
        """Undo only the scaling (for standard deviations, not means)."""
        data = np.asarray(data, dtype=np.float64)
        if not self.is_fitted:
            return data
        return data * self.std_.reshape(-1)[0] if data.ndim == 1 else data * self.std_
