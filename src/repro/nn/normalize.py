"""Feature and target normalization helpers.

Besides the batch :class:`StandardScaler`, this module provides
:class:`RunningMoments` — a Welford online mean/variance accumulator — so the
DeepTune replay buffer can keep its scaler statistics up to date in O(dim)
per new observation instead of re-stacking and re-fitting the whole history
every iteration (the flat-per-iteration invariant of Figure 7/8).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

Array = np.ndarray


class RunningMoments:
    """Welford's online algorithm for per-column mean and variance.

    Numerically stable streaming moments: ``update`` folds one row in O(dim),
    and the resulting mean/std match a from-scratch batch fit to floating-
    point accuracy (the test suite asserts 1e-10 agreement after 500 updates).
    """

    __slots__ = ("count", "mean", "m2")

    def __init__(self, dim: Optional[int] = None) -> None:
        self.count = 0
        self.mean: Optional[Array] = None if dim is None else np.zeros(dim)
        self.m2: Optional[Array] = None if dim is None else np.zeros(dim)

    def update(self, row: Array) -> None:
        """Fold one observation (a flat vector) into the running moments."""
        row = np.asarray(row, dtype=np.float64).reshape(-1)
        if self.mean is None:
            self.mean = np.zeros_like(row)
            self.m2 = np.zeros_like(row)
        self.count += 1
        delta = row - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (row - self.mean)

    def update_batch(self, rows: Array) -> None:
        """Fold a (n, dim) batch row by row.

        Note the 1-D convention differs from :meth:`update`: a flat array
        here is treated as n one-dimensional observations (matching
        ``StandardScaler.fit``), whereas ``update`` takes one dim-n row.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows.reshape(-1, 1)
        for row in rows:
            self.update(row)

    def variance(self) -> Array:
        """Population variance (ddof=0, matching ``np.std``'s default)."""
        if self.mean is None or self.count == 0:
            raise ValueError("no observations accumulated")
        return self.m2 / self.count

    def std(self, min_std: float = 1e-12) -> Array:
        """Population standard deviation; constant columns get unit scale."""
        std = np.sqrt(self.variance())
        std[std < min_std] = 1.0
        return std

class StandardScaler:
    """Z-score normalizer that tolerates constant columns and empty fits.

    The RBF uncertainty branch assumes z-scored inputs (the paper fits
    ``gamma = 0.1`` under that assumption), and the regression head trains on
    z-scored targets so the loss magnitudes stay comparable across
    applications whose metrics differ by orders of magnitude (req/s vs
    microseconds).
    """

    def __init__(self) -> None:
        self.mean_: Optional[Array] = None
        self.std_: Optional[Array] = None
        self._moments: Optional[RunningMoments] = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, data: Array) -> "StandardScaler":
        data = np.asarray(data, dtype=np.float64)
        if data.size == 0:
            raise ValueError("cannot fit a scaler on empty data")
        if data.ndim == 1:
            data = data.reshape(-1, 1)
        self.mean_ = data.mean(axis=0)
        std = data.std(axis=0)
        std[std < 1e-12] = 1.0
        self.std_ = std
        self._moments = None
        return self

    def partial_fit(self, data: Array) -> "StandardScaler":
        """Incrementally fold *data* into the fitted statistics (Welford).

        Unlike :meth:`fit`, which recomputes from scratch, ``partial_fit``
        accumulates across calls: after any sequence of partial fits the
        statistics match a single :meth:`fit` over the concatenated data to
        floating-point accuracy.  A later call to :meth:`fit` resets the
        accumulator.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.size == 0:
            return self
        if data.ndim == 1:
            data = data.reshape(-1, 1)
        if self._moments is None:
            self._moments = RunningMoments()
        self._moments.update_batch(data)
        self.mean_ = self._moments.mean.copy()
        self.std_ = self._moments.std()
        return self

    def fit_from_moments(self, moments: RunningMoments) -> "StandardScaler":
        """Adopt the statistics of an externally maintained accumulator.

        Like :meth:`fit`, this resets any :meth:`partial_fit` accumulator —
        otherwise a later partial fit would silently resurrect pre-adoption
        data into the statistics.
        """
        if moments.mean is None or moments.count == 0:
            raise ValueError("cannot fit a scaler from empty moments")
        self.mean_ = moments.mean.copy()
        self.std_ = moments.std()
        self._moments = None
        return self

    def transform(self, data: Array) -> Array:
        data = np.asarray(data, dtype=np.float64)
        squeeze = data.ndim == 1
        if squeeze:
            data = data.reshape(-1, 1)
        if not self.is_fitted:
            result = data
        else:
            result = (data - self.mean_) / self.std_
        return result.reshape(-1) if squeeze else result

    def fit_transform(self, data: Array) -> Array:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: Array) -> Array:
        data = np.asarray(data, dtype=np.float64)
        squeeze = data.ndim == 1
        if squeeze:
            data = data.reshape(-1, 1)
        if not self.is_fitted:
            result = data
        else:
            result = data * self.std_ + self.mean_
        return result.reshape(-1) if squeeze else result

    def inverse_scale(self, data: Array) -> Array:
        """Undo only the scaling (for standard deviations, not means)."""
        data = np.asarray(data, dtype=np.float64)
        if not self.is_fitted:
            return data
        return data * self.std_.reshape(-1)[0] if data.ndim == 1 else data * self.std_
