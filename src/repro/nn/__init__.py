"""A small, self-contained neural-network library (numpy only).

DeepTune's model is a multitask feedforward network with an unusual
uncertainty branch made of Gaussian radial-basis-function layers, trained
with a combination of categorical cross-entropy, heteroscedastic regression
and Chamfer-distance losses.  None of the scientific Python stack available
offline provides that combination, so this subpackage implements the required
pieces from scratch: dense/ReLU/dropout/RBF layers with manual
backpropagation, the three losses, the Adam optimizer and target scaling.
"""

from repro.nn.layers import Dense, Dropout, Layer, RBFLayer, ReLU, Sequential
from repro.nn.losses import (
    chamfer_distance,
    heteroscedastic_regression_loss,
    softmax_cross_entropy,
)
from repro.nn.normalize import StandardScaler
from repro.nn.optimizer import Adam

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Dropout",
    "RBFLayer",
    "Sequential",
    "Adam",
    "StandardScaler",
    "softmax_cross_entropy",
    "heteroscedastic_regression_loss",
    "chamfer_distance",
]
