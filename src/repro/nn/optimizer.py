"""Optimizers for the numpy neural-network stack."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

Array = np.ndarray


class Adam:
    """Adam optimizer operating in place on (parameter, gradient) pairs."""

    def __init__(self, learning_rate: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step = 0
        self._first_moment: List[Array] = []
        self._second_moment: List[Array] = []

    def _ensure_state(self, parameters: Sequence[Tuple[Array, Array]]) -> None:
        if len(self._first_moment) != len(parameters):
            self._first_moment = [np.zeros_like(param) for param, _ in parameters]
            self._second_moment = [np.zeros_like(param) for param, _ in parameters]

    def step(self, parameters: Sequence[Tuple[Array, Array]]) -> None:
        """Apply one Adam update to every (parameter, gradient) pair."""
        self._ensure_state(parameters)
        self._step += 1
        correction1 = 1.0 - self.beta1 ** self._step
        correction2 = 1.0 - self.beta2 ** self._step
        for index, (param, grad) in enumerate(parameters):
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            m = self._first_moment[index]
            v = self._second_moment[index]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / correction1
            v_hat = v / correction2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        """Forget all moment estimates (used when a model is re-initialized)."""
        self._step = 0
        self._first_moment = []
        self._second_moment = []
