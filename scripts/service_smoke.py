#!/usr/bin/env python3
"""CI smoke for the tuning service: submit over HTTP, kill, recover, diff.

Choreography (the ISSUE-8 acceptance flow, runnable locally too):

1. start ``repro serve`` in the background on a fresh results root;
2. submit the given campaign YAML over ``POST /v1/campaigns`` and follow
   the NDJSON event stream until the search is demonstrably mid-flight;
3. ``kill -9`` the server, start a fresh one on the same results root —
   recovery must come from the on-disk campaign manifest alone;
4. poll ``GET /v1/jobs/{id}`` until the job completes;
5. diff the ``/report`` JSON byte-for-byte against
   ``repro campaign report --json`` on the same campaign directory.

Usage:
    PYTHONPATH=src python scripts/service_smoke.py \
        examples/campaign_smoke.yaml service-smoke-results
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

TENANT = "ci"


def spawn_server(results_root):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--results",
         results_root, "--port", "0", "--workers", "1", "--lease-s", "0.5"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + 60
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        print("[serve] " + line, end="")
        if line.startswith("listening on "):
            return process, line.split("listening on ", 1)[1].strip()
    process.kill()
    sys.exit("server never announced its address")


def request_json(url, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    with urllib.request.urlopen(urllib.request.Request(url, data=data),
                                timeout=60) as response:
        return json.loads(response.read())


def main():
    spec_path, results_root = sys.argv[1], sys.argv[2]
    from repro.config.jobfile import load_campaign_file

    payload = load_campaign_file(spec_path).to_dict()

    process, base = spawn_server(results_root)
    try:
        submitted = request_json(base + "/v1/campaigns",
                                 {"tenant": TENANT, "campaign": payload})
        job = submitted["job"]
        print("submitted {} ({} experiments)".format(
            job, len(submitted["experiments"])))
        # follow the live stream until two trials committed: mid-campaign
        trials = 0
        with urllib.request.urlopen(
                "{}/v1/jobs/{}/events".format(base, job), timeout=120) as stream:
            for line in stream:
                if json.loads(line)["event"] == "trial":
                    trials += 1
                    if trials >= 2:
                        break
        print("{} trials observed; killing the server mid-campaign".format(
            trials))
    finally:
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)

    process, base = spawn_server(results_root)
    try:
        deadline = time.time() + 600
        while time.time() < deadline:
            status = request_json("{}/v1/jobs/{}".format(base, job))
            if status["phase"] == "complete":
                break
            time.sleep(0.5)
        else:
            sys.exit("job {} never completed after restart".format(job))
        statuses = [e["status"] for e in status["experiments"]]
        if statuses != ["complete"] * len(statuses):
            sys.exit("unexpected experiment statuses: {}".format(statuses))
        print("job completed after restart: {} experiments".format(
            len(statuses)))

        with urllib.request.urlopen(
                "{}/v1/jobs/{}/report".format(base, job),
                timeout=60) as response:
            http_report = response.read()
    finally:
        process.terminate()
        process.wait(timeout=30)

    directory = os.path.join(results_root, TENANT, "000000")
    cli_report = subprocess.run(
        [sys.executable, "-m", "repro.cli", "campaign", "report",
         "--results", directory, "--json"],
        check=True, stdout=subprocess.PIPE).stdout
    if cli_report != http_report:
        sys.exit("/report JSON differs from `campaign report --json`")
    print("/report JSON byte-identical to the CLI report ({} bytes); OK".format(
        len(http_report)))


if __name__ == "__main__":
    main()
