#!/usr/bin/env python3
"""Benchmark regression guard for the nightly CI job.

Compares the current ``BENCH_hotpaths.json`` against the artifact of the
previous nightly run and fails (exit code 1) when a guarded metric regresses
by more than the threshold (default 25%).  Guarded metrics:

* ``deeptune_flat_iteration.ratio`` — the Figure 7 flat-cost invariant:
  last-quartile / first-quartile per-iteration time (lower is better);
* ``deeptune_flat_iteration.mean_iteration_ms`` — absolute flat-loop cost
  (lower is better; the 25% margin absorbs shared-runner noise);
* ``batch_encoding.speedup`` — columnar batch encoder vs reference path
  (higher is better);
* ``batched_execution.virtual_speedup`` — 4-worker batch fleet vs the
  sequential loop on the virtual clock (higher is better, deterministic);
* ``async_execution.virtual_speedup`` — async scheduling vs the batch
  barrier on the virtual clock (higher is better, deterministic);
* ``million_trial_store.flat_ratio`` — columnar-store ingest+checkpoint
  flatness over a 10^5-trial session (lower is better);
* ``million_trial_store.checkpoint_time_ratio`` — checkpoint write must be
  O(new trials), not O(history) (lower is better);
* ``forest_scoring.speedup`` — flattened-tree batch prediction vs the
  per-row oracle (higher is better);
* ``report_aggregation.streaming_ms`` — campaign report wall-time over a
  10^5-trial multi-experiment campaign via the streaming columnar tier
  (lower is better);
* ``payload_sidecar.ratio`` — block-compressed payload sidecar bytes as a
  fraction of the raw JSONL bytes (lower is better, deterministic).

Metrics missing from the previous artifact (e.g. sections introduced by a
newer PR) are reported as "new" and skipped, so the guard never blocks the
first nightly run after a benchmark is added.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

#: (section, key, direction) — direction "lower" means smaller values are
#: better, "higher" the opposite.
GUARDED_METRICS: List[Tuple[str, str, str]] = [
    ("deeptune_flat_iteration", "ratio", "lower"),
    ("deeptune_flat_iteration", "mean_iteration_ms", "lower"),
    ("batch_encoding", "speedup", "higher"),
    ("batched_execution", "virtual_speedup", "higher"),
    ("async_execution", "virtual_speedup", "higher"),
    ("million_trial_store", "flat_ratio", "lower"),
    ("million_trial_store", "checkpoint_time_ratio", "lower"),
    ("forest_scoring", "speedup", "higher"),
    ("report_aggregation", "streaming_ms", "lower"),
    ("payload_sidecar", "ratio", "lower"),
]


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _metric(document: dict, section: str, key: str) -> Optional[float]:
    value = document.get(section, {}).get(key)
    return None if value is None else float(value)


def compare(previous: dict, current: dict, threshold: float) -> List[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    regressions: List[str] = []
    for section, key, direction in GUARDED_METRICS:
        name = "{}.{}".format(section, key)
        old = _metric(previous, section, key)
        new = _metric(current, section, key)
        if new is None:
            regressions.append("{}: missing from the current run".format(name))
            continue
        if old is None:
            print("  {}: {:.3f} (new metric, no baseline)".format(name, new))
            continue
        if direction == "lower":
            regressed = new > old * (1.0 + threshold)
        else:
            regressed = new < old / (1.0 + threshold)
        change = (new - old) / old * 100.0 if old else float("inf")
        status = "REGRESSED" if regressed else "ok"
        print("  {}: {:.3f} -> {:.3f} ({:+.1f}%) [{}]".format(
            name, old, new, change, status))
        if regressed:
            regressions.append(
                "{}: {:.3f} -> {:.3f} ({:+.1f}%, allowed {:.0f}%)".format(
                    name, old, new, change, threshold * 100.0))
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("previous", help="BENCH_hotpaths.json of the previous run")
    parser.add_argument("current", help="BENCH_hotpaths.json of this run")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative regression (default: 0.25)")
    args = parser.parse_args(argv)

    previous = _load(args.previous)
    current = _load(args.current)
    if bool(previous.get("batch_encoding", {}).get("smoke")) != bool(
            current.get("batch_encoding", {}).get("smoke")):
        print("previous and current artifacts use different budgets "
              "(smoke vs full); skipping the regression guard")
        return 0
    print("benchmark regression guard (threshold {:.0f}%):".format(
        args.threshold * 100.0))
    regressions = compare(previous, current, args.threshold)
    if regressions:
        print("\nbenchmark regressions detected:", file=sys.stderr)
        for message in regressions:
            print("  " + message, file=sys.stderr)
        return 1
    print("no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
