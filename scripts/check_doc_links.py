#!/usr/bin/env python3
"""Docs link check: every relative link in the documentation must resolve.

Scans markdown files (README.md, ROADMAP.md, docs/*.md by default) for
inline links and image references, and fails when a relative target does
not exist on disk.  External links (http/https/mailto) and pure anchors
are skipped; a ``path#anchor`` target is checked for the path part only.

Usage:
    python scripts/check_doc_links.py [file-or-dir ...]
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterable, List, Tuple

#: inline markdown links/images: [text](target) / ![alt](target)
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

DEFAULT_TARGETS = ("README.md", "ROADMAP.md", "docs")


def markdown_files(targets: Iterable[str]) -> List[str]:
    files: List[str] = []
    for target in targets:
        if os.path.isdir(target):
            for name in sorted(os.listdir(target)):
                if name.endswith(".md"):
                    files.append(os.path.join(target, name))
        elif os.path.exists(target):
            files.append(target)
    return files


def broken_links(path: str) -> List[Tuple[int, str]]:
    """(line number, target) pairs whose relative targets do not resolve."""
    base = os.path.dirname(os.path.abspath(path))
    broken: List[Tuple[int, str]] = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            for match in LINK.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                if not os.path.exists(os.path.join(base, relative)):
                    broken.append((number, target))
    return broken


def main(argv: List[str]) -> int:
    targets = argv or list(DEFAULT_TARGETS)
    files = markdown_files(targets)
    if not files:
        print("no markdown files found under {}".format(targets),
              file=sys.stderr)
        return 2
    failures = 0
    for path in files:
        for number, target in broken_links(path):
            print("{}:{}: broken link -> {}".format(path, number, target),
                  file=sys.stderr)
            failures += 1
    checked = len(files)
    if failures:
        print("{} broken link{} across {} file{}".format(
            failures, "" if failures == 1 else "s",
            checked, "" if checked == 1 else "s"), file=sys.stderr)
        return 1
    print("docs link check: {} file{} clean".format(
        checked, "" if checked == 1 else "s"))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
