#!/usr/bin/env python3
"""CI smoke for transfer-learning warm start across two CLI campaigns.

Choreography:

1. run a tiny donor campaign (DeepTune on two applications) through
   ``repro campaign run`` — completing experiments must publish their
   trained models into ``<results>/zoo/``;
2. run a second campaign on a held-out application whose base declares
   ``warm_start:`` pointing at the donor campaign directory;
3. assert the target campaign's manifest records warm-start provenance
   (donor application + similarity) in the experiment summary, and that
   ``campaign report`` renders the provenance table.

Usage:
    PYTHONPATH=src python scripts/warm_start_smoke.py warm-smoke-results
"""

import json
import os
import subprocess
import sys
import tempfile

#: donors and the target share the space (same seed/options) so the zoo
#: fingerprints are compatible; applications differ.
DONOR_CAMPAIGN = """\
campaign:
  name: warm-donors
  applications:
    - nginx
    - redis
  algorithms:
    - deeptune
  seeds:
    - 0
  base:
    metric: auto
    iterations: 6
    space_options:
      extra_compile: 20
      extra_runtime: 12
      extra_boot: 4
    algorithm_options:
      warmup_iterations: 3
      candidate_pool_size: 32
      training_steps_per_iteration: 4
      hidden_dims:
        - 24
        - 12
      n_centroids: 8
"""

TARGET_CAMPAIGN = """\
campaign:
  name: warm-targets
  applications:
    - sqlite
  algorithms:
    - deeptune
  seeds:
    - 0
  base:
    metric: auto
    iterations: 6
    space_options:
      extra_compile: 20
      extra_runtime: 12
      extra_boot: 4
    algorithm_options:
      candidate_pool_size: 32
      training_steps_per_iteration: 4
      hidden_dims:
        - 24
        - 12
      n_centroids: 8
    warm_start:
      zoo: {donor_dir}
      min_similarity: 0.0
"""


def run_cli(*args):
    subprocess.run([sys.executable, "-m", "repro.cli", *args], check=True)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="warm-smoke-")
    donor_dir = os.path.join(root, "donors")
    target_dir = os.path.join(root, "targets")
    os.makedirs(root, exist_ok=True)

    donor_spec = os.path.join(root, "donors.yaml")
    with open(donor_spec, "w") as handle:
        handle.write(DONOR_CAMPAIGN)
    run_cli("campaign", "run", "--spec", donor_spec, "--results", donor_dir,
            "--procs", "2")

    zoo_index = os.path.join(donor_dir, "zoo", "index.json")
    with open(zoo_index) as handle:
        entries = json.load(handle)["entries"]
    applications = sorted(entry["application"] for entry in entries.values())
    if applications != ["nginx", "redis"]:
        sys.exit("zoo holds {} instead of the two donors".format(applications))
    print("donor campaign published {} zoo entries: {}".format(
        len(entries), ", ".join(sorted(entries))))

    target_spec = os.path.join(root, "targets.yaml")
    with open(target_spec, "w") as handle:
        handle.write(TARGET_CAMPAIGN.format(donor_dir=donor_dir))
    run_cli("campaign", "run", "--spec", target_spec, "--results", target_dir,
            "--procs", "1")

    with open(os.path.join(target_dir, "campaign.json")) as handle:
        manifest = json.load(handle)
    (experiment,) = manifest["experiments"]
    provenance = (experiment.get("summary") or {}).get("warm_start")
    if not provenance:
        sys.exit("target experiment completed without warm-start provenance")
    if provenance["donor"] not in ("nginx", "redis"):
        sys.exit("unexpected donor: {}".format(provenance))
    print("warm-started {} from donor {} (similarity {})".format(
        experiment["name"], provenance["donor"], provenance["similarity"]))

    report = subprocess.run(
        [sys.executable, "-m", "repro.cli", "campaign", "report",
         "--results", target_dir],
        check=True, stdout=subprocess.PIPE, text=True).stdout
    if "Warm-started experiments" not in report:
        sys.exit("campaign report does not render the warm-start table")
    if provenance["donor"] not in report:
        sys.exit("campaign report does not show the donor application")
    print("campaign report renders the warm-start provenance table; OK")


if __name__ == "__main__":
    main()
