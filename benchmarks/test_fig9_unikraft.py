"""Figure 9: Wayfinder vs random search vs Bayesian optimization on Unikraft.

The Unikraft+Nginx space (33 parameters) is small enough for Bayesian
optimization to participate.  Each algorithm gets the same virtual time
budget; the benchmark reports the best-so-far throughput curves and checks
the paper's ordering: Wayfinder (DeepTune) reaches the best configurations
and reaches good configurations no later than Bayesian optimization, while
random search trails both.
"""

from repro import Wayfinder
from repro.analysis.reporting import format_series
from repro.analysis.smoothing import downsample

from benchmarks.conftest import scaled

TIME_BUDGET_S = 3 * 3600.0
ITERATION_CAP = 90


def run_unikraft_comparison(iteration_cap: int):
    results = {}
    for algorithm in ("random", "bayesian", "deeptune"):
        wayfinder = Wayfinder.for_unikraft(
            algorithm=algorithm, seed=77,
            algorithm_options={"candidate_pool_size": 64}
            if algorithm != "random" else None)
        results[algorithm] = wayfinder.specialize(
            iterations=iteration_cap, time_budget_s=TIME_BUDGET_S)
    return results


def _time_to_reach(result, threshold):
    for finished_at, best in result.history.best_so_far_series():
        if best >= threshold:
            return finished_at
    return float("inf")


def test_fig9_unikraft_algorithm_comparison(benchmark):
    results = benchmark.pedantic(run_unikraft_comparison,
                                 args=(scaled(ITERATION_CAP),), rounds=1, iterations=1)

    print()
    for name, result in results.items():
        series = downsample(result.history.best_so_far_series(), max_points=12)
        print(format_series(series, x_label="time (s)", y_label="best req/s",
                            title="Figure 9 ({}): best-so-far throughput".format(name),
                            max_points=12))
        print("  {}: best={:.0f} req/s, crash rate={:.0%}".format(
            name, result.best_performance or 0.0, result.crash_rate))

    best_deeptune = results["deeptune"].best_performance
    best_bayesian = results["bayesian"].best_performance
    best_random = results["random"].best_performance

    # Paper ordering: Wayfinder >= Bayesian > random on the configurations found.
    assert best_deeptune >= best_bayesian * 0.95
    assert best_deeptune > best_random
    assert best_deeptune > 35000

    # Wayfinder converges on good configurations no later than Bayesian
    # optimization (the paper reports ~100 min vs >160 min).
    threshold = 0.9 * best_deeptune
    assert _time_to_reach(results["deeptune"], threshold) <= \
        _time_to_reach(results["bayesian"], threshold) * 1.2
