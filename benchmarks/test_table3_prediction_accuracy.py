"""Table 3: DeepTune prediction accuracy per application.

Takes the DeepTune models trained during the cached §4.1 sessions and
evaluates them on freshly drawn random configurations (held out from
training): failure accuracy (how often a configuration that actually fails is
predicted to fail), run accuracy (how often a configuration that actually
runs is predicted to run), and the normalized mean absolute error of the
performance prediction.

Shape checks, per the paper: failure accuracy is high (the paper reports
0.74-0.80), clearly higher than run accuracy, and the normalized MAE stays
well below 0.5.
"""

import random

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.stats import prediction_quality_summary
from repro.config.encoding import ConfigEncoder
from repro.config.parameter import ParameterKind

from benchmarks.conftest import LINUX_APPLICATIONS, run_fig6_sessions, scaled

N_HELDOUT = 120


def evaluate_predictions(n_heldout: int):
    sessions = run_fig6_sessions()
    summaries = {}
    for application in LINUX_APPLICATIONS:
        wayfinder = sessions[application]["wayfinder"]
        search = wayfinder.algorithm
        model = search.model
        space = wayfinder.space
        simulator = wayfinder.build_session().simulator
        encoder = ConfigEncoder(space)
        rng = random.Random(1000 + len(application))
        default = space.default_configuration()

        configurations = [
            space.mutate_configuration(default, rng, mutation_rate=1.0,
                                       kinds=[ParameterKind.RUNTIME])
            for _ in range(n_heldout)
        ]
        outcomes = [simulator.evaluate(config) for config in configurations]
        actually_crashed = [outcome.crashed for outcome in outcomes]
        actual_performance = [outcome.metric_value if not outcome.crashed else np.nan
                              for outcome in outcomes]
        prediction = model.predict(encoder.encode_batch(configurations))
        summaries[application] = prediction_quality_summary(
            prediction.crash_probability, actually_crashed,
            prediction.performance, actual_performance)
        summaries[application]["crash_fraction"] = float(np.mean(actually_crashed))
    return summaries


def test_table3_prediction_accuracy(benchmark):
    summaries = benchmark.pedantic(evaluate_predictions, args=(scaled(N_HELDOUT),),
                                   rounds=1, iterations=1)

    print()
    print(format_table(
        ("application", "failure accuracy", "run accuracy", "perf. normalized MAE",
         "held-out crash fraction"),
        [(app,
          "{:.3f}".format(summaries[app]["failure_accuracy"]),
          "{:.3f}".format(summaries[app]["run_accuracy"]),
          "{:.3f}".format(summaries[app]["normalized_mae"]),
          "{:.2f}".format(summaries[app]["crash_fraction"]))
         for app in LINUX_APPLICATIONS],
        title="Table 3: DeepTune prediction accuracy on held-out configurations"))

    mean_failure = np.mean([summaries[a]["failure_accuracy"] for a in LINUX_APPLICATIONS])
    # The crash head is usable (paper: 0.74-0.80 failure accuracy) and the
    # failure accuracy is the stronger of the two signals, which is why
    # Wayfinder relies on it rather than on run accuracy.
    assert mean_failure > 0.5
    for application in LINUX_APPLICATIONS:
        assert summaries[application]["normalized_mae"] < 0.6
