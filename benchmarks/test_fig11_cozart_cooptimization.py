"""Figure 11: throughput-memory co-optimization on top of a Cozart baseline.

The kernel is first debloated with the Cozart-style compile-time pass, then
Wayfinder and random search optimize the runtime parameters of the debloated
kernel for the composite score s = mXNorm(throughput) - mXNorm(memory)
(equation 4).  The benchmark reports the score-over-time curves and crash
rates and checks that the learned policy ends above random search, as the
figure shows.
"""

from repro.analysis.reporting import format_series
from repro.analysis.smoothing import downsample
from repro.apps.registry import default_bench_tool_for, get_application
from repro.config.parameter import ParameterKind
from repro.cozart.debloat import CozartDebloater
from repro.deeptune.algorithm import DeepTuneSearch
from repro.platform.metrics import CompositeScoreMetric
from repro.platform.pipeline import BenchmarkingPipeline
from repro.platform.runner import SearchSession
from repro.search.random_search import RandomSearch
from repro.vm.os_model import linux_os_model
from repro.vm.simulator import SystemSimulator

from benchmarks.conftest import scaled

ITERATIONS = 80
SCORE_THROUGHPUT_RANGE = (8000.0, 22000.0)
SCORE_MEMORY_RANGE = (150.0, 450.0)


def run_cooptimization(iterations: int):
    os_model = linux_os_model(version="v4.19", seed=21)
    debloated = CozartDebloater(os_model, seed=21).debloat("nginx")
    application = get_application("nginx")
    bench = default_bench_tool_for("nginx")

    sessions = {}
    for name in ("random", "deeptune"):
        metric = CompositeScoreMetric(throughput_range=SCORE_THROUGHPUT_RANGE,
                                      memory_range=SCORE_MEMORY_RANGE)
        simulator = SystemSimulator(os_model, application, bench, seed=21)
        baseline_outcome = simulator.evaluate(debloated.baseline)
        baseline_score = metric.score(baseline_outcome.metric_value,
                                      baseline_outcome.memory_mb)
        pipeline = BenchmarkingPipeline(simulator, metric)
        if name == "deeptune":
            algorithm = DeepTuneSearch(debloated.reduced_space, seed=21,
                                       favored_kinds=[ParameterKind.RUNTIME])
        else:
            algorithm = RandomSearch(debloated.reduced_space, seed=21,
                                     favored_kinds=[ParameterKind.RUNTIME])
        result = SearchSession(pipeline, algorithm).run(iterations=iterations)
        sessions[name] = {
            "result": result,
            "baseline_score": baseline_score,
            "baseline_outcome": baseline_outcome,
        }
    return sessions, debloated


def test_fig11_cozart_cooptimization(benchmark):
    sessions, debloated = benchmark.pedantic(run_cooptimization, args=(scaled(ITERATIONS),),
                                             rounds=1, iterations=1)

    print()
    print("Cozart debloating disabled {} compile-time options".format(
        debloated.disabled_count))
    for name, data in sessions.items():
        result = data["result"]
        series = downsample(result.history.best_so_far_series(), max_points=12)
        print(format_series(series, x_label="time (s)", y_label="best score",
                            title="Figure 11 ({}): throughput-memory score".format(name),
                            max_points=12))
        print("  {}: baseline score={:.2f}, best score={:.2f}, crash rate={:.0%}".format(
            name, data["baseline_score"], result.best_objective or float("nan"),
            result.crash_rate))

    deeptune = sessions["deeptune"]["result"]
    random_result = sessions["random"]["result"]
    assert debloated.disabled_count > 10
    # The learned policy improves on the Cozart baseline score...
    assert deeptune.best_objective >= sessions["deeptune"]["baseline_score"]
    # ...and ends at least as high as random search with the same budget.
    assert deeptune.best_objective >= random_result.best_objective - 0.02
    # Crash behaviour stays reasonable on the debloated kernel.
    assert deeptune.crash_rate <= random_result.crash_rate + 0.15
