"""Microbenchmarks for the search-loop hot paths.

The paper's headline scalability claim (Figures 7/8) is that DeepTune's
per-iteration cost stays *flat* as the search progresses.  This suite pins
that property at the implementation level and tracks it across PRs:

* batch encoding of a full candidate pool over the experiment-scale Linux
  space must be at least 5x faster than the per-configuration reference path
  (and bit-identical to it — correctness is asserted in
  ``tests/test_encoding_fastpath.py``);
* DeepTune's propose+observe time over a long run must not grow: the median
  of the last quartile of iterations is bounded by 1.5x the median of the
  first quartile;
* the Unicorn baseline must *keep* its deliberately super-linear cost profile
  (it recomputes the causal graph from the full history every iteration),
  because the Figure 7 contrast depends on it.

Every test appends its measurements to ``BENCH_hotpaths.json`` at the repo
root so future PRs can compare trajectories.  Set ``REPRO_BENCH_SMOKE=1``
(CI) to run reduced budgets with relaxed thresholds.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.config.encoding import ConfigEncoder
from repro.config.parameter import IntParameter, ParameterKind
from repro.config.space import ConfigSpace
from repro.deeptune.algorithm import DeepTuneSearch
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.platform.metrics import ThroughputMetric
from repro.search.unicorn import UnicornSearch
from repro.vm.failures import FailureStage
from repro.vm.os_model import linux_os_model

ARTIFACT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_hotpaths.json"
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: candidate-pool size the encoding benchmark encodes per batch (the DeepTune
#: default pool).
POOL_SIZE = 192

#: minimum speedup of the columnar batch encoder over the reference path.
#: Relaxed under smoke budgets: shared CI runners have noisy clocks and the
#: smoke run exists to catch structural regressions, not to certify the
#: full-fidelity number (locally the fast path measures ~7x).
ENCODING_SPEEDUP_FLOOR = 3.0 if SMOKE else 5.0

#: trials for the flat-per-iteration check.
FLAT_TRIALS = 60 if SMOKE else 200
#: allowed last-quartile / first-quartile mean ratio (relaxed under smoke
#: budgets, where quartiles are small and noise dominates).
FLAT_RATIO_BOUND = 2.0 if SMOKE else 1.5

UNICORN_ITERATIONS = 16 if SMOKE else 30

#: trials for the batched-vs-sequential execution benchmark.
BATCH_TRIALS = 24 if SMOKE else 60
#: system-under-test workers in the batched run.
BATCH_WORKERS = 4

#: trials ingested by the columnar-store benchmark (10^5 at full budget).
STORE_TRIALS = 5_000 if SMOKE else 100_000
#: ingest blocks — one checkpoint per block, so new-trials-per-checkpoint is
#: constant and any growth in checkpoint time would expose O(history) work.
STORE_BLOCKS = 50 if SMOKE else 100
#: allowed last/first quartile ratio of checkpoint write time (must be O(new
#: trials): constant per block).  Relaxed under smoke budgets where blocks
#: are small enough for filesystem noise to dominate.
CHECKPOINT_RATIO_BOUND = 3.0 if SMOKE else 1.5

#: query rows for the forest batch-prediction benchmark.
FOREST_QUERY_ROWS = 512 if SMOKE else 4096
#: minimum speedup of vectorized forest prediction over the per-row oracle.
FOREST_SPEEDUP_FLOOR = 2.0 if SMOKE else 5.0

#: trial budget per run in the warm-start transfer benchmark.
WARM_TRIALS = 30 if SMOKE else 80

#: synthetic campaign shape for the report-aggregation benchmark: 2
#: algorithms x 2 seeds, each experiment REPORT_TRIALS trials (10^5 total
#: at full budget).
REPORT_EXPERIMENTS = 4
REPORT_TRIALS = 2_000 if SMOKE else 25_000
#: minimum speedup of the streaming columnar report path over the
#: materializing (record-dict) reader.  Relaxed under smoke budgets where
#: fixed per-experiment overheads dominate the small stores.
REPORT_SPEEDUP_FLOOR = 2.0 if SMOKE else 5.0
#: compressed payload sidecar must be at most this fraction of its raw
#: (uncompressed JSONL) size.
SIDECAR_COMPRESSION_CEILING = 0.5


def _record_artifact(section: str, payload: Dict) -> None:
    """Merge one benchmark section into the BENCH_hotpaths.json artifact."""
    data: Dict = {}
    if os.path.exists(ARTIFACT_PATH):
        try:
            with open(ARTIFACT_PATH) as handle:
                data = json.load(handle)
        except (ValueError, OSError):
            data = {}
    payload = dict(payload, smoke=SMOKE)
    data[section] = payload
    with open(ARTIFACT_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _quartile_ratio(series: List[float]) -> Tuple[float, float, float]:
    """(first-quartile median, last-quartile median, ratio).

    Medians rather than means: a single GC pause or scheduler hiccup in a
    48-sample quartile would otherwise dominate the flatness statistic.
    """
    quartile = max(1, len(series) // 4)
    first = float(np.median(series[:quartile]))
    last = float(np.median(series[-quartile:]))
    return first, last, last / max(first, 1e-12)


# -- batch encoding ---------------------------------------------------------------

def test_batch_encoding_speedup():
    """Vectorized encode_batch beats the per-config reference path >= 5x."""
    space = linux_os_model(version="v4.19", seed=7).space
    encoder = ConfigEncoder(space, cache_size=0)  # cold path, no cache assist
    import random

    rng = random.Random(42)
    pool = [space.sample_configuration(rng) for _ in range(POOL_SIZE)]
    repeats = 3 if SMOKE else 5

    def best_of(fn) -> float:
        timings = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - started)
        return min(timings)

    reference_s = best_of(lambda: [encoder.encode_reference(c) for c in pool])
    batch_s = best_of(lambda: encoder.encode_batch(pool))
    speedup = reference_s / max(batch_s, 1e-12)

    _record_artifact("batch_encoding", {
        "space": space.name,
        "parameters": len(space),
        "encoded_width": encoder.width,
        "pool_size": POOL_SIZE,
        "reference_ms": reference_s * 1e3,
        "batch_ms": batch_s * 1e3,
        "speedup": speedup,
    })
    print("\nbatch encoding: reference {:.1f} ms, batch {:.1f} ms, x{:.1f}".format(
        reference_s * 1e3, batch_s * 1e3, speedup))
    assert speedup >= ENCODING_SPEEDUP_FLOOR, (
        "batch encoding speedup x{:.1f} below the x{:.1f} floor".format(
            speedup, ENCODING_SPEEDUP_FLOOR))


def test_vector_cache_makes_reencoding_free():
    """A second encode of the same pool is served from the LRU vector cache."""
    space = linux_os_model(version="v4.19", seed=7).space
    encoder = ConfigEncoder(space)
    import random

    rng = random.Random(43)
    pool = [space.sample_configuration(rng) for _ in range(POOL_SIZE)]
    cold = encoder.encode_batch(pool)
    started = time.perf_counter()
    warm = encoder.encode_batch(pool)
    warm_s = time.perf_counter() - started
    assert np.array_equal(cold, warm)
    assert encoder.cache_hits >= POOL_SIZE
    _record_artifact("vector_cache", {
        "pool_size": POOL_SIZE,
        "warm_ms": warm_s * 1e3,
        "cache_hits": encoder.cache_hits,
        "cache_misses": encoder.cache_misses,
    })


# -- flat per-iteration DeepTune loop -----------------------------------------------

def _flat_space(n_parameters: int = 24) -> ConfigSpace:
    parameters = [
        IntParameter("knob_{:02d}".format(index), ParameterKind.RUNTIME,
                     default=64, minimum=0, maximum=4096,
                     log_scale=index % 3 == 0)
        for index in range(n_parameters)
    ]
    return ConfigSpace(parameters, name="hotpath-flat")


def _flat_objective(configuration) -> float:
    values = np.array([configuration["knob_{:02d}".format(i)] for i in range(24)],
                      dtype=np.float64) / 4096.0
    return float(100.0 * np.exp(-np.sum((values[:6] - 0.3) ** 2)) + 20.0 * values[6])


def test_deeptune_per_iteration_flat():
    """Propose+observe time stays flat over a long DeepTune run."""
    space = _flat_space()
    search = DeepTuneSearch(space, seed=5, warmup_iterations=5,
                            candidate_pool_size=64,
                            training_steps_per_iteration=8, batch_size=32)
    history = ExplorationHistory(ThroughputMetric())
    times: List[float] = []
    clock = 0.0
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for index in range(FLAT_TRIALS):
            started = time.perf_counter()
            configuration = search.propose(history)
            record = TrialRecord(
                index=index, configuration=configuration,
                objective=_flat_objective(configuration), crashed=False,
                failure_stage=FailureStage.NONE, failure_reason="",
                metric_value=None, memory_mb=None, duration_s=60.0,
                started_at_s=clock)
            clock += 60.0
            history.add(record)
            search.observe(record)
            times.append(time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()

    # Warmup iterations propose by cheap random sampling; exclude them so the
    # quartile comparison sees the steady-state model-guided loop only.
    steady = times[search.warmup_iterations:]
    first, last, ratio = _quartile_ratio(steady)
    _record_artifact("deeptune_flat_iteration", {
        "trials": FLAT_TRIALS,
        "first_quartile_median_ms": first * 1e3,
        "last_quartile_median_ms": last * 1e3,
        "ratio": ratio,
        "bound": FLAT_RATIO_BOUND,
        "mean_iteration_ms": float(np.mean(steady)) * 1e3,
    })
    print("\ndeeptune flatness: first {:.2f} ms, last {:.2f} ms, ratio {:.2f}".format(
        first * 1e3, last * 1e3, ratio))
    assert ratio <= FLAT_RATIO_BOUND, (
        "per-iteration time grew x{:.2f} over {} trials (bound {:.2f})".format(
            ratio, FLAT_TRIALS, FLAT_RATIO_BOUND))


# -- Unicorn baseline keeps its super-linear profile ---------------------------------

def test_unicorn_superlinear_profile_preserved():
    """The Figure 7 contrast requires Unicorn's cost to keep growing."""
    parameters = [
        IntParameter("option_{:02d}".format(index), ParameterKind.RUNTIME,
                     default=50, minimum=0, maximum=100)
        for index in range(12)
    ]
    space = ConfigSpace(parameters, name="unicorn-hotpath")
    search = UnicornSearch(space, seed=9, candidate_pool_size=16, top_k=4)
    history = ExplorationHistory(ThroughputMetric())
    times: List[float] = []
    clock = 0.0
    for index in range(UNICORN_ITERATIONS):
        started = time.perf_counter()
        configuration = search.propose(history)
        objective = float(sum(configuration["option_{:02d}".format(i)]
                              for i in range(4)))
        record = TrialRecord(
            index=index, configuration=configuration, objective=objective,
            crashed=False, failure_stage=FailureStage.NONE, failure_reason="",
            metric_value=None, memory_mb=None, duration_s=60.0,
            started_at_s=clock)
        clock += 60.0
        history.add(record)
        search.observe(record)
        times.append(time.perf_counter() - started)

    # Character check 1: the causal graph is relearned from the FULL history,
    # so the recorded sample counts must march up with the iteration index.
    samples = [stats["samples"] for stats in search.iteration_stats]
    assert samples == sorted(samples)
    # propose() runs before the iteration's own observe(), so the last relearn
    # saw every observation but the final one.
    assert samples[-1] == float(UNICORN_ITERATIONS - 1)
    widths = {stats["features"] for stats in search.iteration_stats}
    assert len(widths) == 1  # encoded width never changes mid-run
    # Character check 2: per-iteration time grows super-linearly (the
    # bootstrap resamples scale with the history length).
    first, last, ratio = _quartile_ratio(times)
    _record_artifact("unicorn_superlinear", {
        "iterations": UNICORN_ITERATIONS,
        "first_quartile_median_ms": first * 1e3,
        "last_quartile_median_ms": last * 1e3,
        "ratio": ratio,
        "final_history_samples": samples[-1],
    })
    print("\nunicorn growth: first {:.2f} ms, last {:.2f} ms, ratio {:.2f}".format(
        first * 1e3, last * 1e3, ratio))
    assert ratio > 2.0, (
        "Unicorn per-iteration cost flattened (x{:.2f}); the Figure 7 "
        "baseline contrast is broken".format(ratio))


# -- batched multi-worker execution ---------------------------------------------------

def test_batched_execution_compresses_time_to_best():
    """A 4-worker fleet beats the sequential loop on the virtual time axis.

    Runs the same DeepTune search budget twice — ``workers=1, batch_size=1``
    (the historical loop) and ``workers=4, batch_size=4`` — and records
    virtual elapsed time, virtual time-to-best, and real wall-clock per
    iteration, so batched-execution trajectories can be compared across PRs.
    """
    from repro.core.wayfinder import Wayfinder

    def run(workers, batch_size):
        wayfinder = Wayfinder.for_linux(
            application="nginx", metric="throughput", seed=21,
            algorithm="deeptune", favor="runtime",
            space_options={"extra_compile": 20, "extra_runtime": 12,
                           "extra_boot": 4},
            workers=workers, batch_size=batch_size,
            algorithm_options={"warmup_iterations": 6,
                               "candidate_pool_size": 64,
                               "training_steps_per_iteration": 8},
        )
        started = time.perf_counter()
        result = wayfinder.specialize(iterations=BATCH_TRIALS)
        wall_s = time.perf_counter() - started
        return result, wall_s

    sequential, sequential_wall_s = run(1, 1)
    batched, batched_wall_s = run(BATCH_WORKERS, BATCH_WORKERS)

    assert sequential.iterations == BATCH_TRIALS
    assert batched.iterations == BATCH_TRIALS
    virtual_speedup = sequential.total_time_s / max(batched.total_time_s, 1e-9)
    _record_artifact("batched_execution", {
        "iterations": BATCH_TRIALS,
        "workers": BATCH_WORKERS,
        "batch_size": BATCH_WORKERS,
        "sequential_elapsed_s": sequential.total_time_s,
        "batched_elapsed_s": batched.total_time_s,
        "virtual_speedup": virtual_speedup,
        "sequential_time_to_best_s": sequential.time_to_best_s,
        "batched_time_to_best_s": batched.time_to_best_s,
        "sequential_best_objective": sequential.best_performance,
        "batched_best_objective": batched.best_performance,
        "sequential_wall_ms_per_iteration": sequential_wall_s * 1e3 / BATCH_TRIALS,
        "batched_wall_ms_per_iteration": batched_wall_s * 1e3 / BATCH_TRIALS,
    })
    print("\nbatched execution: sequential {:.0f} s, {} workers {:.0f} s "
          "(virtual x{:.2f}), wall {:.1f} / {:.1f} ms per iteration".format(
              sequential.total_time_s, BATCH_WORKERS, batched.total_time_s,
              virtual_speedup, sequential_wall_s * 1e3 / BATCH_TRIALS,
              batched_wall_s * 1e3 / BATCH_TRIALS))
    # The fleet must compress virtual wall-clock: the whole point of the
    # batched architecture is cutting time-to-best on the paper's time axis.
    assert batched.total_time_s < sequential.total_time_s, (
        "4-worker batched run ({:.0f} s) did not beat the sequential run "
        "({:.0f} s) on the virtual clock".format(
            batched.total_time_s, sequential.total_time_s))


# -- asynchronous (barrier-free) execution --------------------------------------------

def test_async_execution_compresses_time_to_best():
    """Async scheduling beats the batch barrier on a heterogeneous workload.

    Runs the same random-search budget twice at ``workers=4`` — ``batch``
    (barrier per round: workers idle behind the round's straggler) and
    ``async`` (each worker receives its next proposal the moment it finishes)
    — on a workload whose per-trial durations are strongly heterogeneous:
    skip-build image reuse makes runtime-only variants far cheaper than cold
    builds, and crashes cut trials short at different stages.  Random search
    draws an (essentially) identical trial stream in both modes, so the
    comparison isolates the *scheduling policy*: the same best configuration
    is found at the same trial position, and any time-to-best difference is
    pure barrier idle time.  Records virtual elapsed time, virtual
    time-to-best, and per-worker utilization so async-vs-batch trajectories
    can be compared across PRs; asserts the async schedule's virtual
    time-to-best does not lose to the barrier's.
    """
    from repro.core.wayfinder import Wayfinder

    def run(execution):
        wayfinder = Wayfinder.for_linux(
            application="nginx", metric="throughput", seed=21,
            algorithm="random", favor="runtime",
            space_options={"extra_compile": 20, "extra_runtime": 12,
                           "extra_boot": 4},
            workers=BATCH_WORKERS, batch_size=BATCH_WORKERS,
            execution=execution,
        )
        started = time.perf_counter()
        result = wayfinder.specialize(iterations=BATCH_TRIALS)
        wall_s = time.perf_counter() - started
        return result, wall_s

    batch, batch_wall_s = run("batch")
    asynchronous, async_wall_s = run("async")

    assert batch.iterations == BATCH_TRIALS
    assert asynchronous.iterations == BATCH_TRIALS
    batch_utilization = batch.summary()["worker_utilization"]
    async_utilization = asynchronous.summary()["worker_utilization"]
    _record_artifact("async_execution", {
        "iterations": BATCH_TRIALS,
        "workers": BATCH_WORKERS,
        "batch_elapsed_s": batch.total_time_s,
        "async_elapsed_s": asynchronous.total_time_s,
        "virtual_speedup": batch.total_time_s / max(asynchronous.total_time_s,
                                                    1e-9),
        "batch_time_to_best_s": batch.time_to_best_s,
        "async_time_to_best_s": asynchronous.time_to_best_s,
        "batch_best_objective": batch.best_performance,
        "async_best_objective": asynchronous.best_performance,
        "batch_worker_utilization": batch_utilization,
        "async_worker_utilization": async_utilization,
        "batch_wall_ms_per_iteration": batch_wall_s * 1e3 / BATCH_TRIALS,
        "async_wall_ms_per_iteration": async_wall_s * 1e3 / BATCH_TRIALS,
    })
    print("\nasync execution: batch {:.0f} s (ttb {:.0f} s, util {:.0%}), "
          "async {:.0f} s (ttb {:.0f} s, util {:.0%})".format(
              batch.total_time_s, batch.time_to_best_s or 0.0,
              float(np.mean(batch_utilization)),
              asynchronous.total_time_s, asynchronous.time_to_best_s or 0.0,
              float(np.mean(async_utilization))))
    assert asynchronous.total_time_s < batch.total_time_s, (
        "async run ({:.0f} s) did not beat the batch barrier ({:.0f} s) on "
        "the virtual clock".format(asynchronous.total_time_s,
                                   batch.total_time_s))
    assert asynchronous.time_to_best_s <= batch.time_to_best_s, (
        "async virtual time-to-best ({:.0f} s) lost to batch ({:.0f} s)".format(
            asynchronous.time_to_best_s, batch.time_to_best_s))
    assert (float(np.mean(async_utilization))
            > float(np.mean(batch_utilization))), (
        "async scheduling did not raise fleet utilization")


# -- columnar million-trial store ------------------------------------------------------

class _StoreSession:
    """The minimal session surface ``SessionCheckpointer`` serializes."""

    class _State:
        def export_state(self):
            return {"bench": True}

    def __init__(self, history):
        self.history = history
        self.algorithm = self._State()
        self.backend = self._State()
        self.search_overhead_s = 0.0
        self.batches_run = 0
        self.checkpoint_every = 1


def test_million_trial_store(tmp_path):
    """Ingest + checkpoint cost stays flat across a 10^5-trial session.

    Splits ``STORE_TRIALS`` into ``STORE_BLOCKS`` equal blocks; each block
    adds its records to the history and writes a full resumable checkpoint.
    Because new-trials-per-checkpoint is constant, both the per-block ingest
    time and the checkpoint write time must stay flat — any O(history)
    component (the old inline-JSON manifest rewrote every record on every
    save) shows up as quartile growth.
    """
    from repro.core.spec import ExperimentSpec
    from repro.platform.results import (
        ResultsStore,
        SessionCheckpointer,
        load_checkpoint_file,
    )

    space = _flat_space()
    import random

    rng = random.Random(17)
    # cycle a pre-sampled pool so record construction stays cheap + constant
    pool = [space.sample_configuration(rng) for _ in range(64)]
    history = ExplorationHistory(ThroughputMetric())
    spec = ExperimentSpec(
        application="nginx", metric="throughput", algorithm="random",
        seed=17, iterations=STORE_TRIALS, name="bench-store")
    store = ResultsStore(str(tmp_path))
    checkpointer = SessionCheckpointer(store, "bench-store", spec,
                                       _StoreSession(history))

    block = STORE_TRIALS // STORE_BLOCKS
    ingest_times: List[float] = []
    checkpoint_times: List[float] = []
    index = 0
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(STORE_BLOCKS):
            started = time.perf_counter()
            for _ in range(block):
                crashed = index % 10 == 0
                history.add(TrialRecord(
                    index=index, configuration=pool[index % len(pool)],
                    objective=None if crashed else 100.0 + index % 7,
                    crashed=crashed,
                    failure_stage=FailureStage.RUN if crashed
                    else FailureStage.NONE,
                    failure_reason="boom" if crashed else "",
                    metric_value=None, memory_mb=None, duration_s=60.0,
                    started_at_s=60.0 * index, worker=index % 4))
                index += 1
            checkpoint_started = time.perf_counter()
            checkpointer.save()
            now = time.perf_counter()
            checkpoint_times.append(now - checkpoint_started)
            ingest_times.append(now - started)
    finally:
        if gc_was_enabled:
            gc.enable()
        checkpointer.close()

    # the final checkpoint round-trips the full session
    document = load_checkpoint_file(store.checkpoint_path("bench-store"))
    assert document["trials"] == STORE_TRIALS
    assert len(document["records"]) == STORE_TRIALS

    first, last, flat_ratio = _quartile_ratio(ingest_times)
    ckpt_first, ckpt_last, checkpoint_ratio = _quartile_ratio(checkpoint_times)
    _record_artifact("million_trial_store", {
        "trials": STORE_TRIALS,
        "blocks": STORE_BLOCKS,
        "trials_per_checkpoint": block,
        "first_quartile_block_ms": first * 1e3,
        "last_quartile_block_ms": last * 1e3,
        "flat_ratio": flat_ratio,
        "first_quartile_checkpoint_ms": ckpt_first * 1e3,
        "last_quartile_checkpoint_ms": ckpt_last * 1e3,
        "checkpoint_time_ratio": checkpoint_ratio,
        "columns_bytes": os.path.getsize(
            store.checkpoint_trial_paths("bench-store")[0]),
        "payloads_bytes": os.path.getsize(
            store.checkpoint_trial_paths("bench-store")[1]),
    })
    print("\nmillion-trial store: block {:.2f} -> {:.2f} ms (x{:.2f}), "
          "checkpoint {:.2f} -> {:.2f} ms (x{:.2f})".format(
              first * 1e3, last * 1e3, flat_ratio,
              ckpt_first * 1e3, ckpt_last * 1e3, checkpoint_ratio))
    assert flat_ratio <= FLAT_RATIO_BOUND, (
        "per-block ingest time grew x{:.2f} over {} trials "
        "(bound {:.2f})".format(flat_ratio, STORE_TRIALS, FLAT_RATIO_BOUND))
    assert checkpoint_ratio <= CHECKPOINT_RATIO_BOUND, (
        "checkpoint write time grew x{:.2f} with constant new-trial count — "
        "an O(history) component crept back in (bound {:.2f})".format(
            checkpoint_ratio, CHECKPOINT_RATIO_BOUND))


# -- streaming campaign report ---------------------------------------------------------

def _report_campaign(directory: str) -> None:
    """Write a synthetic completed campaign: manifest + per-experiment stores."""
    import random

    from repro.platform.campaign_runner import (MANIFEST_FORMAT_VERSION,
                                                MANIFEST_NAME)
    from repro.platform.results import ResultsStore

    space = _flat_space()
    rng = random.Random(31)
    pool = [space.sample_configuration(rng) for _ in range(64)]
    store = ResultsStore(directory)
    entries = []
    experiment = 0
    for algorithm in ("deeptune", "random"):
        for seed in (1, 2):
            name = "bench-report-{:02d}".format(experiment)
            history = ExplorationHistory(ThroughputMetric())
            for index in range(REPORT_TRIALS):
                crashed = (index + experiment) % 10 == 0
                history.add(TrialRecord(
                    index=index, configuration=pool[index % len(pool)],
                    objective=None if crashed
                    else 100.0 + ((index * 37 + experiment) % 100) / 10.0,
                    crashed=crashed,
                    failure_stage=FailureStage.RUN if crashed
                    else FailureStage.NONE,
                    failure_reason="boom" if crashed else "",
                    metric_value=None, memory_mb=None,
                    duration_s=60.0 + (index % 9) * 1.5,
                    started_at_s=60.0 * index, worker=index % 4))
            store.save_history(name, history)
            entries.append({
                "name": name,
                "spec": {"name": name, "application": "nginx",
                         "algorithm": algorithm, "seed": seed},
                "status": "complete", "attempts": 1, "claims": 1,
                "lease": None, "retry_at": None,
                "summary": history.summary(), "error": None,
            })
            experiment += 1
    manifest = {
        "kind": "campaign",
        "format_version": MANIFEST_FORMAT_VERSION,
        "campaign": {"name": "bench-report"},
        "invocation": None,
        "state": "complete",
        "experiments": entries,
    }
    with open(os.path.join(directory, MANIFEST_NAME), "w") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")


def _materialized_report_document(directory: str) -> Dict:
    """The pre-columnar reader: record dicts materialized for every trial."""
    from repro.analysis import campaign_report as cr

    results = cr.load_campaign(directory)
    series = []
    for algorithm in results.axis_values("algorithm"):
        points = cr.per_iteration_cost_series_reference(results, algorithm)
        if points:
            series.append({"algorithm": algorithm,
                           "points": [[index, cost] for index, cost in points]})
    return {
        "campaign": results.name,
        "experiments": len(results.experiments),
        "status": results.status_counts(),
        "best_objective": cr.best_objective_document(results),
        "time_to_best": cr.time_to_best_document(results),
        "per_iteration_cost": series,
        "warm_start": cr.warm_start_document(results),
        "failed": cr.failed_experiments_document(results),
    }


def test_report_aggregation_streams_columns(tmp_path):
    """The streaming report tier beats the materializing reader >= 5x.

    Builds a completed 4-experiment campaign (10^5 trials total at full
    budget), then times ``campaign_report_document`` — which streams
    ``duration_s``/``index`` off the columnar mmap — against the retained
    materializing oracle that JSON-decodes every stored payload.  The two
    documents must serialize to identical bytes (the same pin
    ``tests/test_storage_compat.py`` applies across store formats), and the
    block-compressed payload sidecar must stay at or under half its raw
    size.
    """
    from repro.analysis.campaign_report import campaign_report_document
    from repro.platform.results import ResultsStore, open_history_view

    directory = str(tmp_path / "campaign")
    os.makedirs(directory)
    _report_campaign(directory)

    def best_of(fn, repeats: int) -> Tuple[float, Dict]:
        timings = []
        document: Dict = {}
        for _ in range(repeats):
            started = time.perf_counter()
            document = fn()
            timings.append(time.perf_counter() - started)
        return min(timings), document

    # every call loads the campaign fresh — both paths pay manifest +
    # open costs, the difference is pure aggregation strategy.
    streaming_s, streaming = best_of(
        lambda: campaign_report_document(directory), repeats=3)
    materialized_s, materialized = best_of(
        lambda: _materialized_report_document(directory), repeats=1)
    assert (json.dumps(streaming, sort_keys=True)
            == json.dumps(materialized, sort_keys=True)), (
        "streaming report diverged from the materializing reader")
    speedup = materialized_s / max(streaming_s, 1e-12)

    store = ResultsStore(directory)
    raw_bytes = 0
    compressed_bytes = 0
    for name in store.list_histories():
        if not name.startswith("bench-report-"):
            continue  # the campaign manifest itself lists as a .json entry
        view = open_history_view(store.history_path(name))
        columns = view.columns
        if len(columns):
            raw_bytes += int(columns["payload_offset"][-1]
                             + columns["payload_length"][-1])
        compressed_bytes += os.path.getsize(store.history_trial_paths(name)[1])
    ratio = compressed_bytes / max(raw_bytes, 1)

    _record_artifact("report_aggregation", {
        "experiments": REPORT_EXPERIMENTS,
        "trials_total": REPORT_EXPERIMENTS * REPORT_TRIALS,
        "materialized_ms": materialized_s * 1e3,
        "streaming_ms": streaming_s * 1e3,
        "speedup": speedup,
        "floor": REPORT_SPEEDUP_FLOOR,
    })
    _record_artifact("payload_sidecar", {
        "raw_bytes": raw_bytes,
        "compressed_bytes": compressed_bytes,
        "ratio": ratio,
        "ceiling": SIDECAR_COMPRESSION_CEILING,
    })
    print("\nreport aggregation: materialized {:.1f} ms, streaming {:.1f} ms "
          "(x{:.1f}); sidecar {:.0f} KiB -> {:.0f} KiB (x{:.2f})".format(
              materialized_s * 1e3, streaming_s * 1e3, speedup,
              raw_bytes / 1024.0, compressed_bytes / 1024.0, ratio))
    assert speedup >= REPORT_SPEEDUP_FLOOR, (
        "streaming report only x{:.2f} over the materializing reader "
        "(floor {:.1f})".format(speedup, REPORT_SPEEDUP_FLOOR))
    assert ratio <= SIDECAR_COMPRESSION_CEILING, (
        "compressed sidecar is x{:.2f} of raw (ceiling {:.2f})".format(
            ratio, SIDECAR_COMPRESSION_CEILING))


# -- vectorized forest scoring ---------------------------------------------------------

def test_forest_scoring():
    """Flattened-tree batch prediction beats the per-row oracle >= 5x."""
    from repro.deeptune.forest import RandomForestRegressor

    rng = np.random.default_rng(23)
    train = rng.uniform(size=(400, 16))
    targets = (train[:, 0] * 3.0 - train[:, 1] ** 2
               + np.sin(train[:, 2] * 6.0) + rng.normal(scale=0.05, size=400))
    forest = RandomForestRegressor(n_trees=20, max_depth=7,
                                   min_samples_leaf=2, seed=23)
    forest.fit(train, targets)
    queries = rng.uniform(size=(FOREST_QUERY_ROWS, 16))
    repeats = 3 if SMOKE else 5

    def best_of(fn) -> float:
        timings = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - started)
        return min(timings)

    batch = forest.predict(queries)
    reference = forest.predict_reference(queries)
    assert np.array_equal(batch, reference)  # bit-identical, not just close

    batch_s = best_of(lambda: forest.predict(queries))
    reference_s = best_of(lambda: forest.predict_reference(queries))
    speedup = reference_s / max(batch_s, 1e-12)
    _record_artifact("forest_scoring", {
        "trees": 20,
        "max_depth": 7,
        "train_rows": 400,
        "query_rows": FOREST_QUERY_ROWS,
        "reference_ms": reference_s * 1e3,
        "batch_ms": batch_s * 1e3,
        "speedup": speedup,
    })
    print("\nforest scoring: reference {:.1f} ms, batch {:.1f} ms, x{:.1f}".format(
        reference_s * 1e3, batch_s * 1e3, speedup))
    assert speedup >= FOREST_SPEEDUP_FLOOR, (
        "forest batch prediction speedup x{:.1f} below the x{:.1f} floor".format(
            speedup, FOREST_SPEEDUP_FLOOR))


# -- transfer-learning warm start ------------------------------------------------------

def test_warm_start_transfer(tmp_path):
    """Zoo warm-start does not lose to cold start on a held-out application.

    Trains DeepTune on two donor applications over the same Linux space
    (same version/seed/space_options, so the space fingerprints match),
    publishes both into a surrogate zoo, then tunes a held-out third
    application twice with identical budgets: cold and warm-started from
    the zoo's nearest donor.  The virtual clock is deterministic, so the
    warm run's time-to-best must not exceed the cold run's — the paper's
    Figure 5 transfer claim at benchmark scale.
    """
    from repro.core.wayfinder import Wayfinder
    from repro.deeptune.importance import parameter_importance
    from repro.deeptune.transfer import publish_zoo_entry

    space_options = {"extra_compile": 20, "extra_runtime": 12, "extra_boot": 4}
    # no warmup_iterations key: the cold run keeps the default random
    # warmup, the warm run skips it (the paper's TL configuration).
    algorithm_options = {"candidate_pool_size": 64,
                         "training_steps_per_iteration": 8}
    seed = 21

    def run(application, warm_start=None):
        wayfinder = Wayfinder.for_linux(
            application=application, metric="throughput", seed=seed,
            algorithm="deeptune", favor="runtime",
            space_options=space_options,
            algorithm_options=algorithm_options, warm_start=warm_start)
        result = wayfinder.specialize(iterations=WARM_TRIALS)
        return wayfinder, result

    zoo = str(tmp_path / "zoo")
    for donor_app in ("nginx", "redis"):
        wayfinder, result = run(donor_app)
        encoder = wayfinder.algorithm.encoder
        features, objectives, _ = result.history.training_arrays(encoder)
        entry = publish_zoo_entry(
            zoo, donor_app, encoder, wayfinder.algorithm.model,
            parameter_importance(encoder, features, objectives),
            metadata={"experiment": "bench-" + donor_app})
        assert entry is not None

    cold_wayfinder, cold = run("sqlite")
    assert cold_wayfinder.warm_start is None
    # min_similarity=0.0 pins donor adoption: the benchmark certifies the
    # transfer effect, not the (separately tested) similarity gate.
    warm_wayfinder, warm = run("sqlite",
                               warm_start={"zoo": zoo, "min_similarity": 0.0})
    assert warm_wayfinder.warm_start is not None
    assert warm_wayfinder.algorithm.warmup_iterations == 0

    _record_artifact("warm_start_transfer", {
        "trials": WARM_TRIALS,
        "target": "sqlite",
        "donor": warm_wayfinder.warm_start["donor"],
        "similarity": warm_wayfinder.warm_start["similarity"],
        "donor_observations": warm_wayfinder.warm_start["observations"],
        "cold_time_to_best_s": cold.time_to_best_s,
        "warm_time_to_best_s": warm.time_to_best_s,
        "cold_best_objective": cold.best_performance,
        "warm_best_objective": warm.best_performance,
    })
    print("\nwarm start: cold ttb {:.0f} s, warm ttb {:.0f} s "
          "(donor {}, similarity {:.3f})".format(
              cold.time_to_best_s or 0.0, warm.time_to_best_s or 0.0,
              warm_wayfinder.warm_start["donor"],
              warm_wayfinder.warm_start["similarity"]))
    assert warm.time_to_best_s <= cold.time_to_best_s, (
        "warm-started time-to-best ({:.0f} s) lost to cold start "
        "({:.0f} s)".format(warm.time_to_best_s, cold.time_to_best_s))
