"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced but
representative budget (the real experiments take hours of kernel builds and
benchmark runs; the simulated substrate reproduces their structure in
seconds).  Budgets scale with the ``REPRO_BENCH_SCALE`` environment variable:
``REPRO_BENCH_SCALE=3`` triples every iteration budget for higher-fidelity
curves, at the cost of proportionally longer benchmark runs.

The expensive search sessions behind Figure 6 / Table 2 / Table 3 / Figure 8
are executed once per pytest session and cached, so the dependent benchmarks
report different views of the same data instead of re-running the search.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import pytest

from repro import Wayfinder
from repro.deeptune.transfer import transfer_model


def bench_scale() -> float:
    """Read the global budget multiplier from the environment."""
    try:
        return max(0.1, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


def scaled(iterations: int) -> int:
    """Scale an iteration budget by REPRO_BENCH_SCALE (minimum of 10)."""
    return max(10, int(round(iterations * bench_scale())))


#: Applications of the main Linux evaluation (§4.1), in paper order.
LINUX_APPLICATIONS = ("nginx", "redis", "sqlite", "npb")

#: Iterations per search session in the Figure 6 reproduction (the paper uses
#: 250; the default here keeps the whole benchmark suite in the minutes range).
FIG6_ITERATIONS = 80

_fig6_cache: Optional[Dict] = None


def linux_wayfinder(application: str, algorithm: str, seed: int = 101,
                    algorithm_options: Optional[dict] = None) -> Wayfinder:
    """Build the standard §4.1 Wayfinder instance for *application*."""
    return Wayfinder.for_linux(
        application=application,
        metric="auto",
        version="v4.19",
        algorithm=algorithm,
        favor="runtime",
        seed=seed,
        algorithm_options=algorithm_options,
    )


def run_fig6_sessions() -> Dict:
    """Run (once) the random / DeepTune / DeepTune+TL sessions for every app.

    Returns a mapping ``app -> {"random": SearchResult, "deeptune": SearchResult,
    "tl": SearchResult, "wayfinder": Wayfinder, "tl_wayfinder": Wayfinder}`` plus
    the Redis-pretrained model under the key ``"pretrained_model"``.
    """
    global _fig6_cache
    if _fig6_cache is not None:
        return _fig6_cache

    iterations = scaled(FIG6_ITERATIONS)
    results: Dict = {}

    # Pre-train on Redis for the transfer-learning variant (§4.2 trains the
    # TL model on Redis and applies it to the other applications).
    pretrain = linux_wayfinder("redis", "deeptune", seed=202)
    pretrain_result = pretrain.specialize(iterations=iterations)
    pretrained_model = pretrain.trained_model()
    results["pretrained_model"] = pretrained_model
    results["pretrain_result"] = pretrain_result

    for index, application in enumerate(LINUX_APPLICATIONS):
        seed = 300 + index
        random_result = linux_wayfinder(application, "random", seed=seed) \
            .specialize(iterations=iterations)

        deeptune_wayfinder = linux_wayfinder(application, "deeptune", seed=seed)
        deeptune_result = deeptune_wayfinder.specialize(iterations=iterations)

        tl_wayfinder = linux_wayfinder(
            application, "deeptune", seed=seed,
            algorithm_options={"model": transfer_model(pretrained_model),
                               "warmup_iterations": 0})
        tl_result = tl_wayfinder.specialize(iterations=iterations)

        results[application] = {
            "random": random_result,
            "deeptune": deeptune_result,
            "tl": tl_result,
            "wayfinder": deeptune_wayfinder,
            "tl_wayfinder": tl_wayfinder,
        }
    _fig6_cache = results
    return results


@pytest.fixture(scope="session")
def fig6_sessions():
    """Session-scoped cache of the §4.1 / §4.2 search sessions."""
    return run_fig6_sessions()
