"""Table 2: best configurations found per application.

Reports, for every application, the objective of the best configuration found
by Wayfinder, the default-configuration objective it is compared against, the
relative improvement, and the average time to find a specialized
configuration with and without transfer learning — the columns of Table 2.

Shape checks: Nginx improves the most (double-digit percent), Redis improves
noticeably, SQLite and NPB stay within a few percent of the default, and
transfer learning reaches good configurations faster than a cold start.
"""

from repro.analysis.reporting import format_table

from benchmarks.conftest import LINUX_APPLICATIONS, run_fig6_sessions

UNITS = {"nginx": "req/s", "redis": "req/s", "sqlite": "us/op", "npb": "Mop/s"}


def test_table2_best_configurations(benchmark):
    sessions = benchmark.pedantic(run_fig6_sessions, rounds=1, iterations=1)

    rows = []
    for application in LINUX_APPLICATIONS:
        data = sessions[application]
        deeptune = data["deeptune"]
        tl = data["tl"]
        rows.append((
            application,
            "{:.0f}".format(deeptune.default_objective),
            "{:.0f}".format(deeptune.best_performance),
            UNITS[application],
            "{:.2f}x".format(deeptune.improvement_factor),
            "{:.0f}".format(deeptune.time_to_best_s or 0.0),
            "{:.0f}".format(tl.time_to_best_s or 0.0),
        ))
    print()
    print(format_table(
        ("App.", "Default", "Wayfinder", "Perf. unit", "Relative perf.",
         "Time to best (s, no TL)", "Time to best (s, TL)"),
        rows, title="Table 2: best configurations found (Linux v4.19)"))

    nginx = sessions["nginx"]["deeptune"]
    redis = sessions["redis"]["deeptune"]
    sqlite = sessions["sqlite"]["deeptune"]
    npb = sessions["npb"]["deeptune"]

    # Ordering of improvements mirrors the paper: nginx > redis > npb ~ sqlite ~ 1.
    assert nginx.improvement_factor > 1.07
    assert redis.improvement_factor > 1.04
    assert nginx.improvement_factor > npb.improvement_factor
    assert redis.improvement_factor > npb.improvement_factor
    assert 0.95 < sqlite.improvement_factor < 1.10
    assert 0.97 < npb.improvement_factor < 1.08

    # Transfer learning warm-starts the search: the first configurations the
    # transferred model proposes for Nginx are already good, while the
    # cold-started search spends its first iterations on random warmup (the
    # paper reports 3-4.5x faster time-to-specialized-configuration).
    def early_mean(result, count=10):
        values = [r.objective for r in result.history.successful_records()[:count]]
        return sum(values) / len(values) if values else 0.0

    assert early_mean(sessions["nginx"]["tl"]) >= \
        early_mean(sessions["nginx"]["deeptune"]) * 0.97
