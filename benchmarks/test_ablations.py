"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not figures from the paper; they quantify the contribution of the
individual DeepTune/Wayfinder mechanisms on the Nginx/Linux workload:

* the crash-prediction head (filtering predicted crashers before evaluation);
* the exploration term of the scoring function (alpha / exploration weight);
* the skip-build optimization of the platform.
"""

from repro import Wayfinder
from repro.analysis.reporting import format_table

from benchmarks.conftest import scaled

ITERATIONS = 60


def run_crash_head_ablation(iterations: int):
    results = {}
    for label, options in (
        ("with crash filtering", {}),
        ("without crash filtering", {"crash_threshold": 1.01}),
    ):
        wayfinder = Wayfinder.for_linux(application="nginx", metric="throughput",
                                        algorithm="deeptune", seed=88,
                                        algorithm_options=options)
        results[label] = wayfinder.specialize(iterations=iterations)
    return results


def test_ablation_crash_prediction_head(benchmark):
    results = benchmark.pedantic(run_crash_head_ablation, args=(scaled(ITERATIONS),),
                                 rounds=1, iterations=1)
    print()
    print(format_table(
        ("variant", "best (req/s)", "crash rate"),
        [(label, "{:.0f}".format(result.best_performance or 0.0),
          "{:.0%}".format(result.crash_rate)) for label, result in results.items()],
        title="Ablation: crash-prediction head"))
    with_filter = results["with crash filtering"]
    without_filter = results["without crash filtering"]
    # Filtering predicted crashers wastes fewer evaluations on failures.
    assert with_filter.crash_rate <= without_filter.crash_rate + 0.05


def run_skip_build_ablation(iterations: int):
    results = {}
    for label, enabled in (("skip-build on", True), ("skip-build off", False)):
        wayfinder = Wayfinder.for_linux(application="nginx", metric="throughput",
                                        algorithm="random", seed=89,
                                        enable_skip_build=enabled)
        results[label] = wayfinder.specialize(iterations=iterations)
    return results


def test_ablation_skip_build_optimization(benchmark):
    results = benchmark.pedantic(run_skip_build_ablation, args=(scaled(ITERATIONS),),
                                 rounds=1, iterations=1)
    print()
    print(format_table(
        ("variant", "builds skipped", "virtual hours for the session"),
        [(label, result.builds_skipped, "{:.1f}".format(result.total_time_s / 3600.0))
         for label, result in results.items()],
        title="Ablation: skip-build optimization"))
    on = results["skip-build on"]
    off = results["skip-build off"]
    assert on.builds_skipped > 0
    assert off.builds_skipped == 0
    # Skipping rebuilds for runtime-only changes saves wall-clock time for the
    # session as a whole, and each skipped-build iteration is far cheaper than
    # a full build+boot+benchmark one.
    assert on.total_time_s < off.total_time_s
    skipped_durations = [r.duration_s for r in on.history if r.build_skipped]
    full_durations = [r.duration_s for r in on.history if not r.build_skipped]
    if skipped_durations and full_durations:
        assert (sum(skipped_durations) / len(skipped_durations)
                < sum(full_durations) / len(full_durations) / 3.0)


def run_exploration_weight_ablation(iterations: int):
    results = {}
    for label, weight in (("balanced (paper alpha=0.5)", 0.6), ("exploit only", 0.0)):
        wayfinder = Wayfinder.for_linux(
            application="nginx", metric="throughput", algorithm="deeptune", seed=90,
            algorithm_options={"exploration_weight": weight})
        results[label] = wayfinder.specialize(iterations=iterations)
    return results


def test_ablation_exploration_weight(benchmark):
    results = benchmark.pedantic(run_exploration_weight_ablation,
                                 args=(scaled(ITERATIONS),), rounds=1, iterations=1)
    print()
    print(format_table(
        ("variant", "best (req/s)", "crash rate"),
        [(label, "{:.0f}".format(result.best_performance or 0.0),
          "{:.0%}".format(result.crash_rate)) for label, result in results.items()],
        title="Ablation: exploration term of the scoring function"))
    # Both variants must at least improve on the default configuration; the
    # comparison itself is reported for inspection.
    for result in results.values():
        assert result.improvement_factor is None or result.improvement_factor > 1.0
