"""Table 1: configuration-space census for Linux 6.0.

Builds the full-scale synthetic configuration space and counts options per
kind and type, checking that the counts match the paper's census (7585 bool,
10034 tristate, 154 string, 94 hex, 3405 int compile-time options, 231
boot-time options, 13328 runtime options).
"""

from repro.analysis.reporting import format_table
from repro.kconfig.linux import LinuxSpaceBuilder, linux_census


def build_and_count():
    builder = LinuxSpaceBuilder("v6.0", seed=0)
    space = builder.full_space()
    counts = space.describe()
    compile_counts = {
        type_name: counts.get("compile-time/" + type_name, 0)
        for type_name in ("bool", "tristate", "string", "hex", "int")
    }
    boot = sum(count for key, count in counts.items() if key.startswith("boot-time/"))
    runtime = sum(count for key, count in counts.items() if key.startswith("runtime/"))
    return space, compile_counts, boot, runtime


def test_table1_space_census(benchmark):
    space, compile_counts, boot, runtime = benchmark.pedantic(
        build_and_count, rounds=1, iterations=1)
    census = linux_census("v6.0")

    print()
    print(format_table(
        ("option class", "paper (Table 1)", "reproduced"),
        [
            ("compile-time bool", census["bool"], compile_counts["bool"]),
            ("compile-time tristate", census["tristate"], compile_counts["tristate"]),
            ("compile-time string", census["string"], compile_counts["string"]),
            ("compile-time hex", census["hex"], compile_counts["hex"]),
            ("compile-time int", census["int"], compile_counts["int"]),
            ("boot-time options", census["boot"], boot),
            ("runtime options", census["runtime"], runtime),
        ],
        title="Table 1: Linux 6.0 configuration-space census"))

    assert compile_counts["bool"] == census["bool"]
    assert compile_counts["tristate"] == census["tristate"]
    assert compile_counts["string"] == census["string"]
    assert compile_counts["hex"] == census["hex"]
    assert compile_counts["int"] == census["int"]
    assert boot == census["boot"]
    assert runtime == census["runtime"]
    # The space as a whole is unsearchable exhaustively.
    assert len(space) > 30000
