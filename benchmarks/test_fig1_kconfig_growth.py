"""Figure 1: growth of the Linux compile-time configuration space over time.

Regenerates the option-count-per-release series the paper plots and checks
its headline properties: monotone growth, ~5k options in the v2.6 era, ~20k
options by v6.0.
"""

from repro.analysis.reporting import format_series
from repro.kconfig.history import KCONFIG_OPTION_COUNTS, kconfig_growth_series


def test_fig1_kconfig_growth(benchmark):
    series = benchmark.pedantic(kconfig_growth_series, rounds=1, iterations=1)

    print()
    print(format_series(
        [(float(index), float(count)) for index, (_, count) in enumerate(series)],
        x_label="release #", y_label="compile-time options",
        title="Figure 1: Linux Kconfig compile-time options per release"))
    for version, count in series:
        print("  {:>8}: {}".format(version, count))

    counts = [count for _, count in series]
    assert counts == sorted(counts), "option count must grow monotonically"
    assert counts[0] < 6000
    assert counts[-1] > 20000
    assert series[-1][0] == "v6.0"
    assert len(series) == len(KCONFIG_OPTION_COUNTS)
