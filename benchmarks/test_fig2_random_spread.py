"""Figure 2: Nginx throughput across random Linux configurations.

Generates random runtime configurations (re-drawing when one crashes, exactly
as the paper does), benchmarks Nginx on each, and reports the sorted
throughput curve against the default configuration.  The headline properties:
a wide spread (worst configurations lose tens of percent), the best random
configuration beats the default by ~10 %, a majority of random configurations
are worse than the default, and roughly a third of raw draws crash.
"""

import random

from repro.analysis.reporting import format_series
from repro.apps.registry import default_bench_tool_for, get_application
from repro.config.parameter import ParameterKind
from repro.vm.os_model import linux_os_model
from repro.vm.simulator import SystemSimulator

from benchmarks.conftest import scaled

N_VALID_CONFIGURATIONS = 300


def run_random_spread(n_valid: int):
    os_model = linux_os_model(version="v4.19", seed=7)
    simulator = SystemSimulator(os_model, get_application("nginx"),
                                default_bench_tool_for("nginx"), seed=7)
    space = os_model.space
    default = space.default_configuration()
    default_outcome = simulator.evaluate(default)

    rng = random.Random(7)
    throughputs = []
    attempts = 0
    crashes = 0
    while len(throughputs) < n_valid:
        attempts += 1
        config = space.mutate_configuration(default, rng, mutation_rate=1.0,
                                            kinds=[ParameterKind.RUNTIME])
        outcome = simulator.evaluate(config)
        if outcome.crashed:
            crashes += 1
            continue
        throughputs.append(outcome.metric_value)
    throughputs.sort()
    return {
        "default": default_outcome.metric_value,
        "throughputs": throughputs,
        "attempts": attempts,
        "crash_fraction": crashes / attempts,
    }


def test_fig2_random_configuration_spread(benchmark):
    n_valid = scaled(N_VALID_CONFIGURATIONS)
    data = benchmark.pedantic(run_random_spread, args=(n_valid,), rounds=1, iterations=1)

    throughputs = data["throughputs"]
    default = data["default"]
    print()
    print(format_series(
        [(float(i), value) for i, value in enumerate(throughputs)],
        x_label="configuration #", y_label="throughput (req/s)",
        title="Figure 2: Nginx throughput of {} random configurations "
              "(default = {:.0f} req/s)".format(len(throughputs), default)))
    below_default = sum(1 for value in throughputs if value < default) / len(throughputs)
    print("  crash fraction of raw draws: {:.0%}".format(data["crash_fraction"]))
    print("  fraction below default:      {:.0%}".format(below_default))
    print("  spread: {:.0f} .. {:.0f} req/s".format(throughputs[0], throughputs[-1]))

    # Paper: ~1/3 of random draws crash.
    assert 0.2 <= data["crash_fraction"] <= 0.5
    # Paper: best random config ~12% above default; most configs below default.
    assert throughputs[-1] > default * 1.05
    assert below_default >= 0.5
    # Paper: large spread between worst and best (tens of percent).
    assert throughputs[0] < default * 0.85
