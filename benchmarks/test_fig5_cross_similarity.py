"""Figure 5: cross-similarity of per-application parameter importance.

Collects random configurations, computes which parameters matter for each
application's performance (feature importance over the encoded space), and
compares the importance vectors across applications.  The expected structure:
Nginx, Redis and SQLite — all system-intensive — cluster together, Redis is
closer to SQLite than to Nginx is not required, and NPB stands clearly apart.
"""

import random

import numpy as np

from repro.analysis.similarity import cross_similarity_matrix, similarity_report
from repro.apps.registry import get_application
from repro.config.encoding import ConfigEncoder
from repro.config.parameter import ParameterKind
from repro.deeptune.importance import parameter_importance
from repro.vm.os_model import linux_os_model

from benchmarks.conftest import scaled

APPLICATIONS = ("nginx", "redis", "sqlite", "npb")
N_CONFIGURATIONS = 600


def build_similarity(n_configurations: int):
    os_model = linux_os_model(version="v4.19", seed=13)
    space = os_model.space
    encoder = ConfigEncoder(space)
    rng = random.Random(13)
    default = space.default_configuration()
    configurations = [
        space.mutate_configuration(default, rng, mutation_rate=1.0,
                                   kinds=[ParameterKind.RUNTIME])
        for _ in range(n_configurations)
    ]
    features = encoder.encode_batch(configurations)

    importances = {}
    for name in APPLICATIONS:
        application = get_application(name)
        targets = np.array([application.performance(config) for config in configurations])
        importances[name] = parameter_importance(encoder, features, targets)
    matrix = cross_similarity_matrix(importances, APPLICATIONS)
    return matrix, importances


def test_fig5_cross_similarity_matrix(benchmark):
    matrix, importances = benchmark.pedantic(
        build_similarity, args=(scaled(N_CONFIGURATIONS),), rounds=1, iterations=1)

    print()
    print("Figure 5: cross-similarity matrix of parameter importance")
    print(similarity_report(matrix, APPLICATIONS))

    index = {name: i for i, name in enumerate(APPLICATIONS)}
    assert np.allclose(np.diag(matrix), 1.0)
    assert np.allclose(matrix, matrix.T, atol=1e-9)
    # The three system-intensive applications are mutually similar...
    assert matrix[index["nginx"], index["redis"]] > 0.5
    # ...and every one of them is much closer to the others than to NPB.
    for name in ("nginx", "redis", "sqlite"):
        assert matrix[index[name], index["npb"]] < \
            matrix[index["nginx"], index["redis"]]
    # NPB's top parameters are memory-management knobs, not network knobs.
    npb_top = max(importances["npb"], key=importances["npb"].get)
    assert not npb_top.startswith("net.")
