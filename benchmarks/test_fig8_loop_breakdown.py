"""Figure 8: DeepTune update time vs configuration evaluation time.

The paper shows that an iteration of the search loop is dominated by
evaluating the configuration (building, booting and benchmarking: 60-80 s on
their testbed) while a DeepTune model update takes well under a second.  The
reproduction reports the same breakdown: the measured (real) per-iteration
model-update time of the cached DeepTune sessions against the simulated
evaluation time per application.
"""

import numpy as np

from repro.analysis.reporting import format_table

from benchmarks.conftest import LINUX_APPLICATIONS, run_fig6_sessions


def collect_breakdown():
    sessions = run_fig6_sessions()
    rows = {}
    for application in LINUX_APPLICATIONS:
        wayfinder = sessions[application]["wayfinder"]
        result = sessions[application]["deeptune"]
        update_times = wayfinder.algorithm.update_times_s
        evaluation_times = [record.duration_s for record in result.history]
        rows[application] = {
            "update_mean_s": float(np.mean(update_times)),
            "update_std_s": float(np.std(update_times)),
            "evaluation_mean_s": float(np.mean(evaluation_times)),
        }
    return rows


def test_fig8_loop_time_breakdown(benchmark):
    rows = benchmark.pedantic(collect_breakdown, rounds=1, iterations=1)

    print()
    print(format_table(
        ("application", "DeepTune update (s, real)", "evaluation (s, simulated)"),
        [(app, "{:.3f} +/- {:.3f}".format(rows[app]["update_mean_s"],
                                          rows[app]["update_std_s"]),
          "{:.0f}".format(rows[app]["evaluation_mean_s"]))
         for app in LINUX_APPLICATIONS],
        title="Figure 8: search-loop time breakdown"))

    for application in LINUX_APPLICATIONS:
        update = rows[application]["update_mean_s"]
        evaluation = rows[application]["evaluation_mean_s"]
        # The paper reports ~0.85 s updates vs 60-80 s evaluations: the model
        # update must never be the bottleneck of an iteration.
        assert update < 2.0
        assert evaluation > 30.0
        assert update < evaluation / 10.0
