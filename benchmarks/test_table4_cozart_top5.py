"""Table 4: top-5 configurations of the throughput-memory co-optimization.

Runs the Figure 11 pipeline (Cozart debloating + runtime co-optimization) and
reports the five best-scoring configurations — score, memory, throughput —
next to the Cozart baseline, recomputing the score over the full result set
so the ranking is consistent (the paper's min-max normalization is over the
whole experiment).

Shape check: the top entries beat the Cozart baseline on the combined score,
and at least one of them improves throughput without using more memory than
the baseline plus a small margin.
"""

from repro.analysis.reporting import format_table
from repro.apps.registry import default_bench_tool_for, get_application
from repro.config.parameter import ParameterKind
from repro.cozart.debloat import CozartDebloater
from repro.deeptune.algorithm import DeepTuneSearch
from repro.platform.metrics import CompositeScoreMetric
from repro.platform.pipeline import BenchmarkingPipeline
from repro.platform.runner import SearchSession
from repro.vm.os_model import linux_os_model
from repro.vm.simulator import SystemSimulator

from benchmarks.conftest import scaled

ITERATIONS = 80


def run_and_rank(iterations: int):
    os_model = linux_os_model(version="v4.19", seed=23)
    debloated = CozartDebloater(os_model, seed=23).debloat("nginx")
    application = get_application("nginx")
    bench = default_bench_tool_for("nginx")
    metric = CompositeScoreMetric(throughput_range=(8000.0, 22000.0),
                                  memory_range=(150.0, 450.0))
    simulator = SystemSimulator(os_model, application, bench, seed=23)
    baseline_outcome = simulator.evaluate(debloated.baseline)
    assert not baseline_outcome.crashed, "the Cozart baseline must boot and run"
    metric.score(baseline_outcome.metric_value, baseline_outcome.memory_mb)

    pipeline = BenchmarkingPipeline(simulator, metric)
    algorithm = DeepTuneSearch(debloated.reduced_space, seed=23,
                               favored_kinds=[ParameterKind.RUNTIME])
    result = SearchSession(pipeline, algorithm).run(iterations=iterations)

    successes = result.history.successful_records()
    # Recompute the score over the full result set with a fresh normalizer so
    # the ranking reflects global min-max normalization (paper eq. 4).
    final_metric = CompositeScoreMetric()
    points = [(r.metric_value, r.memory_mb) for r in successes]
    points.append((baseline_outcome.metric_value, baseline_outcome.memory_mb))
    for throughput, memory in points:
        final_metric._update_range(throughput, memory)
    scored = [
        (final_metric.score(r.metric_value, r.memory_mb), r.memory_mb, r.metric_value)
        for r in successes
    ]
    scored.sort(key=lambda item: item[0], reverse=True)
    baseline_score = final_metric.score(baseline_outcome.metric_value,
                                        baseline_outcome.memory_mb)
    return scored[:5], (baseline_score, baseline_outcome.memory_mb,
                        baseline_outcome.metric_value)


def test_table4_top5_cooptimized_configurations(benchmark):
    top5, baseline = benchmark.pedantic(run_and_rank, args=(scaled(ITERATIONS),),
                                        rounds=1, iterations=1)

    rows = [(rank + 1, "{:.2f}".format(score), "{:.1f}".format(memory),
             "{:.0f}".format(throughput))
            for rank, (score, memory, throughput) in enumerate(top5)]
    rows.append(("Cozart", "{:.2f}".format(baseline[0]), "{:.1f}".format(baseline[1]),
                 "{:.0f}".format(baseline[2])))
    print()
    print(format_table(("Rank", "Score", "Memory (MB)", "Throughput (req/s)"), rows,
                       title="Table 4: top-5 throughput-memory configurations "
                             "on top of Cozart"))

    assert len(top5) == 5
    baseline_score = baseline[0]
    # Every top-5 entry scores at least as well as the Cozart baseline.
    assert all(score >= baseline_score for score, _, _ in top5)
    # At least one of the top entries delivers more throughput than the
    # baseline without exceeding its memory footprint by more than a few MB.
    assert any(throughput > baseline[2] and memory <= baseline[1] + 20.0
               for _, memory, throughput in top5)
