"""Figure 6: evolution of configuration performance and crash rate.

For each application (Nginx, Redis, SQLite, NPB) the benchmark runs three
search sessions — random search, DeepTune, and DeepTune warm-started from a
model pre-trained on Redis (transfer learning) — and reports the best-so-far
objective over virtual time together with the windowed crash rate, i.e. the
solid and dashed curves of Figure 6.

Shape checks per the paper:
* DeepTune ends at least as good as random search for the network-intensive
  applications, and clearly better for Nginx;
* DeepTune's late crash rate drops below random search's (which stays around
  the raw ~1/3 rate of the space);
* the transfer-learning variant crashes the least.
"""

from repro.analysis.reporting import format_series
from repro.analysis.smoothing import downsample

from benchmarks.conftest import LINUX_APPLICATIONS, run_fig6_sessions


def _late_crash_rate(result, window=20):
    series = result.history.crash_rate_series(window=window)
    return series[-1][1] if series else 0.0


def test_fig6_search_evolution(benchmark):
    sessions = benchmark.pedantic(run_fig6_sessions, rounds=1, iterations=1)

    print()
    for application in LINUX_APPLICATIONS:
        data = sessions[application]
        print("=" * 72)
        print("Figure 6 ({}): best-so-far objective over virtual time".format(application))
        for label in ("random", "deeptune", "tl"):
            result = data[label]
            series = downsample(result.history.best_so_far_series(), max_points=12)
            print(format_series(series, x_label="time (s)",
                                y_label="best objective ({})".format(label),
                                max_points=12))
            print("  {}: best={:.1f}  late crash rate={:.0%}  overall crash rate={:.0%}"
                  .format(label, result.best_performance or float("nan"),
                          _late_crash_rate(result), result.crash_rate))

    # --- shape assertions -------------------------------------------------
    # Single sessions at a reduced budget (the paper averages 5 runs of 250
    # iterations), so the comparison carries a small tolerance: DeepTune must
    # end in the same league as random search here and clearly above the
    # default configuration; the full-budget separation is visible with
    # REPRO_BENCH_SCALE >= 3.
    nginx = sessions["nginx"]
    assert nginx["deeptune"].best_performance >= nginx["random"].best_performance * 0.95
    assert nginx["deeptune"].best_performance > nginx["deeptune"].default_objective * 1.05

    for application in LINUX_APPLICATIONS:
        data = sessions[application]
        # DeepTune learns to avoid crashes; random keeps paying the base rate.
        assert _late_crash_rate(data["deeptune"]) <= _late_crash_rate(data["random"]) + 0.1
        # The transferred model starts with crash-avoidance already learned.
        assert data["tl"].crash_rate <= data["random"].crash_rate + 0.1

    # Averaged across applications the separation is clear-cut.
    mean_deeptune_late = sum(_late_crash_rate(sessions[a]["deeptune"])
                             for a in LINUX_APPLICATIONS) / len(LINUX_APPLICATIONS)
    mean_random_late = sum(_late_crash_rate(sessions[a]["random"])
                           for a in LINUX_APPLICATIONS) / len(LINUX_APPLICATIONS)
    assert mean_deeptune_late < mean_random_late

    # SQLite and NPB barely improve (defaults already good / OS-insensitive).
    assert sessions["npb"]["deeptune"].improvement_factor < 1.08
    assert sessions["sqlite"]["deeptune"].improvement_factor < 1.10
