"""Figure 10: memory-footprint specialization of RISC-V Linux images.

Wayfinder and random search each get the same budget to minimize the resident
memory of the booted image, favouring compile-time options (as in §4.4).  The
benchmark reports the footprint-over-time curves and checks the paper's
claims: the default image sits around 210 MB, Wayfinder finds a configuration
several percent smaller, beats random search, and crashes less towards the
end of the session.
"""

from repro import Wayfinder
from repro.analysis.reporting import format_series
from repro.analysis.smoothing import downsample

from benchmarks.conftest import scaled

ITERATIONS = 110


def run_footprint_search(iterations: int):
    results = {}
    for algorithm in ("random", "deeptune"):
        wayfinder = Wayfinder.for_linux(
            application="nginx", metric="memory", architecture="riscv64",
            algorithm=algorithm, favor="compile", seed=55)
        results[algorithm] = wayfinder.specialize(iterations=iterations)
    return results


def test_fig10_memory_footprint_search(benchmark):
    results = benchmark.pedantic(run_footprint_search, args=(scaled(ITERATIONS),),
                                 rounds=1, iterations=1)

    print()
    for name, result in results.items():
        series = downsample(result.history.best_so_far_series(), max_points=12)
        print(format_series(series, x_label="time (s)", y_label="best footprint (MB)",
                            title="Figure 10 ({}): smallest footprint found".format(name),
                            max_points=12))
        print("  {}: default={:.1f} MB, best={:.1f} MB ({:.1%} reduction), "
              "crash rate={:.0%}".format(
                  name, result.default_objective, result.best_performance,
                  1.0 - result.best_performance / result.default_objective,
                  result.crash_rate))

    deeptune = results["deeptune"]
    random_result = results["random"]

    # Default RISC-V image sits around 200-220 MB, as in the paper.
    assert 180.0 <= deeptune.default_objective <= 240.0
    # Wayfinder shrinks the image measurably (the paper's 8.5% needs the full
    # 3-hour budget; the reduced default budget reaches a few percent, and
    # higher REPRO_BENCH_SCALE values close the gap)...
    reduction = 1.0 - deeptune.best_performance / deeptune.default_objective
    assert reduction > 0.015
    # ...and finds a smaller image than random search given the same budget.
    assert deeptune.best_performance <= random_result.best_performance + 1.0
    # Crash avoidance: DeepTune's late crash rate is no worse than random's.
    deeptune_late = deeptune.history.crash_rate_series(window=25)[-1][1]
    random_late = random_result.history.crash_rate_series(window=25)[-1][1]
    assert deeptune_late <= random_late + 0.1
