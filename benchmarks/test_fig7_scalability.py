"""Figure 7: per-iteration cost of DeepTune vs the Unicorn causal baseline.

Runs both optimizers on the same synthetic configuration space (sized like the
one used in the Unicorn paper, since Unicorn cannot handle Linux-scale
spaces), records the wall-clock time and peak memory of every iteration with
``tracemalloc`` — the same instrument the paper uses — and checks the
scalability claims: Unicorn's per-iteration time and memory keep growing as
the observation history grows, while DeepTune's stay essentially flat.
"""

import time
import tracemalloc

import numpy as np

from repro.analysis.reporting import format_series
from repro.config.parameter import IntParameter, ParameterKind
from repro.config.space import ConfigSpace
from repro.deeptune.algorithm import DeepTuneSearch
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.platform.metrics import ThroughputMetric
from repro.search.unicorn import UnicornSearch
from repro.vm.failures import FailureStage

from benchmarks.conftest import scaled

N_PARAMETERS = 18
N_ITERATIONS = 30


def synthetic_space(n_parameters: int) -> ConfigSpace:
    parameters = [
        IntParameter("option_{:02d}".format(index), ParameterKind.RUNTIME,
                     default=50, minimum=0, maximum=100)
        for index in range(n_parameters)
    ]
    return ConfigSpace(parameters, name="unicorn-synthetic")


def synthetic_objective(configuration) -> float:
    """A smooth objective with known local and global structure."""
    values = np.array([configuration["option_{:02d}".format(i)] for i in range(N_PARAMETERS)],
                      dtype=float) / 100.0
    return float(
        100.0 * np.exp(-np.sum((values[:4] - 0.7) ** 2))
        + 30.0 * np.sin(3.0 * values[4])
        + 10.0 * values[5]
    )


def run_algorithm(algorithm, space, iterations):
    history = ExplorationHistory(ThroughputMetric())
    times, memories = [], []
    clock = 0.0
    for index in range(iterations):
        tracemalloc.start()
        started = time.perf_counter()
        configuration = algorithm.propose(history)
        objective = synthetic_objective(configuration)
        record = TrialRecord(
            index=index, configuration=configuration, objective=objective,
            crashed=False, failure_stage=FailureStage.NONE, failure_reason="",
            metric_value=objective, memory_mb=None, duration_s=60.0,
            started_at_s=clock)
        clock += 60.0
        history.add(record)
        algorithm.observe(record)
        elapsed = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        times.append(elapsed)
        memories.append(peak)
    return times, memories


def run_comparison(iterations: int):
    space = synthetic_space(N_PARAMETERS)
    unicorn = UnicornSearch(space, seed=3, candidate_pool_size=24, top_k=6)
    deeptune = DeepTuneSearch(space, seed=3, warmup_iterations=5,
                              candidate_pool_size=48,
                              training_steps_per_iteration=10)
    unicorn_times, unicorn_memory = run_algorithm(unicorn, space, iterations)
    deeptune_times, deeptune_memory = run_algorithm(deeptune, space, iterations)
    return {
        "unicorn": (unicorn_times, unicorn_memory),
        "deeptune": (deeptune_times, deeptune_memory),
    }


def _growth(series, head=8):
    """Ratio of the mean of the last *head* values to the mean of the first."""
    head = min(head, len(series) // 2)
    early = float(np.mean(series[:head]))
    late = float(np.mean(series[-head:]))
    return late / max(early, 1e-9)


def test_fig7_scalability_vs_unicorn(benchmark):
    iterations = scaled(N_ITERATIONS)
    data = benchmark.pedantic(run_comparison, args=(iterations,), rounds=1, iterations=1)

    print()
    for name in ("unicorn", "deeptune"):
        times, memories = data[name]
        print(format_series([(float(i), t) for i, t in enumerate(times)],
                            x_label="iteration", y_label="{} time (s)".format(name),
                            max_points=10,
                            title="Figure 7 ({}): per-iteration cost".format(name)))
        print("  {}: time growth x{:.1f}, memory growth x{:.1f}".format(
            name, _growth(times), _growth(memories)))

    unicorn_time_growth = _growth(data["unicorn"][0])
    unicorn_memory_growth = _growth(data["unicorn"][1])
    deeptune_time_growth = _growth(data["deeptune"][0])

    # Unicorn's causal relearning grows super-linearly with the history...
    assert unicorn_time_growth > 3.0
    assert unicorn_memory_growth > 1.5
    # ...while DeepTune's bounded incremental updates grow far more slowly.
    assert deeptune_time_growth < unicorn_time_growth / 2.0
