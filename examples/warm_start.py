#!/usr/bin/env python3
"""Transfer-learning warm start from a persisted surrogate zoo (§3.3).

Campaigns persist every trained DeepTune model into a ``zoo/`` directory
keyed by application and configuration-space fingerprint.  A later
experiment on a *new* application over the same space can declare
``warm_start:`` (or pass ``--warm-start`` on the CLI) and have its model
initialized from the most similar donor — similarity is the cosine of the
two applications' parameter-importance vectors, the paper's Figure 5
signal.  This example builds a small zoo from two donor applications,
then tunes a held-out third application cold and warm and compares the
trajectories.

The same zoo mechanics run automatically inside campaigns: every
completed DeepTune experiment publishes its model, and a campaign spec
whose base carries ``warm_start: {zoo: <donor campaign dir>}`` adopts
donors on startup (``campaign report`` then shows the provenance table).

Usage:
    python examples/warm_start.py [donor_iterations] [search_iterations]
"""

import sys
import tempfile

from repro import Wayfinder
from repro.analysis.reporting import format_table
from repro.deeptune.importance import parameter_importance
from repro.deeptune.transfer import publish_zoo_entry

#: a reduced filler-parameter tail keeps the example fast; donors and the
#: target must share the space (same version/seed/options) to be
#: fingerprint-compatible.
SPACE_OPTIONS = {"extra_compile": 20, "extra_runtime": 12, "extra_boot": 4}
SEED = 11


def specialize(application, iterations, warm_start=None):
    wayfinder = Wayfinder.for_linux(
        application=application, metric="throughput", algorithm="deeptune",
        seed=SEED, space_options=SPACE_OPTIONS, warm_start=warm_start)
    result = wayfinder.specialize(iterations=iterations)
    return wayfinder, result


def main() -> None:
    donor_iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    search_iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 30

    with tempfile.TemporaryDirectory(prefix="wayfinder-zoo-") as zoo:
        for application in ("nginx", "redis"):
            print("Training donor on {} ({} iterations)...".format(
                application, donor_iterations))
            wayfinder, result = specialize(application, donor_iterations)
            encoder = wayfinder.algorithm.encoder
            features, objectives, _ = result.history.training_arrays(encoder)
            entry = publish_zoo_entry(
                zoo, application, encoder, wayfinder.algorithm.model,
                parameter_importance(encoder, features, objectives),
                metadata={"experiment": "donor-" + application})
            print("  published {} ({} observations)".format(
                entry["id"], entry["observations"]))

        print("\nTuning sqlite cold and warm-started from the zoo...")
        _, cold = specialize("sqlite", search_iterations)
        warm_wayfinder, warm = specialize(
            "sqlite", search_iterations,
            warm_start={"zoo": zoo, "min_similarity": 0.0})
        provenance = warm_wayfinder.warm_start
        assert provenance is not None, "expected a zoo donor to be adopted"

        print(format_table(
            ("quantity", "cold start", "warm start"),
            [
                ("best objective",
                 "{:.2f}".format(cold.best_performance),
                 "{:.2f}".format(warm.best_performance)),
                ("time to best (min)",
                 "{:.0f}".format((cold.time_to_best_s or 0) / 60),
                 "{:.0f}".format((warm.time_to_best_s or 0) / 60)),
                ("crash rate",
                 "{:.0%}".format(cold.crash_rate),
                 "{:.0%}".format(warm.crash_rate)),
                ("donor", "-", "{} (similarity {:.3f})".format(
                    provenance["donor"], provenance["similarity"])),
            ],
            title="sqlite specialization, {} iterations".format(
                search_iterations),
        ))


if __name__ == "__main__":
    main()
