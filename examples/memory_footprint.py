#!/usr/bin/env python3
"""Specialize a RISC-V Linux image for memory footprint (§4.4, Figure 10).

Instead of throughput, the metric here is the resident memory of the booted
image, and the search favours compile-time options: the way to shrink the
kernel is to stop building subsystems the workload never uses.

Usage:
    python examples/memory_footprint.py [iterations]
"""

import sys

from repro import ExperimentSpec, Wayfinder
from repro.analysis.reporting import format_table
from repro.config.parameter import ParameterKind


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 80

    spec = ExperimentSpec(
        application="nginx",
        metric="memory",
        architecture="riscv64",      # the embedded target of the paper's experiment
        algorithm="deeptune",
        favor="compile",
        seed=5,
        iterations=iterations,
    )
    wayfinder = Wayfinder.from_spec(spec)
    result = wayfinder.specialize()

    reduction = 1.0 - result.best_performance / result.default_objective
    print(format_table(
        ("quantity", "value"),
        [
            ("default footprint (MB)", "{:.1f}".format(result.default_objective)),
            ("best footprint found (MB)", "{:.1f}".format(result.best_performance)),
            ("reduction", "{:.1%}".format(reduction)),
            ("crash rate", "{:.0%}".format(result.crash_rate)),
            ("iterations", result.iterations),
        ],
        title="RISC-V Linux memory-footprint specialization",
    ))

    best = result.best_configuration
    default = wayfinder.os_model.default_configuration()
    disabled = [
        name for name in best.differing_parameters(default)
        if wayfinder.space[name].kind is ParameterKind.COMPILE_TIME
        and default[name] in (True, "y", "m") and best[name] in (False, "n")
    ]
    print("\nCompile-time features disabled by the best configuration "
          "({} total): {}".format(len(disabled), ", ".join(sorted(disabled)[:15])))


if __name__ == "__main__":
    main()
