#!/usr/bin/env python3
"""Campaigns: run a paper-style grid of experiments with fault tolerance.

The paper's headline results are campaigns — grids of application x
algorithm x seed experiments compared against each other.  This example
declares such a grid as a :class:`CampaignSpec`, writes it to the YAML form
``campaign run`` consumes, executes it across two OS processes, interrupts
it on purpose, resumes it (completed experiments are skipped by manifest,
per-experiment records stay byte-identical to an uninterrupted run), and
renders the cross-algorithm report.  Runs in well under a minute.

Usage:
    python examples/campaign.py [iterations]
"""

import sys
import tempfile

from repro import CampaignSpec
from repro.analysis.campaign_report import render_campaign_report
from repro.config.jobfile import dump_campaign_file
from repro.platform.campaign_runner import CampaignRunner


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    campaign = CampaignSpec(
        name="demo-grid",
        applications=["nginx", "redis"],
        algorithms=["random", "grid"],
        seeds=[0],
        base={
            "metric": "auto",
            "iterations": iterations,
            # the reduced space keeps the demo fast; drop this block to
            # search the full experiment-scale Linux space
            "space_options": {"extra_compile": 20, "extra_runtime": 12,
                              "extra_boot": 4},
        },
        # per-axis override: redis experiments optimize tail latency
        overrides=[{"match": {"application": "redis"},
                    "set": {"metric": "latency"}}],
    )
    print("Campaign {!r}: {} experiments".format(campaign.name, len(campaign)))

    # the YAML form is what `python -m repro.cli campaign run --spec` takes
    spec_path = tempfile.mktemp(suffix=".yaml", prefix="campaign-")
    dump_campaign_file(campaign, spec_path)
    print("Campaign spec written to {}".format(spec_path))

    directory = tempfile.mkdtemp(prefix="wayfinder-campaign-")

    def progress(outcome, done, total):
        print("  [{}/{}] {} -> {}".format(done, total, outcome["name"],
                                          outcome["status"]))

    # run only part of the grid, as if the campaign had been killed...
    print("Partial run (interrupted after 2 experiments):")
    runner = CampaignRunner(campaign, directory, procs=2)
    runner.run(max_experiments=2, progress=progress)

    # ...then resume: the manifest in the campaign directory knows what is
    # done; unfinished experiments restart (or continue from their latest
    # checkpoint, bit-exactly) and the results match an uninterrupted run.
    print("Resuming:")
    result = CampaignRunner.open(directory, procs=2).run(resume=True,
                                                         progress=progress)
    print("Campaign complete: {} experiments in {}".format(
        len(result.completed), directory))

    print()
    print(render_campaign_report(directory, max_points=8))


if __name__ == "__main__":
    main()
