#!/usr/bin/env python3
"""Transfer learning: pre-train DeepTune on Redis, reuse it for Nginx (§3.3).

Redis and Nginx are both network-intensive, so the configuration parameters
that matter for one largely matter for the other.  This example pre-trains a
DeepTune model while specializing Redis, transfers it, and shows that the
Nginx search starts from better configurations and crashes less often than a
cold-started search — the behaviour of the "DeepTune+TL" curves in Figure 6.

The ``Wayfinder.for_linux`` keyword constructor used here is a thin builder
over :class:`ExperimentSpec`; passing the live pre-trained model through
``algorithm_options`` keeps the experiment runnable but (deliberately) not
checkpoint-serializable.

Usage:
    python examples/transfer_learning.py [pretrain_iterations] [search_iterations]
"""

import sys

from repro import Wayfinder
from repro.analysis.reporting import format_table
from repro.deeptune.transfer import transfer_model


def main() -> None:
    pretrain_iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    search_iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 40

    print("Pre-training DeepTune on Redis ({} iterations)...".format(pretrain_iterations))
    redis_wayfinder = Wayfinder.for_linux(application="redis", metric="throughput",
                                          algorithm="deeptune", seed=11)
    redis_result = redis_wayfinder.specialize(iterations=pretrain_iterations)
    print("  Redis best throughput: {:.0f} req/s ({:.2f}x default)".format(
        redis_result.best_performance, redis_result.improvement_factor))

    pretrained = transfer_model(redis_wayfinder.trained_model())

    print("\nSearching Nginx configurations with and without the transferred model...")
    warm = Wayfinder.for_linux(
        application="nginx", metric="throughput", algorithm="deeptune", seed=12,
        algorithm_options={"model": pretrained, "warmup_iterations": 0})
    cold = Wayfinder.for_linux(application="nginx", metric="throughput",
                               algorithm="deeptune", seed=12)

    warm_result = warm.specialize(iterations=search_iterations)
    cold_result = cold.specialize(iterations=search_iterations)

    def first_valid_objective(result):
        for record in result.history:
            if not record.crashed and record.objective is not None:
                return record.objective
        return float("nan")

    print(format_table(
        ("quantity", "cold start", "transfer from Redis"),
        [
            ("first valid configuration (req/s)",
             "{:.0f}".format(first_valid_objective(cold_result)),
             "{:.0f}".format(first_valid_objective(warm_result))),
            ("best configuration (req/s)",
             "{:.0f}".format(cold_result.best_performance),
             "{:.0f}".format(warm_result.best_performance)),
            ("time to best (min)",
             "{:.0f}".format((cold_result.time_to_best_s or 0) / 60),
             "{:.0f}".format((warm_result.time_to_best_s or 0) / 60)),
            ("crash rate",
             "{:.0%}".format(cold_result.crash_rate),
             "{:.0%}".format(warm_result.crash_rate)),
        ],
        title="Nginx specialization, {} iterations".format(search_iterations),
    ))


if __name__ == "__main__":
    main()
