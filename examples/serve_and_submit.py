#!/usr/bin/env python3
"""Tuning service client: submit a campaign over HTTP and watch it live.

The tuning service (``repro serve``) turns the search engine into a
long-running multi-tenant system: spec payloads go in over JSON, progress
streams out as NDJSON, and reports are served from the same campaign
directories the CLI writes.  This script is a complete stdlib-only client
for it — and doubles as the submission step of the CI service smoke.

With ``--server URL`` it talks to an already-running server.  Without it,
it starts an in-process service on a temporary directory, runs the same
flow against it, and shuts it down — so the example works standalone:

    python examples/serve_and_submit.py
    python examples/serve_and_submit.py --server http://127.0.0.1:8080 \
        --spec examples/campaign_smoke.yaml
    python examples/serve_and_submit.py --server ... --job acme-000000

Runs in well under a minute.
"""

import argparse
import json
import sys
import urllib.error
import urllib.request


def request_json(url, payload=None):
    """One JSON request; exits with the server's error message on failure."""
    data = None if payload is None else json.dumps(payload).encode()
    try:
        with urllib.request.urlopen(
                urllib.request.Request(url, data=data), timeout=60) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        body = error.read().decode()
        try:
            message = json.loads(body).get("error", body)
        except json.JSONDecodeError:
            message = body
        sys.exit("{} -> HTTP {}: {}".format(url, error.code, message))


def demo_campaign_payload():
    return {
        "name": "serve-demo",
        "applications": ["nginx"],
        "algorithms": ["random", "grid"],
        "seeds": [0],
        "base": {
            "metric": "auto",
            "iterations": 6,
            # reduced space so the demo finishes fast
            "space_options": {"extra_compile": 20, "extra_runtime": 12,
                              "extra_boot": 4},
        },
    }


def load_campaign_payload(path):
    from repro.config.jobfile import load_campaign_file

    return load_campaign_file(path).to_dict()


def follow_job(base, job, quiet=False):
    """Stream the job's NDJSON events until it reaches a terminal state."""
    url = "{}/v1/jobs/{}/events".format(base, job)
    trials = 0
    with urllib.request.urlopen(url, timeout=600) as stream:
        for line in stream:
            event = json.loads(line)
            kind = event["event"]
            if kind == "trial":
                trials += 1
                if not quiet:
                    print("  trial #{} of {}: objective={} ({})".format(
                        event["trial"], event["experiment"],
                        "crash" if event["crashed"]
                        else "{:.2f}".format(event["objective"]),
                        "worker {}".format(event["worker"])))
            elif kind == "new-incumbent" and not quiet:
                print("  new incumbent for {}: {:.2f}".format(
                    event["experiment"], event["objective"]))
            elif kind in ("experiment-finished", "job-finished", "job-error"):
                print("  {}: {}".format(kind, {
                    key: value for key, value in event.items()
                    if key not in ("event", "seq")}))
    return trials


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--server",
                        help="base URL of a running `repro serve` (default: "
                             "start an in-process demo server)")
    parser.add_argument("--spec",
                        help="campaign YAML/JSON to submit (default: a "
                             "built-in two-algorithm demo grid)")
    parser.add_argument("--tenant", default="demo")
    parser.add_argument("--job",
                        help="attach to an existing job id instead of "
                             "submitting (for watching a recovered job)")
    parser.add_argument("--no-wait", action="store_true",
                        help="submit and print the job id, don't stream")
    parser.add_argument("--report-json", action="store_true",
                        help="print the /report document instead of a "
                             "summary line")
    args = parser.parse_args()

    server = None
    base = args.server
    if base is None:
        import tempfile

        from repro.service.server import TuningServer, TuningService

        tempdir = tempfile.mkdtemp(prefix="serve-demo-")
        service = TuningService(tempdir, workers=2)
        server = TuningServer(service, port=0)
        server.serve_in_thread()
        base = server.url
        print("demo server on {} (results in {})".format(base, tempdir))
    base = base.rstrip("/")

    try:
        if args.job:
            job = args.job
        else:
            payload = (load_campaign_payload(args.spec) if args.spec
                       else demo_campaign_payload())
            submitted = request_json(base + "/v1/campaigns",
                                     {"tenant": args.tenant,
                                      "campaign": payload})
            job = submitted["job"]
            print("submitted job {} ({} experiments)".format(
                job, len(submitted["experiments"])))
            if args.no_wait:
                print(json.dumps(submitted, indent=2, sort_keys=True))
                return

        print("streaming events for {}:".format(job))
        trials = follow_job(base, job, quiet=args.report_json)
        print("observed {} trial events".format(trials))

        status = request_json("{}/v1/jobs/{}".format(base, job))
        print("final phase: {} (state: {})".format(status["phase"],
                                                   status["state"]))
        report = request_json("{}/v1/jobs/{}/report".format(base, job))
        if args.report_json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            for row in report["time_to_best"]["rows"]:
                algorithm, experiments, _, improvement = row[:4]
                print("  {}: {} experiment(s), improvement {}".format(
                    algorithm, experiments,
                    "-" if improvement is None
                    else "{:.2f}x".format(improvement)))
    finally:
        if server is not None:
            server.shutdown()


if __name__ == "__main__":
    main()
