#!/usr/bin/env python3
"""Infer the runtime configuration space automatically and write a job file.

This example exercises the §3.4 pipeline: boot a (simulated) VM, list the
writable files under /proc/sys and /sys, infer each parameter's type and valid
range by scaling its default value up and down, and write the resulting space
to a YAML job file that the platform can execute.  It then loads the job file
back and runs a short random-search session over the probed space.

Usage:
    python examples/probe_and_jobfile.py [output.yaml]
"""

import sys

from repro.analysis.reporting import format_table
from repro.apps.registry import default_bench_tool_for, get_application
from repro.config.jobfile import JobFile, dump_job_file, load_job_file
from repro.config.parameter import ParameterKind
from repro.config.space import ConfigSpace
from repro.platform.metrics import metric_for_application
from repro.platform.pipeline import BenchmarkingPipeline
from repro.platform.runner import SearchSession
from repro.search.random_search import RandomSearch
from repro.sysctl.probe import SpaceProber
from repro.sysctl.procfs import ProcFS
from repro.vm.os_model import linux_os_model
from repro.vm.simulator import SystemSimulator


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "probed-job.yaml"

    # Step 1: probe the runtime parameter tree of a freshly booted kernel.
    procfs = ProcFS(extra_generic=20)
    prober = SpaceProber(scale_factor=10, scale_rounds=4)
    probed = prober.probe(procfs)
    print("Probed {} writable runtime parameters".format(len(probed)))
    rows = [(p.path, p.inferred_type, str(p.default), str(p.minimum), str(p.maximum))
            for p in probed[:10]]
    print(format_table(("path", "type", "default", "min", "max"), rows,
                       title="First probed parameters"))

    # Step 2: turn the probe results into a job file.
    space = ConfigSpace([record.to_parameter() for record in probed],
                        name="probed-runtime-space")
    job = JobFile(name="nginx-probed", os_name="linux", application="nginx",
                  bench_tool="wrk", metric="throughput", space=space,
                  iterations=30, favor_kinds=["runtime"], seed=3)
    dump_job_file(job, output)
    print("\nWrote job file to {}".format(output))

    # Step 3: load the job file back and run a short session for its
    # application.  The platform searches the OS model's space directly; the
    # job file documents the probed runtime subset for reproducibility.
    loaded = load_job_file(output)
    probed_names = set(loaded.space.parameter_names())
    os_model = linux_os_model(seed=loaded.seed)
    overlap = [name for name in probed_names if name in os_model.space]
    print("\n{} of the probed parameters exist in the experiment space".format(len(overlap)))

    application = get_application(loaded.application)
    bench = default_bench_tool_for(loaded.application)
    simulator = SystemSimulator(os_model, application, bench, seed=loaded.seed)
    pipeline = BenchmarkingPipeline(simulator, metric_for_application(loaded.application))
    search = RandomSearch(os_model.space, seed=loaded.seed,
                          favored_kinds=[ParameterKind.RUNTIME])
    result = SearchSession(pipeline, search).run(iterations=loaded.iterations)
    print("Short random session: best {:.0f} req/s after {} iterations "
          "({:.0%} crash rate)".format(
              result.best_objective, result.iterations, result.crash_rate))


if __name__ == "__main__":
    main()
