#!/usr/bin/env python3
"""Infer the runtime configuration space automatically and write a job file.

This example exercises the §3.4 pipeline: boot a (simulated) VM, list the
writable files under /proc/sys and /sys, infer each parameter's type and valid
range by scaling its default value up and down, and write the resulting space
to a YAML job file that the platform can execute.  It then loads the job file
back, converts it to the declarative :class:`ExperimentSpec` every front-end
shares, and runs a short random-search session from that spec.

Usage:
    python examples/probe_and_jobfile.py [output.yaml]
"""

import sys

from repro import Wayfinder
from repro.analysis.reporting import format_table
from repro.config.jobfile import JobFile, dump_job_file, load_job_file
from repro.config.space import ConfigSpace
from repro.sysctl.probe import SpaceProber
from repro.sysctl.procfs import ProcFS


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "probed-job.yaml"

    # Step 1: probe the runtime parameter tree of a freshly booted kernel.
    procfs = ProcFS(extra_generic=20)
    prober = SpaceProber(scale_factor=10, scale_rounds=4)
    probed = prober.probe(procfs)
    print("Probed {} writable runtime parameters".format(len(probed)))
    rows = [(p.path, p.inferred_type, str(p.default), str(p.minimum), str(p.maximum))
            for p in probed[:10]]
    print(format_table(("path", "type", "default", "min", "max"), rows,
                       title="First probed parameters"))

    # Step 2: turn the probe results into a job file.
    space = ConfigSpace([record.to_parameter() for record in probed],
                        name="probed-runtime-space")
    job = JobFile(name="nginx-probed", os_name="linux", application="nginx",
                  bench_tool="wrk", metric="throughput", space=space,
                  iterations=30, favor_kinds=["runtime"], seed=3,
                  algorithm="random")
    dump_job_file(job, output)
    print("\nWrote job file to {}".format(output))

    # Step 3: load the job file back, build the one spec every front-end
    # shares, and run a short session from it.  The platform searches the OS
    # model's space directly; the job file documents the probed runtime
    # subset for reproducibility.
    loaded = load_job_file(output)
    spec = loaded.to_spec()
    wayfinder = Wayfinder.from_spec(spec)
    probed_names = set(loaded.space.parameter_names())
    overlap = [name for name in probed_names if name in wayfinder.space]
    print("\n{} of the probed parameters exist in the experiment space".format(len(overlap)))

    result = wayfinder.specialize()   # budget and algorithm come from the job
    print("Short random session: best {:.0f} req/s after {} iterations "
          "({:.0%} crash rate)".format(
              result.best_performance, result.iterations, result.crash_rate))


if __name__ == "__main__":
    main()
