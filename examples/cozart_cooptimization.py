#!/usr/bin/env python3
"""Co-optimize throughput and memory on top of a Cozart-debloated kernel (§4.4).

The pipeline of the paper's Figure 11 / Table 4: first apply Cozart-style
compile-time debloating (drop every kernel feature the Nginx workload never
exercises), then let Wayfinder optimize the runtime parameters of the
debloated kernel for the composite score s = mXNorm(throughput) -
mXNorm(memory).

Usage:
    python examples/cozart_cooptimization.py [iterations]
"""

import sys

from repro.analysis.reporting import format_table
from repro.apps.registry import default_bench_tool_for, get_application
from repro.config.parameter import ParameterKind
from repro.cozart.debloat import CozartDebloater
from repro.deeptune.algorithm import DeepTuneSearch
from repro.platform.metrics import CompositeScoreMetric
from repro.platform.pipeline import BenchmarkingPipeline
from repro.platform.runner import SearchSession
from repro.vm.os_model import linux_os_model
from repro.vm.simulator import SystemSimulator


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 60

    os_model = linux_os_model(seed=9)
    debloated = CozartDebloater(os_model, seed=9).debloat("nginx")
    print("Cozart disabled {} compile-time options, kept {}".format(
        debloated.disabled_count, len(debloated.kept_options)))

    application = get_application("nginx")
    bench = default_bench_tool_for("nginx")
    # Fixed normalization ranges keep the throughput and memory terms of the
    # score comparable over the whole run (the paper normalizes over the full
    # result set when ranking Table 4).
    metric = CompositeScoreMetric(throughput_range=(8000.0, 22000.0),
                                  memory_range=(150.0, 450.0))
    simulator = SystemSimulator(os_model, application, bench, seed=9)

    baseline = simulator.evaluate(debloated.baseline)
    default = simulator.evaluate(os_model.default_configuration())
    print("Default kernel: {:.0f} req/s, {:.1f} MB".format(
        default.metric_value, default.memory_mb))
    print("Cozart baseline: {:.0f} req/s, {:.1f} MB".format(
        baseline.metric_value, baseline.memory_mb))
    metric.score(baseline.metric_value, baseline.memory_mb)

    pipeline = BenchmarkingPipeline(simulator, metric)
    search = DeepTuneSearch(debloated.reduced_space, seed=9,
                            favored_kinds=[ParameterKind.RUNTIME])
    result = SearchSession(pipeline, search).run(iterations=iterations)

    top = sorted(result.history.successful_records(),
                 key=lambda record: record.objective, reverse=True)[:5]
    rows = [(rank + 1, "{:.2f}".format(record.objective),
             "{:.1f}".format(record.memory_mb), "{:.0f}".format(record.metric_value))
            for rank, record in enumerate(top)]
    rows.append(("Cozart", "-", "{:.1f}".format(baseline.memory_mb),
                 "{:.0f}".format(baseline.metric_value)))
    print(format_table(("rank", "score", "memory (MB)", "throughput (req/s)"), rows,
                       title="Top configurations on top of the Cozart baseline"))


if __name__ == "__main__":
    main()
