#!/usr/bin/env python3
"""Quickstart: specialize the simulated Linux kernel for Nginx throughput.

This is the smallest end-to-end use of the public API: build a Wayfinder
instance for an application and a metric, run the DeepTune-driven search for a
fixed number of iterations, and inspect the result.  Runs in well under a
minute on a laptop.

Usage:
    python examples/quickstart.py [iterations]
"""

import sys

from repro import Wayfinder
from repro.analysis.reporting import format_table


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 60

    wayfinder = Wayfinder.for_linux(
        application="nginx",
        metric="throughput",
        version="v4.19",
        algorithm="deeptune",
        favor="runtime",          # explore runtime sysctls, as in the paper's §4.1
        seed=42,
    )
    print("Configuration space: {} parameters (~10^{:.0f} configurations)".format(
        len(wayfinder.space), wayfinder.space.log10_cardinality()))

    result = wayfinder.specialize(iterations=iterations)

    print()
    print(format_table(
        ("quantity", "value"),
        [
            ("iterations", result.iterations),
            ("default throughput (req/s)", "{:.0f}".format(result.default_objective)),
            ("best throughput (req/s)", "{:.0f}".format(result.best_performance)),
            ("improvement", "{:.2f}x".format(result.improvement_factor)),
            ("crash rate", "{:.0%}".format(result.crash_rate)),
            ("virtual search time", "{:.1f} h".format(result.total_time_s / 3600.0)),
            ("builds skipped (runtime-only changes)", result.builds_skipped),
        ],
        title="Wayfinder quickstart: Nginx on Linux {}".format(
            wayfinder.os_model.version),
    ))

    print("\nTop differences of the best configuration vs the default:")
    best = result.best_configuration
    default = wayfinder.os_model.default_configuration()
    rows = []
    for name in best.differing_parameters(default)[:12]:
        rows.append((name, str(default[name]), str(best[name])))
    print(format_table(("parameter", "default", "specialized"), rows))


if __name__ == "__main__":
    main()
