#!/usr/bin/env python3
"""Quickstart: specialize the simulated Linux kernel for Nginx throughput.

This is the smallest end-to-end use of the public API: describe the
experiment once as a declarative :class:`ExperimentSpec`, run the
DeepTune-driven search, and inspect the result.  The same spec object is
what the CLI and YAML job files build under the hood, and it is embedded in
every checkpoint — the end of this example interrupts the workflow on
purpose and resumes it from the stored checkpoint.  Runs in well under a
minute on a laptop.

Usage:
    python examples/quickstart.py [iterations]
"""

import sys
import tempfile

from repro import ExperimentSpec, Wayfinder
from repro.analysis.reporting import format_table


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 60

    spec = ExperimentSpec(
        os_name="linux",
        application="nginx",
        metric="throughput",
        os_version="v4.19",
        algorithm="deeptune",
        favor="runtime",          # explore runtime sysctls, as in the paper's §4.1
        seed=42,
        iterations=iterations,
    )
    wayfinder = Wayfinder.from_spec(spec)
    print("Configuration space: {} parameters (~10^{:.0f} configurations)".format(
        len(wayfinder.space), wayfinder.space.log10_cardinality()))

    # Checkpoint every 10 batches so the sweep survives interruptions.
    results_dir = tempfile.mkdtemp(prefix="wayfinder-quickstart-")
    checkpointer = wayfinder.enable_checkpointing(results_dir, every=10)

    result = wayfinder.specialize()   # the spec carries the budget

    print()
    print(format_table(
        ("quantity", "value"),
        [
            ("iterations", result.iterations),
            ("default throughput (req/s)", "{:.0f}".format(result.default_objective)),
            ("best throughput (req/s)", "{:.0f}".format(result.best_performance)),
            ("improvement", "{:.2f}x".format(result.improvement_factor)),
            ("crash rate", "{:.0%}".format(result.crash_rate)),
            ("virtual search time", "{:.1f} h".format(result.total_time_s / 3600.0)),
            ("builds skipped (runtime-only changes)", result.builds_skipped),
        ],
        title="Wayfinder quickstart: Nginx on Linux {}".format(
            wayfinder.os_model.version),
    ))

    print("\nTop differences of the best configuration vs the default:")
    best = result.best_configuration
    default = wayfinder.os_model.default_configuration()
    rows = []
    for name in best.differing_parameters(default)[:12]:
        rows.append((name, str(default[name]), str(best[name])))
    print(format_table(("parameter", "default", "specialized"), rows))

    # Resume the finished run from its checkpoint and extend the budget by a
    # few trials — the restored session continues with the exact RNG streams,
    # worker clocks, and model state the original run would have had.
    checkpoint_path = checkpointer.store.checkpoint_path(checkpointer.name)
    resumed = Wayfinder.resume(checkpoint_path)
    extended = resumed.specialize(iterations=iterations + 5)
    print("\nResumed from {} and extended to {} trials; best now {:.0f} req/s".format(
        checkpoint_path, extended.iterations, extended.best_performance))


if __name__ == "__main__":
    main()
