#!/usr/bin/env python3
"""Compare search algorithms on the Unikraft + Nginx configuration space.

Reproduces the setting of the paper's Figure 9 at a reduced budget: the same
33-parameter Unikraft/Nginx space explored by random search, Bayesian
optimization and DeepTune, reporting the best throughput each algorithm finds
and how quickly it gets there.  Each run is described by one declarative
:class:`ExperimentSpec`; only the algorithm field differs between rows.

Usage:
    python examples/compare_algorithms.py [iterations]
"""

import sys

from repro import ExperimentSpec, Wayfinder
from repro.analysis.reporting import format_table


def run(algorithm: str, iterations: int, seed: int = 7):
    spec = ExperimentSpec(os_name="unikraft", algorithm=algorithm, seed=seed,
                          iterations=iterations)
    result = Wayfinder.from_spec(spec).specialize()
    return {
        "algorithm": algorithm,
        "best (req/s)": "{:.0f}".format(result.best_performance or 0.0),
        "time to best (min)": "{:.0f}".format((result.time_to_best_s or 0.0) / 60.0),
        "crash rate": "{:.0%}".format(result.crash_rate),
    }


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    rows = [run(name, iterations) for name in ("random", "bayesian", "deeptune")]
    print(format_table(
        ("algorithm", "best (req/s)", "time to best (min)", "crash rate"),
        [tuple(row.values()) for row in rows],
        title="Unikraft + Nginx, {} iterations per algorithm".format(iterations),
    ))
    print("\nExpected ordering (cf. Figure 9): deeptune >= bayesian >= random "
          "on best throughput, with deeptune converging earliest.")


if __name__ == "__main__":
    main()
