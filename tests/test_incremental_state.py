"""Tests for the incrementally maintained search-loop state.

Covers the O(1) ``ExplorationHistory`` indexes (membership hash set, cached
best record, crash counters, amortized training buffers), the Welford
running-moment scalers behind the DeepTune replay buffer, and the
state-preserving ``RBFLayer.max_activation``.  Each incremental structure is
checked against a brute-force recomputation from first principles.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.config.encoding import ConfigEncoder
from repro.config.parameter import BoolParameter, IntParameter, ParameterKind
from repro.config.space import ConfigSpace
from repro.deeptune.model import DeepTuneModel
from repro.nn.layers import RBFLayer
from repro.nn.normalize import RunningMoments, StandardScaler
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.platform.metrics import LatencyMetric, ThroughputMetric
from repro.vm.failures import FailureStage


def make_space():
    return ConfigSpace([
        BoolParameter("flag", ParameterKind.RUNTIME),
        IntParameter("level", ParameterKind.RUNTIME, default=5, minimum=0, maximum=50),
    ], name="incremental-state")


def make_record(index, configuration, objective, crashed, clock):
    return TrialRecord(
        index=index, configuration=configuration,
        objective=None if crashed else objective, crashed=crashed,
        failure_stage=FailureStage.BOOT if crashed else FailureStage.NONE,
        failure_reason="panic" if crashed else "",
        metric_value=None, memory_mb=None, duration_s=60.0, started_at_s=clock)


def brute_force_best(records, metric):
    best = None
    for record in records:
        if record.crashed or record.objective is None:
            continue
        if best is None or metric.is_improvement(record.objective, best.objective):
            best = record
    return best


class TestHistoryIncrementalIndexes:
    @pytest.mark.parametrize("metric", [ThroughputMetric(), LatencyMetric()])
    def test_membership_and_best_agree_with_brute_force(self, metric):
        space = make_space()
        rng = random.Random(99)
        history = ExplorationHistory(metric)
        records = []
        probes = [space.sample_configuration(rng) for _ in range(20)]
        clock = 0.0
        for index in range(120):
            configuration = space.sample_configuration(rng)
            crashed = rng.random() < 0.3
            record = make_record(index, configuration,
                                 objective=rng.uniform(1.0, 100.0),
                                 crashed=crashed, clock=clock)
            clock += 60.0
            history.add(record)
            records.append(record)

            # Membership: incremental hash set vs a linear scan.
            for probe in probes + [configuration]:
                expected = any(r.configuration == probe for r in records)
                assert history.contains_configuration(probe) == expected
            # Best record: cached incumbent vs full recomputation.
            expected_best = brute_force_best(records, metric)
            actual_best = history.best_record()
            if expected_best is None:
                assert actual_best is None
            else:
                assert actual_best is expected_best
            # Crash statistics.
            expected_rate = sum(1 for r in records if r.crashed) / len(records)
            assert history.crash_rate() == pytest.approx(expected_rate)

    def test_training_arrays_match_per_record_recomputation(self):
        space = make_space()
        rng = random.Random(5)
        history = ExplorationHistory(ThroughputMetric())
        encoder = ConfigEncoder(space)
        clock = 0.0
        for index in range(100):
            crashed = index % 7 == 3
            record = make_record(index, space.sample_configuration(rng),
                                 objective=float(index), crashed=crashed, clock=clock)
            clock += 60.0
            history.add(record)
        matrix, objectives, crashed = history.training_arrays(encoder)
        assert matrix.shape == (100, encoder.width)
        for row, record in enumerate(history):
            assert np.array_equal(matrix[row],
                                  encoder.encode_reference(record.configuration))
            if record.crashed:
                assert np.isnan(objectives[row])
                assert crashed[row]
            else:
                assert objectives[row] == record.objective
                assert not crashed[row]
        # Returned buffers are read-only zero-copy views: mutation raises
        # instead of corrupting (or silently copying) history state.
        with pytest.raises(ValueError):
            objectives[:] = -1.0
        with pytest.raises(ValueError):
            crashed[:] = True
        # the views stay valid and correct across later appends (growth
        # reallocates the buffers rather than mutating them in place)
        history.add(make_record(100, space.sample_configuration(rng),
                                objective=1.0, crashed=False, clock=clock))
        _, objectives2, crashed2 = history.training_arrays(encoder)
        assert len(objectives2) == len(objectives) + 1
        assert np.array_equal(objectives2[:100], objectives, equal_nan=True)
        assert crashed2.sum() == sum(1 for r in history if r.crashed)

    def test_membership_honours_eq_across_value_representations(self):
        """True and 1 compare equal; the hash index must agree with == (the
        pre-fast-path linear scan matched them, so must the hash set)."""
        space = make_space()
        history = ExplorationHistory(ThroughputMetric())
        from repro.config.space import Configuration
        as_bool = Configuration(space, {"flag": True, "level": 5})
        as_int = Configuration(space, {"flag": 1, "level": 5})
        assert as_bool == as_int and hash(as_bool) == hash(as_int)
        history.add(make_record(0, as_bool, objective=1.0, crashed=False, clock=0.0))
        assert history.contains_configuration(as_int)

    def test_best_record_ignores_successful_record_without_objective(self):
        space = make_space()
        history = ExplorationHistory(ThroughputMetric())
        record = TrialRecord(
            index=0, configuration=space.default_configuration(), objective=None,
            crashed=False, failure_stage=FailureStage.NONE, failure_reason="",
            metric_value=None, memory_mb=None, duration_s=1.0, started_at_s=0.0)
        history.add(record)
        assert history.best_record() is None


class TestWelfordScaler:
    def test_running_moments_match_batch_after_500_updates(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(500, 7)) * rng.random(7)
        moments = RunningMoments()
        for row in data:
            moments.update(row)
        assert moments.count == 500
        np.testing.assert_allclose(moments.mean, data.mean(axis=0), atol=1e-10)
        np.testing.assert_allclose(np.sqrt(moments.variance()), data.std(axis=0),
                                   atol=1e-10)

    def test_partial_fit_matches_full_fit_to_1e10(self):
        rng = np.random.default_rng(1)
        data = rng.normal(0.0, 1.0, size=(500, 5))
        data[:, 2] = 4.2  # constant column exercises the unit-scale clamp
        incremental = StandardScaler()
        for start in range(0, 500, 13):  # uneven batch sizes
            incremental.partial_fit(data[start:start + 13])
        batch = StandardScaler().fit(data)
        np.testing.assert_allclose(incremental.mean_, batch.mean_, atol=1e-10)
        np.testing.assert_allclose(incremental.std_, batch.std_, atol=1e-10)
        probe = rng.normal(size=(4, 5))
        np.testing.assert_allclose(incremental.transform(probe),
                                   batch.transform(probe), atol=1e-10)

    def test_fit_from_moments_resets_partial_accumulator(self):
        scaler = StandardScaler()
        scaler.partial_fit(np.full((5, 2), 100.0))
        adopted = RunningMoments()
        adopted.update_batch(np.zeros((3, 2)))
        scaler.fit_from_moments(adopted)
        scaler.partial_fit(np.arange(8.0).reshape(4, 2))
        # Pre-adoption data (the 100.0 block) must not leak back in.
        expected = StandardScaler().fit(np.arange(8.0).reshape(4, 2))
        np.testing.assert_allclose(scaler.mean_, expected.mean_, atol=1e-12)

    def test_fit_resets_partial_accumulator(self):
        scaler = StandardScaler()
        scaler.partial_fit(np.ones((3, 2)) * 10.0)
        scaler.fit(np.arange(8.0).reshape(4, 2))
        scaler.partial_fit(np.arange(8.0).reshape(4, 2))
        # After the reset, partial statistics reflect only post-fit data.
        expected = StandardScaler().fit(np.arange(8.0).reshape(4, 2))
        np.testing.assert_allclose(scaler.mean_, expected.mean_, atol=1e-12)

    def test_model_scalers_match_from_scratch_fit(self):
        model = DeepTuneModel(input_dim=6, seed=2)
        rng = np.random.default_rng(3)
        X = rng.random((200, 6)) * 40.0
        targets = rng.normal(50.0, 10.0, 200)
        crashed = rng.random(200) < 0.25
        for row, target, crash in zip(X, targets, crashed):
            model.add_observation(row, None if crash else float(target), bool(crash))
        model.fit_incremental(steps=1, batch_size=8)
        np.testing.assert_allclose(model.feature_scaler.mean_, X.mean(axis=0),
                                   atol=1e-10)
        expected_std = X.std(axis=0)
        expected_std[expected_std < 1e-12] = 1.0
        np.testing.assert_allclose(model.feature_scaler.std_, expected_std,
                                   atol=1e-10)
        finite = targets[~crashed]
        np.testing.assert_allclose(model.target_scaler.mean_,
                                   [finite.mean()], atol=1e-10)

    def test_replay_buffer_grows_past_initial_capacity(self):
        model = DeepTuneModel(input_dim=3, seed=0)
        rng = np.random.default_rng(4)
        rows = rng.random((300, 3))
        for index, row in enumerate(rows):
            model.add_observation(row, float(index), False)
        assert model.observation_count == 300
        np.testing.assert_array_equal(model._feature_buffer[:300], rows)
        np.testing.assert_array_equal(model._target_buffer[:300],
                                      np.arange(300.0))


class TestRBFMaxActivationStateless:
    def test_max_activation_matches_forward(self):
        rng = np.random.default_rng(5)
        layer = RBFLayer(in_dim=6, n_centroids=4, gamma=0.7, rng=rng)
        inputs = rng.normal(size=(9, 6))
        expected = layer.forward(inputs, training=False).max(axis=1)
        np.testing.assert_allclose(layer.max_activation(inputs), expected,
                                   atol=1e-12)

    def test_max_activation_does_not_clobber_pending_backward(self):
        rng = np.random.default_rng(6)
        layer = RBFLayer(in_dim=5, n_centroids=3, gamma=0.9, rng=rng)
        inputs = rng.normal(size=(7, 5))
        other = rng.normal(size=(11, 5)) * 3.0
        grad_output = rng.normal(size=(7, 3))

        # Reference: forward then backward, uninterrupted.
        layer.forward(inputs)
        expected_grad_inputs = layer.backward(grad_output.copy())
        expected_grad_centroids = layer.grad_centroids.copy()

        # Interleaved: max_activation between forward and backward must not
        # change what backward computes.
        layer.zero_grad()
        layer.forward(inputs)
        layer.max_activation(other)
        grad_inputs = layer.backward(grad_output.copy())
        np.testing.assert_array_equal(grad_inputs, expected_grad_inputs)
        np.testing.assert_array_equal(layer.grad_centroids, expected_grad_centroids)
