"""Unit tests for the search algorithms (random, grid, Bayesian, Unicorn)."""

import numpy as np
import pytest

from repro.config.parameter import ParameterKind
from repro.platform.history import ExplorationHistory
from repro.platform.metrics import ThroughputMetric
from repro.search.base import ConfigurationSampler
from repro.search.bayesian import BayesianOptimizationSearch, GaussianProcess, expected_improvement
from repro.search.grid_search import GridSearch
from repro.search.random_search import RandomSearch
from repro.search.registry import available_algorithms, create_algorithm
from repro.search.unicorn import CausalDiscovery, UnicornSearch

from tests.test_platform import make_record


class TestConfigurationSampler:
    def test_favored_kinds_keep_others_at_default(self, small_space):
        sampler = ConfigurationSampler(small_space, seed=1,
                                       favored_kinds=[ParameterKind.RUNTIME],
                                       off_kind_mutation_rate=0.0)
        default = small_space.default_configuration()
        for _ in range(10):
            sample = sampler.sample()
            assert sample.only_runtime_differs(default)

    def test_unfavored_sampler_varies_everything_eventually(self, small_space):
        sampler = ConfigurationSampler(small_space, seed=1)
        default = small_space.default_configuration()
        assert any(not sampler.sample().only_runtime_differs(default) for _ in range(10))

    def test_samples_are_constraint_valid(self, small_space):
        sampler = ConfigurationSampler(small_space, seed=2,
                                       favored_kinds=[ParameterKind.COMPILE_TIME])
        for _ in range(20):
            assert small_space.is_valid(sampler.sample())

    def test_sample_unique_avoids_history(self, small_space):
        sampler = ConfigurationSampler(small_space, seed=3,
                                       favored_kinds=[ParameterKind.RUNTIME])
        history = ExplorationHistory(ThroughputMetric())
        seen = sampler.sample()
        history.add(make_record(seen, 0, 1.0))
        for _ in range(5):
            assert sampler.sample_unique(history) != seen

    def test_mutate_respects_favored_kinds(self, small_space):
        sampler = ConfigurationSampler(small_space, seed=4,
                                       favored_kinds=[ParameterKind.RUNTIME])
        default = small_space.default_configuration()
        mutated = sampler.mutate(default, mutation_rate=0.3)
        assert mutated.only_runtime_differs(default)


class TestRandomAndGrid:
    def test_random_proposals_unique(self, small_space):
        search = RandomSearch(small_space, seed=5, favored_kinds=[ParameterKind.RUNTIME])
        history = ExplorationHistory(ThroughputMetric())
        seen = set()
        for index in range(10):
            proposal = search.propose(history)
            assert proposal not in seen
            seen.add(proposal)
            history.add(make_record(proposal, index, 1.0))

    def test_grid_sweeps_one_parameter_at_a_time(self, small_space):
        search = GridSearch(small_space, seed=5, favored_kinds=[ParameterKind.BOOT_TIME])
        history = ExplorationHistory(ThroughputMetric())
        default = small_space.default_configuration()
        first = search.propose(history)
        assert first == default
        history.add(make_record(first, 0, 1.0))
        for index in range(1, 6):
            proposal = search.propose(history)
            differing = proposal.differing_parameters(default)
            assert len(differing) <= 1
            if differing:
                assert small_space[differing[0]].kind is ParameterKind.BOOT_TIME
            history.add(make_record(proposal, index, 1.0))

    def test_grid_plan_length_positive(self, small_space):
        search = GridSearch(small_space, seed=5, favored_kinds=[ParameterKind.BOOT_TIME])
        assert search.plan_length > 5

    def test_grid_falls_back_to_random_when_exhausted(self, small_space):
        sub = small_space.subspace(["boot.quiet"])
        search = GridSearch(sub, seed=5)
        history = ExplorationHistory(ThroughputMetric())
        for index in range(4):
            proposal = search.propose(history)
            history.add(make_record(proposal, index, 1.0))
        assert len(history) == 4

    def test_grid_validates_steps(self, small_space):
        with pytest.raises(ValueError):
            GridSearch(small_space, integer_steps=1)


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        X = np.linspace(0, 1, 8).reshape(-1, 1)
        y = np.sin(4 * X).reshape(-1)
        gp = GaussianProcess(length_scale=0.3, noise_variance=1e-6)
        gp.fit(X, y)
        mean, std = gp.predict(X)
        assert np.allclose(mean, y, atol=1e-2)
        assert np.all(std < 0.2)

    def test_uncertainty_grows_away_from_data(self):
        X = np.zeros((5, 1))
        y = np.zeros(5)
        gp = GaussianProcess(length_scale=0.5)
        gp.fit(X, y)
        _, std_near = gp.predict(np.array([[0.0]]))
        _, std_far = gp.predict(np.array([[5.0]]))
        assert std_far[0] > std_near[0]

    def test_unfitted_predict(self):
        gp = GaussianProcess()
        mean, std = gp.predict(np.ones((3, 2)))
        assert mean.shape == (3,)
        assert np.all(std > 0)

    def test_shape_validation(self):
        gp = GaussianProcess()
        with pytest.raises(ValueError):
            gp.fit(np.ones((3, 2)), np.ones((4,)))

    def test_expected_improvement_prefers_high_mean_and_high_std(self):
        mean = np.array([1.0, 2.0, 1.0])
        std = np.array([0.1, 0.1, 2.0])
        ei = expected_improvement(mean, std, best=1.5)
        assert ei[1] > ei[0]
        assert ei[2] > ei[0]


class TestBayesianSearch:
    def test_warmup_then_model_based(self, small_space):
        search = BayesianOptimizationSearch(small_space, seed=6,
                                            favored_kinds=[ParameterKind.RUNTIME],
                                            initial_random=3, candidate_pool_size=16)
        history = ExplorationHistory(ThroughputMetric())
        for index in range(6):
            proposal = search.propose(history)
            record = make_record(proposal, index, float(index))
            history.add(record)
            search.observe(record)
        assert search.gp.is_fitted

    def test_crashes_fold_into_surrogate(self, small_space):
        search = BayesianOptimizationSearch(small_space, seed=6, initial_random=2)
        history = ExplorationHistory(ThroughputMetric())
        for index in range(5):
            proposal = search.propose(history)
            record = make_record(proposal, index, 10.0, crashed=(index % 2 == 0))
            history.add(record)
            search.observe(record)
        proposal = search.propose(history)
        assert proposal is not None


class TestUnicorn:
    def test_causal_discovery_identifies_influential_feature(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(120, 6))
        objective = 3.0 * features[:, 2] + 0.1 * rng.normal(size=120)
        graph = CausalDiscovery(alpha=0.15).learn(features, objective)
        assert int(np.argmax(np.abs(graph.objective_strength))) == 2
        assert graph.strongest_features(1) == [2]

    def test_unicorn_search_proposes_and_records_stats(self, small_space):
        search = UnicornSearch(small_space, seed=7,
                               favored_kinds=[ParameterKind.RUNTIME],
                               candidate_pool_size=8, top_k=4)
        history = ExplorationHistory(ThroughputMetric())
        for index in range(8):
            proposal = search.propose(history)
            record = make_record(proposal, index, float(index), crashed=(index == 3))
            history.add(record)
            search.observe(record)
        assert search.iteration_stats
        assert search.iteration_stats[-1]["samples"] >= 4


class TestRegistry:
    def test_available(self):
        assert {"random", "grid", "bayesian", "unicorn", "deeptune"} <= \
            set(available_algorithms())

    def test_create_each(self, small_space):
        for name in ("random", "grid", "bayesian", "unicorn", "deeptune"):
            algorithm = create_algorithm(name, small_space, seed=1,
                                         favored_kinds=[ParameterKind.RUNTIME])
            assert algorithm.name == name

    def test_unknown_rejected(self, small_space):
        with pytest.raises(KeyError):
            create_algorithm("simulated-annealing", small_space)
